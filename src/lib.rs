//! `lotus-eater` — a reproduction of *The Lotus-Eater Attack*
//! (Ian A. Kash, Eric J. Friedman, Joseph Y. Halpern; PODC 2008,
//! arXiv:0806.1711).
//!
//! Many cooperative distributed systems are **satiable**: their nodes stop
//! providing service once their own demands are met, usually as a side
//! effect of tit-for-tat incentive design. The lotus-eater attack exploits
//! this without harming anyone directly — the attacker *gives* service to a
//! targeted subset of nodes until they are satiated; the satiated nodes then
//! stop serving everyone else, and the remaining ("isolated") nodes starve.
//!
//! This workspace is a full, executable reproduction of the paper:
//!
//! * [`bar_gossip`] — the paper's evaluation substrate: a round-based BAR
//!   Gossip simulator with the crash, *ideal* lotus-eater and *trade*
//!   lotus-eater attacks (Figures 1–3, Table 1);
//! * [`lotus_core`] — the paper's §3 abstract token-collecting model
//!   `(G, T, sat, f, c, a)`, attack strategies (cuts, rare tokens, mass
//!   satiation), defense descriptors (§4) and the sweep/crossover harness;
//! * [`scrip_economy`] — the scrip-system substrate for the "making
//!   satiation hard" defense (finite money supply) and the altruist-crash
//!   phenomenon;
//! * [`torrent_sim`] — a simplified BitTorrent swarm showing why the same
//!   attack does much less damage there (and how rarest-first blunts
//!   rare-piece monopolisation);
//! * [`netsim`] — the deterministic simulation substrate under all of the
//!   above.
//!
//! # Quick start
//!
//! ```
//! use lotus_eater::prelude::*;
//!
//! // Table 1 parameters, scaled down so the doctest is fast.
//! let cfg = BarGossipConfig::builder()
//!     .nodes(60)
//!     .updates_per_round(4)
//!     .update_lifetime(8)
//!     .copies_seeded(6)
//!     .rounds(40)
//!     .build()
//!     .expect("valid config");
//!
//! // No attack: isolated nodes receive (nearly) everything.
//! let clean = BarGossipSim::new(cfg.clone(), AttackPlan::none(), 1).run_to_report();
//! assert!(clean.overall_delivery() > 0.95);
//!
//! // A trade lotus-eater attacker controlling 30% of the system.
//! let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
//! let attacked = BarGossipSim::new(cfg, attack, 1).run_to_report();
//! assert!(attacked.isolated_delivery() < clean.overall_delivery());
//! ```
//!
//! # The unified `Scenario` API
//!
//! The paper's point is substrate-generic (Observation 3.1): *any*
//! satiation-compatible system is vulnerable. Every substrate therefore
//! implements one polymorphic driving interface,
//! [`lotus_core::scenario::Scenario`], and projects its typed report onto
//! a common metric vocabulary ([`lotus_core::scenario::ScenarioReport`]),
//! so the same sweep, crossover and plotting machinery runs against all
//! of them — typed or type-erased:
//!
//! ```
//! use lotus_eater::prelude::*;
//!
//! let cfg = BarGossipConfig::builder()
//!     .nodes(60)
//!     .updates_per_round(4)
//!     .copies_seeded(6)
//!     .rounds(20)
//!     .build()
//!     .expect("valid config");
//! let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
//!
//! // Type-erased: registries and CLIs drive `Box<dyn DynScenario>`.
//! let mut run = lotus_core::scenario::boxed::<BarGossipSim>(cfg, attack, 1);
//! let summary: ScenarioReport = run.finish();
//! assert_eq!(summary.scenario, "bar-gossip");
//! assert!(summary.metric("isolated_delivery").is_some());
//! ```
//!
//! The figure-regeneration harness lives in the `lotus-bench` crate: a
//! `ScenarioRegistry` maps scenario and attack names to the API above,
//! and the single `lotus-bench` CLI (plus the thin `fig*`/`ext_*` preset
//! binaries) sweeps any of them; see `EXPERIMENTS.md` for the CLI
//! grammar and the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bar_gossip;
pub use lotus_core;
pub use netsim;
pub use scrip_economy;
pub use torrent_sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use bar_gossip::{
        AttackKind, AttackPlan, BarGossipConfig, BarGossipReport, BarGossipSim, DefenseSuite,
        ScripGossipConfig, ScripGossipSim,
    };
    pub use lotus_core::attack::{
        Attacker, SatiateCut, SatiateRandomFraction, SatiateRareHolders, TokenAttack,
    };
    pub use lotus_core::bitset::BitSet;
    pub use lotus_core::satiation::{observation_3_1, Satiable};
    pub use lotus_core::scenario::{DynScenario, Scenario, ScenarioReport, StepOutcome, Summarize};
    pub use lotus_core::sweep::{sweep_fraction, sweep_scenario, SweepConfig};
    pub use lotus_core::token::{SatFunction, TokenScenarioConfig, TokenSystem, TokenSystemConfig};
    pub use netsim::graph::Graph;
    pub use netsim::metrics::Series;
    pub use netsim::rng::DetRng;
    pub use netsim::NodeId;
    pub use scrip_economy::reputation::{ReputationAttack, ReputationConfig, ReputationSim};
    pub use scrip_economy::{ScripConfig, ScripSim};
    pub use torrent_sim::{SwarmConfig, SwarmSim};
}
