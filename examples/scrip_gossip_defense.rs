//! The paper's boldest defense suggestion (§4), side by side with the
//! system it fixes: "scrip could be the basis for an incentive-compatible
//! gossip system that is robust against lotus-eater attacks."
//!
//! Run with: `cargo run --release --example scrip_gossip_defense`

use lotus_eater::bar_gossip::scrip_gossip::{ScripGossipConfig, ScripGossipSim};
use lotus_eater::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = BarGossipConfig::builder()
        .nodes(120)
        .updates_per_round(6)
        .copies_seeded(8)
        .rounds(25)
        .build()?;

    println!("Trade lotus-eater attack, satiating 70% of the system\n");
    println!(
        "{:>10} {:>22} {:>22}",
        "attacker", "vanilla BAR Gossip", "scrip gossip"
    );

    for fraction in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let attack = AttackPlan::trade_lotus_eater(fraction, 0.70);
        let vanilla = BarGossipSim::new(base.clone(), attack, 7).run_to_report();
        let scrip =
            ScripGossipSim::new(ScripGossipConfig::new(base.clone()), attack, 7).run_to_report();
        println!(
            "{:>9.0}% {:>21.3}{} {:>21.3}{}",
            fraction * 100.0,
            vanilla.isolated_delivery(),
            if vanilla.isolated_usable() { " " } else { "!" },
            scrip.isolated_delivery,
            if scrip.isolated_usable(0.93) {
                " "
            } else {
                "!"
            },
        );
    }

    println!();
    println!("('!' marks isolated delivery at or below the 93% usability line.)");
    println!();
    println!("Why it works: in scrip gossip, a node gifted every update stops BUYING");
    println!("but keeps SELLING — it still wants income. Update-satiation and");
    println!("money-satiation are decoupled, and money-satiation is capped by the");
    println!("fixed scrip supply (see the ext_scrip_supply experiment).");
    Ok(())
}
