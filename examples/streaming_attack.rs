//! A Figure-1-style sweep on a scaled-down streaming system, rendered as
//! an ASCII chart: how much must each attack control before the stream
//! becomes unusable for isolated nodes?
//!
//! Run with: `cargo run --release --example streaming_attack`

use lotus_eater::netsim::plot::{render, PlotConfig};
use lotus_eater::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BarGossipConfig::builder()
        .nodes(120)
        .updates_per_round(6)
        .copies_seeded(8)
        .rounds(25)
        .build()?;

    let xs = lotus_eater::lotus_core::sweep::grid(0.0, 0.6, 13);
    let sweep = SweepConfig::with_seeds(3);

    let mut curves = Vec::new();
    for (label, make) in [
        ("Crash attack", AttackPlan::crash as fn(f64) -> AttackPlan),
        ("Ideal lotus-eater attack", |x| {
            AttackPlan::ideal_lotus_eater(x, 0.70)
        }),
        ("Trade lotus-eater attack", |x| {
            AttackPlan::trade_lotus_eater(x, 0.70)
        }),
    ] {
        let cfg = cfg.clone();
        let curve = sweep_fraction(label, &xs, &sweep, move |x, seed| {
            BarGossipSim::new(cfg.clone(), make(x), seed)
                .run_to_report()
                .isolated_delivery()
        });
        curves.push(curve);
    }

    let chart = render(
        &curves,
        &PlotConfig {
            width: 64,
            height: 18,
            x_label: "fraction of nodes controlled by attacker".into(),
            y_label: "isolated delivery".into(),
            y_range: Some((0.0, 1.0)),
        },
    );
    println!("{chart}");

    let threshold = lotus_eater::lotus_core::report::UsabilityThreshold::BAR_GOSSIP;
    for curve in &curves {
        match threshold.break_point(curve) {
            Some(x) => println!(
                "{}: stream unusable once attacker holds {:.1}% of nodes",
                curve.label,
                x * 100.0
            ),
            None => println!("{}: never breaks the 93% line on this range", curve.label),
        }
    }
    println!();
    println!("Same ordering as the paper's Figure 1: the ideal lotus-eater needs a");
    println!("tiny sliver of the system, the trade variant a modest minority, and the");
    println!("traditional crash attack close to half.");
    Ok(())
}
