//! The §3 abstract model `(G, T, sat, f, c, a)` hands-on: Observation 3.1,
//! a grid-cut attack, and the healing power of a little altruism.
//!
//! Run with: `cargo run --release --example token_playground`

use lotus_eater::lotus_core::attack::{NoAttack, SatiateCut};
use lotus_eater::lotus_core::token::{Allocation, TokenSystemConfig};
use lotus_eater::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Observation 3.1, executed: feed a node tokens "sufficiently rapidly"
    // and it never provides service again.
    let cfg = TokenSystemConfig::builder(Graph::complete(30))
        .tokens(12)
        .build()?;
    let mut sys = TokenSystem::new(cfg, 1);
    let report = observation_3_1(&mut sys, NodeId(5), 50);
    println!("Observation 3.1 on a satiation-compatible system:");
    println!(
        "  target stayed satiated every round: {} / service provided during: {}",
        report.always_satiated, report.service_during
    );
    println!("  => the observation holds: {}\n", report.holds);

    // The same experiment with altruism a = 0.3: not satiation-compatible,
    // the observation must fail.
    let cfg = TokenSystemConfig::builder(Graph::complete(30))
        .tokens(12)
        .altruism(0.3)
        .build()?;
    let mut sys = TokenSystem::new(cfg, 1);
    let report = observation_3_1(&mut sys, NodeId(5), 50);
    println!("Same experiment with altruism a = 0.3:");
    println!(
        "  satiated throughout: {}, yet service provided: {} => holds: {}\n",
        report.always_satiated, report.service_during, report.holds
    );

    // A cut attack on a grid: satiate one column, starve the far side.
    let (rows, cols) = (6u32, 10u32);
    let grid = Graph::grid(rows, cols, false);
    let cfg = TokenSystemConfig::builder(grid)
        .tokens(10)
        .allocation(Allocation::Explicit({
            // Token 0 lives only in the left half.
            let mut lists = vec![vec![NodeId(0), NodeId(cols + 1)]];
            for t in 1..10u32 {
                lists.push(vec![NodeId(t), NodeId(rows * cols - 1 - t)]);
            }
            lists
        }))
        .build()?;
    let mut sys = TokenSystem::new(cfg, 3);
    let mut cut = SatiateCut::grid_column(rows, cols, cols / 2);
    let attacked = sys.run(&mut cut, 150);
    println!(
        "Grid {rows}x{cols}, column {} satiated ({} nodes): untouched coverage {:.3}",
        cols / 2,
        rows,
        attacked.untouched_mean_coverage()
    );
    let right_denied = (0..rows)
        .flat_map(|r| (cols / 2 + 1..cols).map(move |c| NodeId(r * cols + c)))
        .filter(|&v| !sys.holdings(v).contains(0))
        .count();
    println!(
        "  right-of-cut nodes denied the left-only token: {right_denied} of {}\n",
        (rows * (cols - cols / 2 - 1))
    );

    // Altruism sweep: even tiny a restores eventual completion.
    println!("Altruism a vs rounds to global satiation (ring of 40, no attack):");
    for a in [0.0, 0.05, 0.2, 0.5] {
        let cfg = TokenSystemConfig::builder(Graph::cycle(40))
            .tokens(6)
            .altruism(a)
            .build()?;
        let mut sys = TokenSystem::new(cfg, 9);
        let report = sys.run(&mut NoAttack, 2_000);
        match report.all_satiated_at {
            Some(t) => println!("  a = {a:>4}: all satiated by round {t}"),
            None => println!(
                "  a = {a:>4}: stuck after {} rounds (coverage {:.3}) — satiation trap",
                report.rounds,
                report.mean_coverage()
            ),
        }
    }
    Ok(())
}
