//! The scrip-system story (§1 and §4 of the paper): money is satiation,
//! so the attacker satiates agents with scrip — but the fixed money
//! supply caps how many agents he can ever satiate, and satiating the
//! *right* agents (rare-resource owners) denies a service to everyone.
//!
//! Run with: `cargo run --release --example scrip_economy`

use lotus_eater::prelude::*;
use lotus_eater::scrip_economy::ScripAttack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A healthy threshold economy.
    let cfg = ScripConfig::builder()
        .agents(100)
        .money_per_agent(3)
        .threshold(5)
        .rounds(20_000)
        .warmup(2_000)
        .build()?;
    let healthy = ScripSim::new(cfg.clone(), ScripAttack::None, 1).run_to_report();
    println!("healthy economy: service rate {:.3}", healthy.service_rate);

    // 2. Satiate 10% of agents: cheap and effective for the attacker.
    let small = ScripSim::new(cfg.clone(), ScripAttack::lotus_eater(0.10, 0.5), 1).run_to_report();
    println!(
        "satiate 10%:     targets satiated {:.1}% of the time",
        small.target_satiation.unwrap_or(0.0) * 100.0
    );

    // 3. Try to satiate 70%: the money supply says no.
    let large = ScripSim::new(cfg.clone(), ScripAttack::lotus_eater(0.70, 1.0), 1).run_to_report();
    println!(
        "satiate 70%:     targets satiated {:.1}% of the time — locking 70 x 5 scrip",
        large.target_satiation.unwrap_or(0.0) * 100.0
    );
    println!(
        "                 needs 350 units; the whole system only has {}.",
        cfg.total_supply()
    );

    // 4. The retainer attack: satiate the three owners of a rare service.
    let rare_cfg = ScripConfig::builder()
        .agents(100)
        .money_per_agent(3)
        .threshold(5)
        .special_service(3, 0.03)
        .rounds(30_000)
        .warmup(3_000)
        .build()?;
    let clean = ScripSim::new(rare_cfg.clone(), ScripAttack::None, 2).run_to_report();
    let retained = ScripSim::new(rare_cfg, ScripAttack::retainer(0.3), 2).run_to_report();
    println!();
    println!("retainer attack on the 3 providers of a rare service:");
    println!(
        "  special-service rate: {:.3} (clean) -> {:.3} (attacked)",
        clean.special_service_rate, retained.special_service_rate
    );
    println!("  \"companies sign an exclusive contract or put particular lawyers on");
    println!("   retainer to deny others access to them\" (§1).");
    Ok(())
}
