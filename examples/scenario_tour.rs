//! Tour of the unified `Scenario` API: run the same lotus-eater attack
//! family against every substrate through one interface and compare the
//! common-vocabulary reports.
//!
//! ```text
//! cargo run --release --example scenario_tour
//! ```

use lotus_eater::lotus_core::scenario::{boxed, DynScenario};
use lotus_eater::prelude::*;
use lotus_eater::scrip_economy::ScripAttack;
use lotus_eater::torrent_sim::{SwarmAttack, TargetPolicy};

fn main() {
    // One attack posture — "satiate roughly a third of the honest
    // population" — expressed in each substrate's native attack type.
    let seed = 7;
    let mut runs: Vec<Box<dyn DynScenario>> = vec![
        boxed::<BarGossipSim>(
            BarGossipConfig::builder()
                .nodes(80)
                .updates_per_round(4)
                .copies_seeded(6)
                .rounds(30)
                .build()
                .expect("valid config"),
            AttackPlan::trade_lotus_eater(0.30, 0.70),
            seed,
        ),
        boxed::<ScripSim>(
            ScripConfig::builder()
                .agents(80)
                .rounds(4_000)
                .warmup(400)
                .build()
                .expect("valid config"),
            ScripAttack::lotus_eater(0.33, 1.0),
            seed,
        ),
        boxed::<SwarmSim>(
            SwarmConfig::builder()
                .leechers(32)
                .pieces(48)
                .build()
                .expect("valid config"),
            SwarmAttack::satiate(3, 8, 0.33, TargetPolicy::Random),
            seed,
        ),
        boxed::<TokenSystem>(
            TokenScenarioConfig::new(
                TokenSystemConfig::builder(Graph::complete(80))
                    .tokens(16)
                    .build()
                    .expect("valid config"),
                120,
            ),
            TokenAttack::random_fraction(0.33),
            seed,
        ),
    ];

    println!("One attack posture, four substrates, one report vocabulary:\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>7}",
        "scenario", "rounds", "overall", "targeted", "usable"
    );
    for run in &mut runs {
        let s = run.finish();
        println!(
            "{:<12} {:>8} {:>10.3} {:>10.3} {:>7}",
            s.scenario, s.rounds, s.overall_delivery, s.targeted_service, s.usable
        );
    }
    println!();
    println!("The lotus-eater signature: the targeted population is served at or");
    println!("near saturation while overall honest service degrades — except in");
    println!("BitTorrent, where the attacker's upload capacity helps the swarm.");
    println!("Run `lotus-bench --list` for the full scenario catalogue.");
}
