//! The four defense principles of §4, each exercised against a live
//! attack:
//!
//! 1. resilience to non-random failures — spread the initial allocation;
//! 2. making satiation hard — network-coding satiation (any k of n);
//! 3. leveraging obedience — report-and-evict excessive service;
//! 4. encouraging altruism — bigger optimistic pushes.
//!
//! Run with: `cargo run --release --example defense_playbook`

use lotus_eater::bar_gossip::ReportConfig;
use lotus_eater::lotus_core::attack::{BudgetedAttacker, SatiateRareHolders};
use lotus_eater::lotus_core::defense::{Mechanism, Principle};
use lotus_eater::lotus_core::token::{Allocation, SatFunction, TokenSystemConfig};
use lotus_eater::prelude::*;

fn token_reach(copies: usize, sat: SatFunction) -> f64 {
    let n = 50u32;
    let cfg = TokenSystemConfig::builder(Graph::complete(n))
        .tokens(8)
        .sat(sat)
        .allocation(Allocation::RareToken {
            holder: NodeId(0),
            copies: copies.max(2),
        })
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, 7);
    let mut attack = BudgetedAttacker::new(SatiateRareHolders::new(0), 2);
    let report = sys.run(&mut attack, 80);
    report.untouched_mean_coverage()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The §4 defense playbook\n");

    // 1. Non-random failure resilience: the rare token's initial spread.
    println!("[1] {}", Principle::NonRandomFailureResilience);
    let single = {
        let cfg = TokenSystemConfig::builder(Graph::complete(50))
            .tokens(8)
            .allocation(Allocation::RareToken {
                holder: NodeId(0),
                copies: 3,
            })
            .build()?;
        let mut sys = TokenSystem::new(cfg, 7);
        let mut attack = BudgetedAttacker::new(SatiateRareHolders::new(0), 2);
        sys.run(&mut attack, 80).untouched_mean_coverage()
    };
    println!("    rare token at ONE node, budget-2 attacker: coverage {single:.3}");
    println!("    -> spread every resource before an attacker can find it\n");

    // 2. Making satiation hard: coding changes the satiation function.
    println!(
        "[2] {} — {}",
        Principle::MakeSatiationHard,
        Mechanism::Coding { need: 6 }.label()
    );
    let collect_all = token_reach(2, SatFunction::CollectAll);
    let coded = token_reach(2, SatFunction::AnyK(6));
    println!("    collect-all coverage under rare-token attack: {collect_all:.3}");
    println!("    any-6-of-8 coverage under the same attack:    {coded:.3}\n");

    // 3. Leveraging obedience: report-and-evict.
    println!(
        "[3] {} — {}",
        Principle::LeverageObedience,
        Mechanism::ReportAndEvict {
            obedient_fraction: 0.5,
            quorum: 3
        }
        .label()
    );
    let base = BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .copies_seeded(8)
        .rounds(25)
        .build()?;
    let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
    let undefended = BarGossipSim::new(base.clone(), attack, 3).run_to_report();
    let defended_cfg = BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .copies_seeded(8)
        .rounds(25)
        .report_defense(ReportConfig {
            obedient_fraction: 0.5,
            quorum: 3,
            excess_slack: 1,
        })
        .build()?;
    let defended = BarGossipSim::new(defended_cfg, attack, 3).run_to_report();
    println!(
        "    trade attack at 30%: isolated delivery {:.3} -> {:.3} ({} of {} attackers evicted)\n",
        undefended.isolated_delivery(),
        defended.isolated_delivery(),
        defended.evictions,
        defended.counts.attacker
    );

    // 4. Encouraging altruism: bigger pushes (Figure 2's defense).
    println!(
        "[4] {} — {}",
        Principle::EncourageAltruism,
        Mechanism::PushSize(10).label()
    );
    let ideal = AttackPlan::ideal_lotus_eater(0.10, 0.70);
    let small_push = BarGossipSim::new(base.clone(), ideal, 5).run_to_report();
    let big_push_cfg = BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .copies_seeded(8)
        .rounds(25)
        .push_size(10)
        .build()?;
    let big_push = BarGossipSim::new(big_push_cfg, ideal, 5).run_to_report();
    println!(
        "    ideal attack at 10%: isolated delivery {:.3} (push 2) -> {:.3} (push 10)",
        small_push.isolated_delivery(),
        big_push.isolated_delivery()
    );
    println!("    willingness to give away more — at the risk of junk — feeds the isolated.");
    Ok(())
}
