//! Quickstart: mount the three attacks of the paper's Figure 1 against a
//! small BAR Gossip system and compare what isolated nodes receive.
//!
//! Run with: `cargo run --release --example quickstart`

use lotus_eater::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down BAR Gossip system (the paper's Table 1 uses 250 nodes;
    // `BarGossipConfig::default()` reproduces it exactly).
    let cfg = BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .update_lifetime(10)
        .copies_seeded(8)
        .rounds(30)
        .build()?;

    println!(
        "BAR Gossip, {} nodes — attacker controls 20% of the system\n",
        100
    );
    println!(
        "{:<28} {:>18} {:>18} {:>14}",
        "attack", "isolated delivery", "satiated delivery", "usable?"
    );

    let attacks = [
        ("no attack", AttackPlan::none()),
        ("crash", AttackPlan::crash(0.20)),
        (
            "ideal lotus-eater",
            AttackPlan::ideal_lotus_eater(0.20, 0.70),
        ),
        (
            "trade lotus-eater",
            AttackPlan::trade_lotus_eater(0.20, 0.70),
        ),
    ];

    for (name, plan) in attacks {
        let report = BarGossipSim::new(cfg.clone(), plan, 42).run_to_report();
        println!(
            "{:<28} {:>18.3} {:>18.3} {:>14}",
            name,
            report.isolated_delivery(),
            report.satiated_delivery(),
            if report.isolated_usable() {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!();
    println!("The lotus-eater attacker harms nobody directly — he *gives* service to");
    println!("the satiated 70% until they stop serving everyone else. Isolated nodes");
    println!("starve while satiated nodes enjoy near-perfect delivery.");
    Ok(())
}
