#!/usr/bin/env bash
# tools/lint.sh — the CI determinism/hot-path lint gate.
#
# Runs `lotus-lint` (crates/lint): a dependency-free static pass enforcing
# per-tier forbidden APIs (hash containers, wall clocks, ambient env in
# sim crates), rng fork-label hygiene against crates/lint/fork_labels.txt,
# allocation bans inside `// lint: hot-loop` functions, and crate-root
# lint policy. Sanctioned exceptions live in crates/lint/allowlist.txt;
# stale entries in either file fail the gate too.
#
# usage: tools/lint.sh [extra lotus-lint args]
#   e.g. tools/lint.sh                    # full gate, exit 1 on violations
#        tools/lint.sh --update-registry  # refresh the fork-label registry
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q --release -p lint --bin lotus-lint -- "$@"
