#!/usr/bin/env bash
# tools/bench_gate.sh — the CI bench-regression gate.
#
# Times registered scenarios with the built-in `lotus-bench --bench`
# harness (the same dependency-free timing mode that produced the
# committed BENCH_<date>.json records), then diffs per-(scenario, attack)
# run-min nanoseconds against the newest committed record and fails when
# any pair regresses by more than the threshold. The threshold is
# deliberately generous — run-min is the least noisy single number, but
# shared runners still jitter — and pairs present on only one side are
# reported without failing, so adding a scenario never breaks the gate.
#
# usage: tools/bench_gate.sh [fresh-output.json] [-- <extra lotus-bench args>]
#   e.g. tools/bench_gate.sh                         # full gate, all scenarios
#        tools/bench_gate.sh out.json -- --scenario bar-gossip
#
# environment:
#   BENCH_GATE_BASELINE    baseline record (default: newest BENCH_*.json)
#   BENCH_GATE_THRESHOLD   allowed run-min regression in percent (default 25;
#                          raise it when baseline and fresh run on different
#                          machines — absolute nanoseconds only compare
#                          within one machine)
#   BENCH_GATE_SCALE       set to 0 to skip the informational O(active)
#                          scale curve (`lotus-bench --bench-scale`) that
#                          is printed after the gate verdict
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="bench_fresh.json"
if [ $# -gt 0 ] && [ "$1" != "--" ]; then
  OUT="$1"
  shift
fi
if [ "${1:-}" = "--" ]; then
  shift
fi

BASELINE="${BENCH_GATE_BASELINE:-$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-25}"
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
  echo "bench gate: no committed BENCH_*.json baseline found" >&2
  exit 2
fi

echo "bench gate: baseline $BASELINE, threshold ${THRESHOLD}%, extra args: ${*:-(none)}"
cargo run --release -p lotus-bench --bin lotus-bench -- \
  --bench --format json "$@" >"$OUT"
echo "bench gate: fresh record written to $OUT"

python3 - "$BASELINE" "$OUT" "$THRESHOLD" <<'PY'
import json
import sys

base_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])


def index(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["scenario"], r["attack"]): r for r in doc["scenarios"]}


base, fresh = index(base_path), index(fresh_path)
failed, compared = [], 0
print(f"{'scenario':<14} {'attack':<12} {'base run-min':>14} {'fresh run-min':>14} {'delta':>9}")
for key, rec in fresh.items():
    scenario, attack = key
    ref = base.get(key)
    f_min = rec["run_ns"]["min"]
    if ref is None:
        print(f"{scenario:<14} {attack:<12} {'(new)':>14} {f_min:>14} {'-':>9}")
        continue
    compared += 1
    b_min = ref["run_ns"]["min"]
    delta = 100.0 * (f_min - b_min) / b_min
    flag = "  REGRESSION" if delta > threshold else ""
    print(f"{scenario:<14} {attack:<12} {b_min:>14} {f_min:>14} {delta:>+8.1f}%{flag}")
    if delta > threshold:
        failed.append((key, delta))
for key in sorted(set(base) - set(fresh)):
    print(f"{key[0]:<14} {key[1]:<12} {base[key]['run_ns']['min']:>14} {'(not run)':>14} {'-':>9}")
if compared == 0:
    print("bench gate: nothing to compare (no shared scenario/attack pairs)", file=sys.stderr)
    sys.exit(2)
if failed:
    summary = ", ".join(f"{s}/{a} {d:+.1f}%" for (s, a), d in failed)
    print(f"bench gate: run-min regressions above {threshold}%: {summary}", file=sys.stderr)
    sys.exit(1)
print(f"bench gate: OK — {compared} pair(s) within {threshold}%")
PY

# Informational O(active) scale curve: step-ns versus total N and versus
# active fraction, proving the sharded engine's cost tracks the active
# set, not the universe. Printed, not gated — the ratio moves with the
# runner's memory subsystem, and the 1M-node scenario's run-min is
# already gated above via the bar-gossip-1m registry entry.
if [ "${BENCH_GATE_SCALE:-1}" != "0" ]; then
  echo
  echo "bench gate: O(active) scale curve (informational, not gated)"
  cargo run --release -p lotus-bench --bin lotus-bench -- \
    --bench-scale --bench-iters 2 --bench-warmup 1
fi
