//! Integration: the paper's headline result survives end-to-end.
//!
//! On a scaled-down BAR Gossip system, the three attacks of Figure 1 must
//! order exactly as the paper reports: the ideal lotus-eater breaks the
//! stream with far fewer nodes than the trade variant, which needs far
//! fewer than the crash baseline — and the satiated set enjoys
//! near-perfect service throughout.

use lotus_eater::lotus_core::report::UsabilityThreshold;
use lotus_eater::lotus_core::sweep::{grid, sweep_fraction, SweepConfig};
use lotus_eater::prelude::*;

fn small_cfg() -> BarGossipConfig {
    BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .update_lifetime(10)
        .copies_seeded(8)
        .rounds(20)
        .warmup_rounds(10)
        .build()
        .expect("valid config")
}

fn curve(kind: AttackKind, xs: &[f64]) -> netsim::metrics::Series {
    let cfg = small_cfg();
    let sweep = SweepConfig {
        seeds: vec![1, 2],
        threads: 4,
    };
    sweep_fraction(kind.label(), xs, &sweep, move |x, seed| {
        let plan = match kind {
            AttackKind::None => AttackPlan::none(),
            AttackKind::Crash => AttackPlan::crash(x),
            AttackKind::IdealLotusEater => AttackPlan::ideal_lotus_eater(x, 0.70),
            AttackKind::TradeLotusEater => AttackPlan::trade_lotus_eater(x, 0.70),
            AttackKind::Masquerade => AttackPlan::masquerade(x),
            AttackKind::Poison => AttackPlan::poison(x, 1.0),
        };
        BarGossipSim::new(cfg.clone(), plan, seed)
            .run_to_report()
            .isolated_delivery()
    })
}

#[test]
fn break_points_order_as_in_figure_1() {
    let xs = grid(0.0, 0.8, 9);
    let threshold = UsabilityThreshold::BAR_GOSSIP;

    let ideal = threshold.break_point(&curve(AttackKind::IdealLotusEater, &xs));
    let trade = threshold.break_point(&curve(AttackKind::TradeLotusEater, &xs));
    let crash = threshold.break_point(&curve(AttackKind::Crash, &xs));

    let ideal = ideal.expect("ideal attack must break the stream on [0, 0.8]");
    let trade = trade.expect("trade attack must break the stream on [0, 0.8]");
    assert!(
        ideal < trade,
        "ideal ({ideal:.3}) must break earlier than trade ({trade:.3})"
    );
    // If crash never breaks on this range, the ordering holds trivially.
    if let Some(c) = crash {
        assert!(
            trade < c,
            "trade ({trade:.3}) must break earlier than crash ({c:.3})"
        );
    }
}

#[test]
fn satiated_nodes_receive_near_perfect_service() {
    for plan in [
        AttackPlan::ideal_lotus_eater(0.15, 0.70),
        AttackPlan::trade_lotus_eater(0.30, 0.70),
    ] {
        let report = BarGossipSim::new(small_cfg(), plan, 5).run_to_report();
        assert!(
            report.satiated_delivery() > 0.95,
            "{:?}: satiated delivery {}",
            plan.kind,
            report.satiated_delivery()
        );
        assert!(
            report.isolated_delivery() < report.satiated_delivery(),
            "{:?}: isolated must do worse than satiated",
            plan.kind
        );
    }
}

#[test]
fn partial_satiation_suffices_for_the_ideal_attack() {
    // Paper: at its break point the ideal attacker holds well under full
    // coverage — frequent partial satiation is enough. (At this reduced
    // scale the denser seeding means the break happens around 10%.)
    let report = BarGossipSim::new(small_cfg(), AttackPlan::ideal_lotus_eater(0.10, 0.70), 3)
        .run_to_report();
    assert!(
        report.attacker_coverage < 0.75,
        "attacker coverage should be partial, got {}",
        report.attacker_coverage
    );
    assert!(
        report.isolated_delivery() < 0.93,
        "yet the attack already breaks usability, got {}",
        report.isolated_delivery()
    );
}

#[test]
fn crash_attack_is_bandwidth_free_and_lotus_eater_is_not() {
    let crash = BarGossipSim::new(small_cfg(), AttackPlan::crash(0.3), 7).run_to_report();
    let trade =
        BarGossipSim::new(small_cfg(), AttackPlan::trade_lotus_eater(0.3, 0.7), 7).run_to_report();
    assert_eq!(crash.mean_attacker_upload, 0.0);
    assert!(
        trade.mean_attacker_upload > crash.mean_attacker_upload,
        "the trade attack must pay bandwidth"
    );
}
