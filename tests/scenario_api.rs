//! Property tests for the unified `Scenario` API (ISSUE 1 satellite):
//!
//! * every registered scenario is deterministic — the same
//!   `(config, attack, seed)` triple produces a bit-identical
//!   `ScenarioReport`;
//! * the type-erased `DynScenario` layer round-trips the typed reports —
//!   driving through `Box<dyn DynScenario>` yields exactly
//!   `typed_report.summarize()`;
//! * the scenario path agrees with each substrate's legacy
//!   `run_to_report`/`run` entry point.

use lotus_eater::lotus_core::attack::TokenAttack;
use lotus_eater::lotus_core::scenario::{
    boxed, run, DynScenario, Scenario, ScenarioReport, Summarize,
};
use lotus_eater::lotus_core::token::{TokenScenarioConfig, TokenSystemConfig};
use lotus_eater::prelude::*;
use lotus_eater::scrip_economy::ScripAttack;
use lotus_eater::torrent_sim::{SwarmAttack, TargetPolicy};

fn token_cfg() -> TokenScenarioConfig {
    TokenScenarioConfig::new(
        TokenSystemConfig::builder(Graph::complete(24))
            .tokens(8)
            .build()
            .expect("valid config"),
        60,
    )
}

/// Drive a scenario twice from the same seed, typed and erased, and check
/// all three contract clauses.
fn check_contract<S: Scenario + 'static>(cfg: S::Config, attack: S::Attack, seed: u64)
where
    S::Report: PartialEq + std::fmt::Debug,
{
    let a = run::<S>(cfg.clone(), attack.clone(), seed);
    let b = run::<S>(cfg.clone(), attack.clone(), seed);
    assert_eq!(
        a,
        b,
        "{}: same seed must give bit-identical reports",
        S::NAME
    );

    let summary: ScenarioReport = boxed::<S>(cfg, attack, seed).finish();
    assert_eq!(
        summary,
        a.summarize(),
        "{}: DynScenario must round-trip the typed report",
        S::NAME
    );
    assert_eq!(summary.scenario, S::NAME);
}

#[test]
fn all_scenarios_are_deterministic_and_round_trip() {
    for seed in [1, 7, 42] {
        check_contract::<BarGossipSim>(
            BarGossipConfig::builder()
                .nodes(60)
                .updates_per_round(4)
                .copies_seeded(6)
                .rounds(15)
                .warmup_rounds(5)
                .build()
                .expect("valid config"),
            AttackPlan::trade_lotus_eater(0.3, 0.7),
            seed,
        );
        check_contract::<ScripSim>(
            ScripConfig::builder()
                .agents(40)
                .rounds(800)
                .warmup(100)
                .build()
                .expect("valid config"),
            ScripAttack::lotus_eater(0.4, 1.0),
            seed,
        );
        check_contract::<SwarmSim>(
            SwarmConfig::builder()
                .leechers(16)
                .pieces(24)
                .build()
                .expect("valid config"),
            SwarmAttack::satiate(2, 4, 0.3, TargetPolicy::Random),
            seed,
        );
        check_contract::<TokenSystem>(token_cfg(), TokenAttack::random_fraction(0.4), seed);
        check_contract::<ScripGossipSim>(
            ScripGossipConfig::new(
                BarGossipConfig::builder()
                    .nodes(60)
                    .updates_per_round(4)
                    .copies_seeded(6)
                    .rounds(15)
                    .warmup_rounds(5)
                    .build()
                    .expect("valid config"),
            ),
            AttackPlan::trade_lotus_eater(0.3, 0.7),
            seed,
        );
        check_contract::<ReputationSim>(
            ReputationConfig {
                agents: 40,
                rounds: 800,
                warmup: 100,
                ..ReputationConfig::default()
            },
            ReputationAttack::Inflate {
                target_fraction: 0.4,
            },
            seed,
        );
    }
}

#[test]
fn scenario_path_matches_legacy_run_to_report() {
    let cfg = BarGossipConfig::builder()
        .nodes(60)
        .updates_per_round(4)
        .copies_seeded(6)
        .rounds(15)
        .warmup_rounds(5)
        .build()
        .expect("valid config");
    let attack = AttackPlan::trade_lotus_eater(0.3, 0.7);
    let legacy = BarGossipSim::new(cfg.clone(), attack, 11).run_to_report();
    let scenario = run::<BarGossipSim>(cfg, attack, 11);
    assert_eq!(legacy, scenario);

    let scfg = ScripConfig::builder()
        .agents(40)
        .rounds(800)
        .warmup(100)
        .build()
        .expect("valid config");
    let legacy =
        ScripSim::new(scfg.clone(), ScripAttack::lotus_eater(0.4, 1.0), 11).run_to_report();
    let scenario = run::<ScripSim>(scfg, ScripAttack::lotus_eater(0.4, 1.0), 11);
    assert_eq!(legacy, scenario);

    let wcfg = SwarmConfig::builder()
        .leechers(16)
        .pieces(24)
        .build()
        .expect("valid config");
    let attack = SwarmAttack::satiate(2, 4, 0.3, TargetPolicy::Random);
    let legacy = SwarmSim::new(wcfg.clone(), attack, 11).run_to_report();
    let scenario = run::<SwarmSim>(wcfg, attack, 11);
    assert_eq!(legacy, scenario);

    // Token model: the legacy entry point takes the attacker by &mut and
    // the horizon as an argument; the scenario path must match it.
    let tcfg = token_cfg();
    let mut legacy_sys = TokenSystem::new(tcfg.system.clone(), 11);
    let mut legacy_attack = lotus_eater::lotus_core::attack::SatiateRandomFraction::new(0.4);
    let legacy = legacy_sys.run(&mut legacy_attack, 60);
    let scenario = run::<TokenSystem>(tcfg, TokenAttack::random_fraction(0.4), 11);
    assert_eq!(legacy, scenario);
}

#[test]
fn step_after_done_is_a_no_op() {
    let mut sim = TokenSystem::build(token_cfg(), TokenAttack::none(), 3);
    let first = Scenario::finish(&mut sim);
    for _ in 0..3 {
        assert!(Scenario::step(&mut sim).is_done());
    }
    assert_eq!(
        Scenario::report(&sim),
        first,
        "stepping a finished scenario must not change its report"
    );
}

#[test]
fn erased_scenarios_mix_in_one_collection() {
    let mut runs: Vec<Box<dyn DynScenario>> = vec![
        boxed::<TokenSystem>(token_cfg(), TokenAttack::random_fraction(0.3), 5),
        boxed::<SwarmSim>(
            SwarmConfig::builder()
                .leechers(12)
                .pieces(16)
                .build()
                .expect("valid config"),
            SwarmAttack::none(),
            5,
        ),
    ];
    let summaries: Vec<ScenarioReport> = runs.iter_mut().map(|s| s.finish()).collect();
    assert_eq!(summaries[0].scenario, "token");
    assert_eq!(summaries[1].scenario, "bittorrent");
    for s in &summaries {
        assert!(s.overall_delivery >= 0.0 && s.overall_delivery <= 1.0);
        assert!(s.metric("rounds").unwrap() > 0.0);
    }
}
