//! Integration: every §4 defense measurably helps against a live attack.

use lotus_eater::bar_gossip::ReportConfig;
use lotus_eater::lotus_core::attack::{BudgetedAttacker, SatiateRareHolders};
use lotus_eater::lotus_core::token::{Allocation, SatFunction, TokenSystemConfig};
use lotus_eater::prelude::*;

/// A consistent scaled-down BAR Gossip config for defense tests.
fn small(push_size: u32, unbalanced: bool) -> BarGossipConfig {
    BarGossipConfig::builder()
        .nodes(100)
        .updates_per_round(6)
        .update_lifetime(10)
        .copies_seeded(8)
        .rounds(20)
        .warmup_rounds(10)
        .push_size(push_size)
        .unbalanced_exchanges(unbalanced)
        .build()
        .expect("valid config")
}

#[test]
fn bigger_pushes_blunt_the_ideal_attack_figure_2() {
    let attack = AttackPlan::ideal_lotus_eater(0.10, 0.70);
    let mut small_sum = 0.0;
    let mut big_sum = 0.0;
    for seed in 1..=3u64 {
        small_sum += BarGossipSim::new(small(2, false), attack, seed)
            .run_to_report()
            .isolated_delivery();
        big_sum += BarGossipSim::new(small(10, false), attack, seed)
            .run_to_report()
            .isolated_delivery();
    }
    assert!(
        big_sum > small_sum + 0.05,
        "push size 10 must help isolated nodes: {big_sum:.3} vs {small_sum:.3} (sum of 3 seeds)"
    );
}

#[test]
fn unbalanced_exchanges_blunt_the_trade_attack_figure_3() {
    let attack = AttackPlan::trade_lotus_eater(0.25, 0.70);
    let mut bal = 0.0;
    let mut unb = 0.0;
    for seed in 1..=3u64 {
        bal += BarGossipSim::new(small(2, false), attack, seed)
            .run_to_report()
            .isolated_delivery();
        unb += BarGossipSim::new(small(2, true), attack, seed)
            .run_to_report()
            .isolated_delivery();
    }
    assert!(
        unb > bal,
        "unbalanced exchanges must help isolated nodes: {unb:.3} vs {bal:.3}"
    );
}

#[test]
fn figure_3_combination_beats_the_baseline() {
    let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
    let run = |push, unb| -> f64 {
        (1..=3u64)
            .map(|seed| {
                BarGossipSim::new(small(push, unb), attack, seed)
                    .run_to_report()
                    .isolated_delivery()
            })
            .sum::<f64>()
            / 3.0
    };
    let baseline = run(2, false);
    let combo = run(4, true);
    assert!(
        combo > baseline,
        "push 4 + unbalanced must beat the baseline: {combo:.3} vs {baseline:.3}"
    );
}

#[test]
fn report_and_evict_restores_usability() {
    let attack = AttackPlan::trade_lotus_eater(0.30, 0.70);
    let undefended = BarGossipSim::new(small(2, false), attack, 5).run_to_report();
    let mut cfg = small(2, false);
    cfg.defenses.report = Some(ReportConfig {
        obedient_fraction: 0.6,
        quorum: 3,
        excess_slack: 1,
    });
    let defended = BarGossipSim::new(cfg, attack, 5).run_to_report();
    assert!(
        defended.evictions > 0,
        "obedient reporters must evict attackers"
    );
    assert!(
        defended.isolated_delivery() > undefended.isolated_delivery(),
        "eviction must restore isolated delivery: {} vs {}",
        defended.isolated_delivery(),
        undefended.isolated_delivery()
    );
}

#[test]
fn coding_satiation_defeats_rare_token_denial() {
    let run = |sat: SatFunction| -> f64 {
        let cfg = TokenSystemConfig::builder(Graph::complete(50))
            .tokens(10)
            .sat(sat)
            .allocation(Allocation::RareToken {
                holder: NodeId(0),
                copies: 4,
            })
            .build()
            .expect("valid config");
        let mut sys = TokenSystem::new(cfg, 11);
        let mut attack = SatiateRareHolders::new(0);
        let report = sys.run(&mut attack, 80);
        // Fraction of untouched nodes reaching satiation (getting content).
        let attacked: std::collections::HashSet<_> =
            report.attacked_nodes.iter().copied().collect();
        let mut ok = 0u32;
        let mut total = 0u32;
        for v in NodeId::all(50) {
            if attacked.contains(&v) {
                continue;
            }
            total += 1;
            if sat.is_satiated(sys.holdings(v)) {
                ok += 1;
            }
        }
        f64::from(ok) / f64::from(total.max(1))
    };
    let collect_all = run(SatFunction::CollectAll);
    let coded = run(SatFunction::AnyK(9));
    assert_eq!(
        collect_all, 0.0,
        "denying the rare token denies collect-all entirely"
    );
    assert!(
        coded > 0.9,
        "any-9-of-10 coding must make the rare token skippable, got {coded}"
    );
}

#[test]
fn altruism_defends_the_token_model() {
    let run = |a: f64| -> f64 {
        let cfg = TokenSystemConfig::builder(Graph::complete(60))
            .tokens(16)
            .altruism(a)
            .build()
            .expect("valid config");
        let mut sys = TokenSystem::new(cfg, 13);
        let mut attack = SatiateRandomFraction::new(0.5);
        sys.run(&mut attack, 100).untouched_mean_coverage()
    };
    let without = run(0.0);
    let with = run(0.2);
    assert!(
        with > without,
        "altruism must raise untouched coverage: {with:.3} vs {without:.3}"
    );
    assert!(
        with > 0.99,
        "a = 0.2 should essentially heal the system, got {with}"
    );
}

#[test]
fn budgeted_rare_holder_attack_defeated_by_spreading() {
    let reach = |copies: usize| -> f64 {
        let cfg = TokenSystemConfig::builder(Graph::complete(50))
            .tokens(8)
            .allocation(Allocation::Explicit({
                let mut lists = vec![(0..copies as u32).map(NodeId).collect::<Vec<_>>()];
                for t in 1..8u32 {
                    lists.push(vec![NodeId(t * 3), NodeId(t * 5 % 50)]);
                }
                lists
            }))
            .build()
            .expect("valid config");
        let mut sys = TokenSystem::new(cfg, 17);
        let mut attack = BudgetedAttacker::new(SatiateRareHolders::new(0), 2);
        sys.run(&mut attack, 80);
        sys.view().holders_of(0).len() as f64 / 50.0
    };
    let contained = reach(1);
    let escaped = reach(6);
    assert!(contained < 0.2, "single holder contained, got {contained}");
    assert!(
        escaped > 0.8,
        "six holders outrun a budget-2 attacker, got {escaped}"
    );
}
