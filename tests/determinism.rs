//! Integration: every simulator in the workspace is fully deterministic
//! given its seed — the property that makes the figures in EXPERIMENTS.md
//! reproducible on any machine.

use lotus_eater::lotus_core::attack::SatiateRandomFraction;
use lotus_eater::lotus_core::token::TokenSystemConfig;
use lotus_eater::prelude::*;
use lotus_eater::scrip_economy::ScripAttack;
use lotus_eater::torrent_sim::{SwarmAttack, TargetPolicy};

#[test]
fn bar_gossip_is_deterministic() {
    let cfg = BarGossipConfig::builder()
        .nodes(60)
        .updates_per_round(4)
        .copies_seeded(6)
        .rounds(15)
        .build()
        .expect("valid config");
    let plan = AttackPlan::trade_lotus_eater(0.25, 0.70);
    let a = BarGossipSim::new(cfg.clone(), plan, 99).run_to_report();
    let b = BarGossipSim::new(cfg.clone(), plan, 99).run_to_report();
    assert_eq!(a, b);
    let c = BarGossipSim::new(cfg, plan, 100).run_to_report();
    assert_ne!(a.delivery, c.delivery, "different seeds must differ");
}

#[test]
fn token_system_is_deterministic() {
    let build = || {
        TokenSystemConfig::builder(Graph::grid(6, 8, false))
            .tokens(12)
            .altruism(0.1)
            .build()
            .expect("valid config")
    };
    let a = TokenSystem::new(build(), 7).run(&mut SatiateRandomFraction::new(0.3), 60);
    let b = TokenSystem::new(build(), 7).run(&mut SatiateRandomFraction::new(0.3), 60);
    assert_eq!(a, b);
}

#[test]
fn scrip_economy_is_deterministic() {
    let cfg = ScripConfig::builder()
        .agents(50)
        .rounds(4_000)
        .warmup(400)
        .build()
        .expect("valid config");
    let a = ScripSim::new(cfg.clone(), ScripAttack::lotus_eater(0.2, 0.4), 31).run_to_report();
    let b = ScripSim::new(cfg, ScripAttack::lotus_eater(0.2, 0.4), 31).run_to_report();
    assert_eq!(a, b);
}

#[test]
fn swarm_is_deterministic() {
    let cfg = SwarmConfig::builder()
        .leechers(25)
        .pieces(32)
        .build()
        .expect("valid config");
    let attack = SwarmAttack::satiate(2, 6, 0.3, TargetPolicy::Random);
    let a = SwarmSim::new(cfg.clone(), attack, 13).run_to_report();
    let b = SwarmSim::new(cfg, attack, 13).run_to_report();
    assert_eq!(a, b);
}

#[test]
fn deterministic_rng_streams_are_platform_stable() {
    // Pin concrete values: if the PCG implementation ever changes, every
    // figure in EXPERIMENTS.md silently changes too — fail loudly instead.
    let mut rng = DetRng::seed_from(0xC0FFEE);
    let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let mut rng2 = DetRng::seed_from(0xC0FFEE);
    let draws2: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
    assert_eq!(draws, draws2);
    // Forked streams must be stable too.
    let mut child = rng.fork("figure-1");
    let mut child2 = rng2.fork("figure-1");
    assert_eq!(child.next_u64(), child2.next_u64());
}
