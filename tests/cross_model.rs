//! Integration: Observation 3.1 holds across *every* satiation-compatible
//! system in the workspace, and fails exactly where the paper says it
//! should — wherever a system has built-in altruism.
//!
//! "In a system where a satiation-compatible protocol is used, an attacker
//! that can provide a node with tokens sufficiently rapidly can prevent it
//! from ever providing service."

use lotus_eater::lotus_core::satiation::{observation_3_1, Satiable};
use lotus_eater::lotus_core::token::TokenSystemConfig;
use lotus_eater::prelude::*;
use lotus_eater::scrip_economy::ScripAttack;
use lotus_eater::torrent_sim::SwarmAttack;

#[test]
fn observation_holds_on_the_token_model() {
    let cfg = TokenSystemConfig::builder(Graph::complete(20))
        .tokens(10)
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, 1);
    let report = observation_3_1(&mut sys, NodeId(3), 40);
    assert!(
        report.holds,
        "token model with a = 0 is satiation-compatible"
    );
}

#[test]
fn observation_fails_on_an_altruistic_token_model() {
    // A ring converges slowly, so the satiated target's neighbours keep
    // knocking for many rounds — plenty of opportunities to serve.
    let cfg = TokenSystemConfig::builder(Graph::cycle(20))
        .tokens(10)
        .altruism(0.5)
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, 1);
    let report = observation_3_1(&mut sys, NodeId(3), 60);
    assert!(report.always_satiated);
    assert!(
        !report.holds,
        "altruism breaks satiation-compatibility (by design)"
    );
}

#[test]
fn observation_holds_on_bar_gossip() {
    let cfg = BarGossipConfig::builder()
        .nodes(50)
        .updates_per_round(4)
        .copies_seeded(6)
        .rounds(20)
        .build()
        .expect("valid config");
    let mut sim = BarGossipSim::new(cfg, AttackPlan::none(), 2);
    let report = observation_3_1(&mut sim, NodeId(7), 30);
    assert!(
        report.holds,
        "a node holding every live update trades nothing and pushes nothing: {report:?}"
    );
}

#[test]
fn observation_holds_on_the_scrip_economy() {
    let cfg = ScripConfig::builder()
        .agents(40)
        .rounds(3_000)
        .warmup(0)
        .build()
        .expect("valid config");
    let mut sim = ScripSim::new(cfg, ScripAttack::None, 3);
    let report = observation_3_1(&mut sim, NodeId(5), 500);
    assert!(
        report.holds,
        "an agent held at its threshold never volunteers: {report:?}"
    );
}

#[test]
fn observation_on_bittorrent_depends_on_seeding() {
    // Without post-completion seeding, a satiated leecher departs and
    // serves nobody: satiation-compatible.
    let cfg = SwarmConfig::builder()
        .leechers(20)
        .pieces(24)
        .seed_after_completion(0)
        .build()
        .expect("valid config");
    let mut sim = SwarmSim::new(cfg, SwarmAttack::none(), 4);
    let report = observation_3_1(&mut sim, NodeId(6), 40);
    assert!(
        report.holds,
        "leecher satiated at round 0 departs without serving: {report:?}"
    );

    // With lingering seeding — BitTorrent's built-in altruism — the same
    // satiated node serves plenty: the observation must fail.
    let cfg = SwarmConfig::builder()
        .leechers(20)
        .pieces(24)
        .seed_after_completion(100)
        .build()
        .expect("valid config");
    let mut sim = SwarmSim::new(cfg, SwarmAttack::none(), 4);
    let report = observation_3_1(&mut sim, NodeId(6), 40);
    assert!(report.always_satiated);
    assert!(
        !report.holds,
        "a lingering seed serves while satiated — seeding is altruism: {report:?}"
    );
}

#[test]
fn satiable_interface_is_consistent_across_systems() {
    // All four simulators expose the same interface; a freshly satiated
    // node reports satiated through it everywhere.
    let cfg = TokenSystemConfig::builder(Graph::complete(10))
        .tokens(4)
        .build()
        .expect("valid config");
    let mut token = TokenSystem::new(cfg, 5);
    token.satiate(NodeId(2));
    assert!(token.is_satiated(NodeId(2)));
    assert_eq!(token.node_count(), 10);

    let cfg = SwarmConfig::builder()
        .leechers(5)
        .pieces(8)
        .build()
        .expect("valid config");
    let swarm = SwarmSim::new(cfg, SwarmAttack::none(), 5);
    // The origin seed (index 5) is born satiated.
    assert!(swarm.is_satiated(NodeId(5)));
    assert!(!swarm.is_satiated(NodeId(0)));

    let cfg = ScripConfig::builder()
        .agents(10)
        .money_per_agent(9)
        .threshold(2)
        .rounds(10)
        .warmup(0)
        .build()
        .expect("valid config");
    let scrip = ScripSim::new(cfg, ScripAttack::None, 5);
    // Everyone starts far above threshold: all satiated.
    assert!((scrip.satiated_fraction() - 1.0).abs() < 1e-12);
}
