//! Property-based tests for the simulation substrate.
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature *and* add the `proptest` dev-dependency once the workspace
//! has access to a registry (the default build must stay dependency-free).
#![cfg(feature = "proptest-tests")]

use netsim::graph::Graph;
use netsim::metrics::{quantile_exact, Running, Series};
use netsim::partner::{PartnerSchedule, Protocol};
use netsim::rng::DetRng;
use netsim::sign::Authority;
use netsim::NodeId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn rng_range_is_always_in_bounds(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.range(n) < n);
        }
    }

    #[test]
    fn rng_forks_are_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let parent = DetRng::seed_from(seed);
        let mut a = parent.fork(&label);
        let mut b = parent.fork(&label);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(),
                                  mut v in proptest::collection::vec(0u32..100, 0..50)) {
        let mut rng = DetRng::seed_from(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn sample_indices_always_distinct(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = DetRng::seed_from(seed);
        let s = rng.sample_indices(n, k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn running_merge_is_order_independent(a in proptest::collection::vec(-1e6f64..1e6, 1..40),
                                          b in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let mut ra = Running::new();
        a.iter().for_each(|&x| ra.push(x));
        let mut rb = Running::new();
        b.iter().for_each(|&x| rb.push(x));
        let mut ab = ra;
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge({
            let mut r = Running::new();
            a.iter().for_each(|&x| r.push(x));
            &r.clone()
        });
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-3);
        prop_assert_eq!(ab.len(), ba.len());
    }

    #[test]
    fn quantiles_are_monotone(data in proptest::collection::vec(-1e3f64..1e3, 1..60),
                              q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_exact(&data, lo).unwrap();
        let b = quantile_exact(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn series_crossover_is_on_curve_range(ys in proptest::collection::vec(0.0f64..1.0, 2..30),
                                          threshold in 0.0f64..1.0) {
        let mut s = Series::new("p");
        for (i, &y) in ys.iter().enumerate() {
            s.push(i as f64, y);
        }
        if let Some(x) = s.crossover_below(threshold) {
            prop_assert!(x >= 0.0 && x <= (ys.len() - 1) as f64);
        }
    }

    #[test]
    fn erdos_renyi_graphs_are_simple(seed in any::<u64>(), n in 2u32..60, p in 0.0f64..1.0) {
        let mut rng = DetRng::seed_from(seed);
        let g = Graph::erdos_renyi(n, p, &mut rng);
        for v in g.nodes() {
            let nb = g.neighbors(v);
            prop_assert!(!nb.contains(&v.0), "no self loop");
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1], "sorted, no duplicates");
            }
            // Symmetry.
            for &u in nb {
                prop_assert!(g.contains_edge(NodeId(u), v));
            }
        }
    }

    #[test]
    fn grid_graphs_are_connected(rows in 1u32..8, cols in 1u32..8) {
        prop_assume!(rows * cols >= 1);
        let g = Graph::grid(rows, cols, false);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.len(), rows * cols);
    }

    #[test]
    fn partner_schedule_never_self(seed in any::<u64>(), n in 2u32..100, round in 0u64..50) {
        let s = PartnerSchedule::new(seed, n);
        for v in NodeId::all(n) {
            prop_assert_ne!(s.partner_of(v, round, Protocol::BalancedExchange), v);
        }
    }

    #[test]
    fn signatures_never_cross_verify(seed in any::<u64>(), payload in any::<u64>()) {
        let auth = Authority::new(seed, 4);
        let signed = auth.sign(NodeId(0), payload);
        // Re-attributing to any other node must fail.
        for other in 1..4u32 {
            let mut forged = signed;
            forged.signer = NodeId(other);
            prop_assert!(auth.verify(&forged).is_err());
        }
    }
}
