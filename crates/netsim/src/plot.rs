//! ASCII line plots for terminal figure output.
//!
//! The paper's figures are line charts (delivered fraction vs attacker
//! fraction). The bench binaries print both a CSV of the series and an
//! ASCII rendering so the shape is visible directly in a terminal log.

use crate::metrics::Series;

/// Configuration for [`render`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlotConfig {
    /// Plot body width in characters.
    pub width: usize,
    /// Plot body height in rows.
    pub height: usize,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Optional fixed y range (otherwise auto-scaled to the data).
    pub y_range: Option<(f64, f64)>,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            width: 64,
            height: 20,
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            y_range: None,
        }
    }
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

/// Render one or more series as an ASCII chart with a legend.
///
/// Curves are drawn with distinct marker characters; later series overwrite
/// earlier ones where they collide.
///
/// ```
/// use netsim::metrics::Series;
/// use netsim::plot::{render, PlotConfig};
/// let mut s = Series::new("demo");
/// s.push(0.0, 0.0);
/// s.push(1.0, 1.0);
/// let chart = render(&[s], &PlotConfig::default());
/// assert!(chart.contains("demo"));
/// ```
pub fn render(series: &[Series], cfg: &PlotConfig) -> String {
    let (w, h) = (cfg.width.max(8), cfg.height.max(4));
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, _) in &pts {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
    }
    let (y_lo, y_hi) = cfg.y_range.unwrap_or_else(|| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &pts {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        (lo, hi)
    });
    let x_span = if (x_hi - x_lo).abs() < f64::EPSILON {
        1.0
    } else {
        x_hi - x_lo
    };
    let y_span = if (y_hi - y_lo).abs() < f64::EPSILON {
        1.0
    } else {
        y_hi - y_lo
    };

    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Sample each column against the interpolated curve so lines are
        // continuous even with sparse points.
        for (col, x) in (0..w).map(|c| (c, x_lo + x_span * c as f64 / (w - 1) as f64)) {
            if let Some(y) = s.interpolate(x) {
                let fy = ((y - y_lo) / y_span).clamp(0.0, 1.0);
                let row = ((1.0 - fy) * (h - 1) as f64).round() as usize;
                grid[row][col] = mark;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} ({:.3} .. {:.3})\n", cfg.y_label, y_lo, y_hi));
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{y_hi:7.3} |")
        } else if ri == h - 1 {
            format!("{y_lo:7.3} |")
        } else {
            "        |".to_string()
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&format!(
        "         {:<w$}\n",
        format!("{} ({:.3} .. {:.3})", cfg.x_label, x_lo, x_hi),
        w = w
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(label);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn empty_plot() {
        let out = render(&[], &PlotConfig::default());
        assert_eq!(out, "(no data)\n");
    }

    #[test]
    fn legend_contains_labels() {
        let s1 = line("alpha", &[(0.0, 0.0), (1.0, 1.0)]);
        let s2 = line("beta", &[(0.0, 1.0), (1.0, 0.0)]);
        let out = render(&[s1, s2], &PlotConfig::default());
        assert!(out.contains("* alpha"));
        assert!(out.contains("+ beta"));
    }

    #[test]
    fn plot_dimensions() {
        let s = line("d", &[(0.0, 0.0), (1.0, 1.0)]);
        let cfg = PlotConfig {
            width: 40,
            height: 10,
            ..PlotConfig::default()
        };
        let out = render(&[s], &cfg);
        // height rows + y header + axis + x label + 1 legend line
        assert_eq!(out.lines().count(), 10 + 4);
    }

    #[test]
    fn increasing_series_marks_corners() {
        let s = line("up", &[(0.0, 0.0), (1.0, 1.0)]);
        let cfg = PlotConfig {
            width: 20,
            height: 5,
            y_range: Some((0.0, 1.0)),
            ..PlotConfig::default()
        };
        let out = render(&[s], &cfg);
        let rows: Vec<&str> = out.lines().skip(1).take(5).collect();
        // Top row should have a mark near the right, bottom near the left.
        assert!(rows[0].trim_end().ends_with('*'));
        assert!(rows[4].contains('*'));
    }

    #[test]
    fn constant_series_is_flat() {
        let s = line("flat", &[(0.0, 0.5), (1.0, 0.5)]);
        let cfg = PlotConfig {
            width: 16,
            height: 5,
            y_range: Some((0.0, 1.0)),
            ..PlotConfig::default()
        };
        let out = render(&[s], &cfg);
        let rows: Vec<&str> = out.lines().skip(1).take(5).collect();
        let starred: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains('*'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(starred, vec![2], "flat mid curve occupies the middle row");
    }
}
