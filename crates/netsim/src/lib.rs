//! `netsim` — a deterministic discrete-round network-simulation substrate.
//!
//! This crate provides the infrastructure shared by every protocol simulator
//! in the lotus-eater reproduction ([`bar-gossip`], [`scrip-economy`],
//! [`torrent-sim`] and the abstract token model in [`lotus-core`]):
//!
//! * [`rng`] — a hand-rolled, seedable, *forkable* PCG-32 generator so that
//!   every experiment is reproducible from a single `u64` seed, on every
//!   platform, with no external dependencies;
//! * [`graph`] — compact undirected graphs (CSR) with the standard topology
//!   builders (complete, grid, Erdős–Rényi, Watts–Strogatz, Barabási–Albert);
//! * [`partner`] — BAR-Gossip-style verifiable pseudorandom partner
//!   selection: nodes cannot influence who they interact with;
//! * [`sign`] — *simulated* message authentication used by the
//!   report-and-evict defense (keyed 64-bit hashes standing in for real
//!   signatures — **not** cryptographically secure);
//! * [`metrics`], [`table`], [`plot`] — running statistics, histograms,
//!   aligned text tables, CSV output and ASCII line plots for the
//!   figure-regeneration harness;
//! * [`round`] — a minimal round-driven engine trait;
//! * [`bandwidth`] — per-node traffic accounting by message class;
//! * [`trace`] — a bounded structured event log for debugging and tests.
//!
//! # Example
//!
//! ```
//! use netsim::rng::DetRng;
//! use netsim::graph::Graph;
//!
//! let mut rng = DetRng::seed_from(42);
//! let g = Graph::erdos_renyi(100, 0.08, &mut rng.fork("topology"));
//! assert!(g.is_connected());
//! ```
//!
//! [`bar-gossip`]: https://example.invalid/lotus-eater
//! [`scrip-economy`]: https://example.invalid/lotus-eater
//! [`torrent-sim`]: https://example.invalid/lotus-eater
//! [`lotus-core`]: https://example.invalid/lotus-eater

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod graph;
pub mod metrics;
pub mod partner;
pub mod plan;
pub mod plot;
pub mod rng;
pub mod round;
pub mod sign;
pub mod table;
pub mod trace;

/// Identifier of a simulated node.
///
/// A thin newtype over `u32` used by every simulator in the workspace so
/// that node indices cannot be confused with counts, rounds or token ids.
///
/// ```
/// use netsim::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over the first `n` node ids: `n0, n1, …`.
    ///
    /// ```
    /// use netsim::NodeId;
    /// let all: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(all, vec![NodeId(0), NodeId(1), NodeId(2)]);
    /// ```
    pub fn all(n: u32) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// A simulation round (discrete time step), starting at `0`.
pub type Round = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(17u32);
        assert_eq!(u32::from(id), 17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn node_id_display_debug_nonempty() {
        assert_eq!(format!("{}", NodeId(0)), "n0");
        assert!(!format!("{:?}", NodeId(0)).is_empty());
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(2), NodeId(0), NodeId(1)];
        v.sort();
        assert_eq!(v, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn node_id_all_is_dense() {
        assert_eq!(NodeId::all(0).count(), 0);
        assert_eq!(NodeId::all(5).count(), 5);
    }
}
