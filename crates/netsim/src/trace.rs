//! Bounded structured event tracing.
//!
//! Simulators emit [`Event`]s (exchange completed, node satiated, report
//! filed, node evicted…) into a [`TraceBuffer`]. Tests assert on traces;
//! debugging sessions print them. The buffer is bounded so multi-thousand
//! round sweeps do not accumulate unbounded memory — tracing can also be
//! disabled entirely, which reduces it to a no-op.

use crate::{NodeId, Round};

/// Category of a traced event; kept coarse so filtering is cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An exchange/interaction completed.
    Exchange,
    /// A node became satiated.
    Satiated,
    /// A node left the satiated state.
    Unsatiated,
    /// An attacker action (out-of-band delivery, money injection…).
    Attack,
    /// A misbehaviour report was filed.
    Report,
    /// A node was evicted.
    Evict,
    /// Anything else.
    Other,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Round the event occurred in.
    pub round: Round,
    /// Primary node involved.
    pub node: NodeId,
    /// Event category.
    pub kind: EventKind,
    /// Free-form detail (kept short by convention).
    pub detail: String,
}

/// A bounded ring buffer of [`Event`]s.
///
/// ```
/// use netsim::trace::{TraceBuffer, EventKind};
/// use netsim::NodeId;
///
/// let mut t = TraceBuffer::new(2);
/// t.emit(0, NodeId(1), EventKind::Satiated, "attacker fed 10 tokens");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// A disabled buffer: `emit` is a no-op. Use in hot sweeps.
    pub fn disabled() -> Self {
        let mut t = TraceBuffer::new(0);
        t.enabled = false;
        t
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled; evicts oldest when full).
    ///
    /// The `detail` argument is built *before* the enabled check, so hot
    /// paths must not pass a freshly formatted string here — use
    /// [`TraceBuffer::emit_with`] to keep disabled tracing truly free.
    pub fn emit(&mut self, round: Round, node: NodeId, kind: EventKind, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity && self.events.pop_front().is_some() {
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.events.push_back(Event {
                round,
                node,
                kind,
                detail: detail.into(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Record an event whose detail string is built lazily: `detail()`
    /// runs only when the buffer is enabled *and* has capacity, so a
    /// disabled buffer on a hot path costs one branch and zero
    /// allocations however expensive the formatting would be.
    pub fn emit_with(
        &mut self,
        round: Round,
        node: NodeId,
        kind: EventKind,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled || self.capacity == 0 {
            if self.enabled {
                self.dropped += 1;
            }
            return;
        }
        self.emit(round, node, kind, detail());
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted or suppressed because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all held events (dropped count is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_and_iterates_in_order() {
        let mut t = TraceBuffer::new(10);
        t.emit(0, NodeId(0), EventKind::Exchange, "a");
        t.emit(1, NodeId(1), EventKind::Satiated, "b");
        let rounds: Vec<Round> = t.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![0, 1]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.emit(i, NodeId(0), EventKind::Other, format!("e{i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let details: Vec<&str> = t.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["e3", "e4"]);
    }

    #[test]
    fn disabled_buffer_is_noop() {
        let mut t = TraceBuffer::disabled();
        t.emit(0, NodeId(0), EventKind::Attack, "ignored");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = TraceBuffer::new(10);
        t.emit(0, NodeId(0), EventKind::Report, "r1");
        t.emit(0, NodeId(1), EventKind::Evict, "e1");
        t.emit(1, NodeId(2), EventKind::Report, "r2");
        assert_eq!(t.of_kind(EventKind::Report).count(), 2);
        assert_eq!(t.of_kind(EventKind::Evict).count(), 1);
        assert_eq!(t.of_kind(EventKind::Attack).count(), 0);
    }

    #[test]
    fn clear_keeps_dropped_counter() {
        let mut t = TraceBuffer::new(1);
        t.emit(0, NodeId(0), EventKind::Other, "a");
        t.emit(0, NodeId(0), EventKind::Other, "b");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn zero_capacity_counts_everything_dropped() {
        let mut t = TraceBuffer::new(0);
        t.emit(0, NodeId(0), EventKind::Other, "a");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
