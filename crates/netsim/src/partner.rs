//! Verifiable pseudorandom partner selection.
//!
//! BAR Gossip removes partner choice from the nodes: in each round, the
//! partner a node may initiate an exchange with is determined by a
//! pseudorandom function of the round number and the node's identity that
//! other nodes can verify. This stops rational nodes from cherry-picking
//! partners — and it also means a lotus-eater attacker cannot steer his
//! interactions toward the nodes he wants to satiate; he can only exploit
//! the interactions the schedule gives him (this is exactly why the *trade*
//! variant of the attack needs far more nodes than the *ideal* variant —
//! Figure 1 of the paper).
//!
//! The real protocol derives the choice from signatures; we use a seeded
//! hash, which preserves the property the simulation cares about: the
//! schedule is a deterministic, uniform-looking function outside any node's
//! control.

use crate::rng::{mix_label, split_mix64};
use crate::{NodeId, Round};

/// The sub-protocol an interaction belongs to. Each protocol has an
/// independent partner schedule, mirroring BAR Gossip where balanced
/// exchanges and optimistic pushes are initiated separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// One-for-one balanced exchange.
    BalancedExchange,
    /// Optimistic push (recent updates for old updates or junk).
    OptimisticPush,
    /// Any other interaction class a simulator wants scheduled.
    Other(u16),
}

impl Protocol {
    pub(crate) fn tag(self) -> u64 {
        match self {
            Protocol::BalancedExchange => 1,
            Protocol::OptimisticPush => 2,
            Protocol::Other(k) => 0x1_0000 + u64::from(k),
        }
    }
}

/// Deterministic partner schedule over `n` nodes.
///
/// ```
/// use netsim::partner::{PartnerSchedule, Protocol};
/// use netsim::NodeId;
///
/// let sched = PartnerSchedule::new(42, 250);
/// let p = sched.partner_of(NodeId(3), 7, Protocol::BalancedExchange);
/// assert_ne!(p, NodeId(3)); // never yourself
/// // Anyone can recompute (verify) the choice:
/// assert_eq!(p, sched.partner_of(NodeId(3), 7, Protocol::BalancedExchange));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartnerSchedule {
    seed: u64,
    n: u32,
}

impl PartnerSchedule {
    /// Create a schedule for `n` nodes from a session seed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (there would be nobody to interact with).
    pub fn new(seed: u64, n: u32) -> Self {
        assert!(n >= 2, "a partner schedule needs at least two nodes");
        PartnerSchedule {
            seed: split_mix64(seed ^ mix_label("partner-schedule")),
            n,
        }
    }

    /// Number of nodes covered by the schedule.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// The mixed session seed (for the plan module's hoisted planner).
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules always cover at least two nodes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The partner `node` initiates with in `round` under `proto`.
    ///
    /// Uniform over all nodes except `node` itself; deterministic in
    /// `(seed, round, node, proto)`.
    pub fn partner_of(&self, node: NodeId, round: Round, proto: Protocol) -> NodeId {
        let mut h = self.seed;
        h = split_mix64(h ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = split_mix64(h ^ u64::from(node.0).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        h = split_mix64(h ^ proto.tag());
        // Unbiased choice among the n-1 others: draw in 0..n-1 and skip self.
        let m = u64::from(self.n - 1);
        let threshold = m.wrapping_neg() % m;
        let mut draw = h;
        let r = loop {
            if draw >= threshold {
                break draw % m;
            }
            draw = split_mix64(draw);
        } as u32;
        if r >= node.0 {
            NodeId(r + 1)
        } else {
            NodeId(r)
        }
    }

    /// Batched partner selection for an explicit initiator set: clears
    /// `out` and pushes the partner of each node `nodes` yields, in
    /// yield order — bit-identical to calling
    /// [`PartnerSchedule::partner_of`] per node.
    ///
    /// This is a thin alias over the exchange-plan path (see
    /// [`PartnerSchedule::planner`] and `crate::plan`): the same
    /// hoisted per-round mixing the batched [`PairPlanner::fill`]
    /// uses, emitting bare partners instead of flagged pairs for the
    /// callers (and tests) that pin this signature. Allocation-free
    /// once `out` has capacity.
    ///
    /// [`PairPlanner::fill`]: crate::plan::PairPlanner::fill
    // lint: hot-loop
    pub fn sample_active_into(
        &self,
        round: Round,
        proto: Protocol,
        nodes: impl IntoIterator<Item = NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let planner = self.planner(round, proto);
        for node in nodes {
            out.push(planner.partner_of(node));
        }
    }

    /// All initiations for a round under `proto`: `(initiator, partner)`
    /// pairs in node order.
    pub fn round_pairs(
        &self,
        round: Round,
        proto: Protocol,
    ) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        NodeId::all(self.n).map(move |v| (v, self.partner_of(v, round, proto)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_selects_self() {
        let s = PartnerSchedule::new(7, 50);
        for round in 0..20 {
            for v in NodeId::all(50) {
                assert_ne!(s.partner_of(v, round, Protocol::BalancedExchange), v);
                assert_ne!(s.partner_of(v, round, Protocol::OptimisticPush), v);
            }
        }
    }

    #[test]
    fn deterministic_and_verifiable() {
        let a = PartnerSchedule::new(1, 10);
        let b = PartnerSchedule::new(1, 10);
        for round in 0..10 {
            for v in NodeId::all(10) {
                assert_eq!(
                    a.partner_of(v, round, Protocol::BalancedExchange),
                    b.partner_of(v, round, Protocol::BalancedExchange)
                );
            }
        }
    }

    #[test]
    fn protocols_have_independent_schedules() {
        let s = PartnerSchedule::new(3, 100);
        let mut same = 0;
        for v in NodeId::all(100) {
            if s.partner_of(v, 0, Protocol::BalancedExchange)
                == s.partner_of(v, 0, Protocol::OptimisticPush)
            {
                same += 1;
            }
        }
        // Expected collisions: 100/99 ≈ 1.
        assert!(same < 10, "schedules look correlated: {same} collisions");
    }

    #[test]
    fn two_node_schedule_always_pairs_them() {
        let s = PartnerSchedule::new(9, 2);
        for round in 0..5 {
            assert_eq!(
                s.partner_of(NodeId(0), round, Protocol::BalancedExchange),
                NodeId(1)
            );
            assert_eq!(
                s.partner_of(NodeId(1), round, Protocol::BalancedExchange),
                NodeId(0)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_schedules() {
        PartnerSchedule::new(0, 1);
    }

    #[test]
    fn partner_distribution_roughly_uniform() {
        let s = PartnerSchedule::new(11, 20);
        let mut counts = [0u32; 20];
        for round in 0..4000 {
            counts[s
                .partner_of(NodeId(0), round, Protocol::BalancedExchange)
                .index()] += 1;
        }
        assert_eq!(counts[0], 0, "never self");
        // Expect ~210 per other node.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!((130..300).contains(&c), "node {i} chosen {c} times");
        }
    }

    #[test]
    fn sample_active_into_matches_partner_of() {
        let s = PartnerSchedule::new(23, 97);
        let mut out = Vec::new();
        for round in 0..50 {
            for proto in [
                Protocol::BalancedExchange,
                Protocol::OptimisticPush,
                Protocol::Other(3),
            ] {
                // An arbitrary sparse "active" subset, ascending.
                let active: Vec<NodeId> = NodeId::all(97)
                    .filter(|v| v.0 % 7 == round as u32 % 7)
                    .collect();
                s.sample_active_into(round, proto, active.iter().copied(), &mut out);
                assert_eq!(out.len(), active.len());
                for (v, p) in active.iter().zip(&out) {
                    assert_eq!(*p, s.partner_of(*v, round, proto), "{v:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn round_pairs_covers_all_initiators() {
        let s = PartnerSchedule::new(13, 8);
        let pairs: Vec<_> = s.round_pairs(5, Protocol::OptimisticPush).collect();
        assert_eq!(pairs.len(), 8);
        for (i, (init, partner)) in pairs.iter().enumerate() {
            assert_eq!(init.index(), i);
            assert_ne!(init, partner);
        }
    }

    #[test]
    fn other_protocols_distinct() {
        let s = PartnerSchedule::new(17, 40);
        let a = s.partner_of(NodeId(5), 1, Protocol::Other(0));
        let b = s.partner_of(NodeId(5), 1, Protocol::Other(1));
        let c = s.partner_of(NodeId(5), 2, Protocol::Other(0));
        // They *can* coincide, but all three equal would be suspicious.
        assert!(!(a == b && b == c), "Other(k) schedules look degenerate");
    }
}
