//! Two-phase batched exchange plans: plan read-only, apply in order.
//!
//! The per-edge call pattern — walk the initiators, and for each one
//! immediately sample a partner, check liveness and links, and commit
//! the exchange — welds *what the schedule says* to *what the round
//! does*. This module splits them:
//!
//! 1. **Plan** ([`PairPlanner`] + [`ExchangePlan`]): for every
//!    initiator, the scheduled partner and a snapshot of pair
//!    viability (both ends alive, link up) are computed into a flat
//!    batch of [`PlannedPair`] entries, in ascending initiator order.
//!    Planning reads shared round state but writes only its own output
//!    slice, so disjoint stretches of the batch can be filled by
//!    concurrent workers (`lotus_core::pool`) — partner selection is a
//!    pure hash ([`PartnerSchedule::partner_of`]), not an rng stream.
//! 2. **Apply**: the caller shuffles the batch with the *same*
//!    [`DetRng`] stream the legacy path used to shuffle its initiator
//!    list (a Fisher–Yates shuffle draws only as a function of slice
//!    *length*, and the batch has exactly one entry per initiator, so
//!    the draws are bit-identical), then walks the entries
//!    sequentially, committing transfers, counters and rng-consuming
//!    outcomes. Everything order-sensitive stays in apply; everything
//!    parallelizable moved to plan.
//!
//! Viability snapshots stay sound during apply because mid-phase state
//! changes only ever *remove* nodes (evictions, silence cut-offs): a
//! pair planned non-viable can never become viable, so apply may skip
//! it unconditionally, and a caller whose configuration enables
//! mid-phase removals rechecks liveness on the viable remainder —
//! exactly the checks the legacy path made on every pair.

use crate::partner::{PartnerSchedule, Protocol};
use crate::rng::{split_mix64, DetRng};
use crate::{NodeId, Round};

/// Flag bit: both endpoints were alive when the plan was laid.
pub const VIABLE: u8 = 1;
/// Flag bit: the network link between the endpoints was up.
pub const LINKED: u8 = 1 << 1;
/// Both flags: the pair can be applied without further checks when no
/// defense can remove nodes mid-phase.
pub const READY: u8 = VIABLE | LINKED;

/// One planned initiation: the initiator, its scheduled partner, and
/// the viability snapshot taken at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannedPair {
    /// The node the schedule had initiate.
    pub initiator: NodeId,
    /// The partner the schedule assigned it.
    pub partner: NodeId,
    /// [`VIABLE`] / [`LINKED`] snapshot bits.
    pub flags: u8,
}

impl PlannedPair {
    /// Both ends alive and the link up at plan time.
    #[inline]
    pub fn is_ready(self) -> bool {
        self.flags & READY == READY
    }

    /// Both ends alive at plan time.
    #[inline]
    pub fn is_viable(self) -> bool {
        self.flags & VIABLE != 0
    }

    /// The link between the endpoints was up at plan time. Link state is
    /// static within a round (partition epochs flip at round start), so
    /// this snapshot never goes stale during apply.
    #[inline]
    pub fn is_linked(self) -> bool {
        self.flags & LINKED != 0
    }
}

/// A round-and-protocol-specialized partner selector: the per-round and
/// rejection-threshold mixing of [`PartnerSchedule::partner_of`],
/// hoisted once so per-initiator cost is two `split_mix64` rounds plus
/// the (rare) rejection loop.
#[derive(Debug, Clone, Copy)]
pub struct PairPlanner {
    round_h: u64,
    tag: u64,
    m: u64,
    threshold: u64,
}

impl PairPlanner {
    pub(crate) fn new(seed: u64, n: u32, round: Round, proto: Protocol) -> Self {
        let m = u64::from(n - 1);
        PairPlanner {
            round_h: split_mix64(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            tag: proto.tag(),
            m,
            threshold: m.wrapping_neg() % m,
        }
    }

    /// The partner `node` initiates with — bit-identical to
    /// [`PartnerSchedule::partner_of`] for the planner's round and
    /// protocol.
    // lint: hot-loop
    #[inline]
    pub fn partner_of(&self, node: NodeId) -> NodeId {
        let mut h = self.round_h;
        h = split_mix64(h ^ u64::from(node.0).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        h = split_mix64(h ^ self.tag);
        let mut draw = h;
        let r = loop {
            if draw >= self.threshold {
                break draw % self.m;
            }
            draw = split_mix64(draw);
        } as u32;
        if r >= node.0 {
            NodeId(r + 1)
        } else {
            NodeId(r)
        }
    }

    /// Fill `out` with one [`PlannedPair`] per yielded initiator, in
    /// yield order: partner from the schedule, flags from `flags_of`.
    /// `out` must be pre-sized to exactly the initiator count (the
    /// shard map's cached popcounts give workers that number without a
    /// prior walk).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` yields more or fewer initiators than `out`
    /// holds.
    // lint: hot-loop
    pub fn fill(
        &self,
        nodes: impl IntoIterator<Item = NodeId>,
        mut flags_of: impl FnMut(NodeId, NodeId) -> u8,
        out: &mut [PlannedPair],
    ) {
        let mut k = 0usize;
        for initiator in nodes {
            let partner = self.partner_of(initiator);
            out[k] = PlannedPair {
                initiator,
                partner,
                flags: flags_of(initiator, partner),
            };
            k += 1;
        }
        assert_eq!(k, out.len(), "plan segment size must match its walk");
    }
}

impl PartnerSchedule {
    /// A [`PairPlanner`] for `round` under `proto` — the batched,
    /// hoisted form of [`PartnerSchedule::partner_of`].
    pub fn planner(&self, round: Round, proto: Protocol) -> PairPlanner {
        PairPlanner::new(self.seed(), self.len(), round, proto)
    }
}

/// A reusable batch of [`PlannedPair`] entries — the output of the plan
/// phase and the worklist of the apply phase.
///
/// ```
/// use netsim::partner::{PartnerSchedule, Protocol};
/// use netsim::plan::{ExchangePlan, READY};
/// use netsim::rng::DetRng;
/// use netsim::NodeId;
///
/// let sched = PartnerSchedule::new(42, 250);
/// let planner = sched.planner(7, Protocol::BalancedExchange);
/// let mut plan = ExchangePlan::new();
/// plan.reset(250);
/// planner.fill(NodeId::all(250), |_, _| READY, plan.entries_mut());
/// // Same draws as shuffling a 250-entry initiator list:
/// plan.shuffle(&mut DetRng::seed_from(1).fork_idx("order", 7));
/// for e in plan.entries() {
///     assert_eq!(e.partner, sched.partner_of(e.initiator, 7, Protocol::BalancedExchange));
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExchangePlan {
    entries: Vec<PlannedPair>,
}

impl ExchangePlan {
    /// An empty plan (no capacity yet; grows on first use and then
    /// stays allocation-free at steady state).
    pub fn new() -> Self {
        ExchangePlan::default()
    }

    /// Number of planned pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Size the batch for `count` pairs, reusing capacity. Entries are
    /// left in a default state for the fill to overwrite.
    // lint: hot-loop
    pub fn reset(&mut self, count: usize) {
        self.entries.clear();
        self.entries.resize(count, PlannedPair::default());
    }

    /// Drop all entries, keeping capacity — the incremental counterpart
    /// of [`ExchangePlan::reset`] for call sites that discover their
    /// pair set by scanning (e.g. volunteer pools) instead of
    /// pre-sizing it from shard counts.
    // lint: hot-loop
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Append one planned pair (allocation-free once the batch is warm).
    // lint: hot-loop
    pub fn push(&mut self, pair: PlannedPair) {
        self.entries.push(pair);
    }

    /// The planned pairs.
    pub fn entries(&self) -> &[PlannedPair] {
        &self.entries
    }

    /// The planned pairs, mutably — workers fill disjoint subslices of
    /// this during the plan phase.
    pub fn entries_mut(&mut self) -> &mut [PlannedPair] {
        &mut self.entries
    }

    /// Shuffle the batch with `rng`. A Fisher–Yates shuffle's draw
    /// sequence depends only on the slice *length*, and the batch holds
    /// exactly one entry per initiator — so this consumes the rng
    /// stream bit-identically to the legacy shuffle of a bare initiator
    /// list, which is what keeps golden figures byte-stable across the
    /// plan/apply redesign.
    // lint: hot-loop
    pub fn shuffle(&mut self, rng: &mut DetRng) {
        rng.shuffle(&mut self.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_matches_partner_of() {
        let s = PartnerSchedule::new(23, 97);
        for round in [0u64, 1, 7, 1000] {
            for proto in [
                Protocol::BalancedExchange,
                Protocol::OptimisticPush,
                Protocol::Other(3),
            ] {
                let planner = s.planner(round, proto);
                for v in NodeId::all(97) {
                    assert_eq!(planner.partner_of(v), s.partner_of(v, round, proto));
                }
            }
        }
    }

    #[test]
    fn fill_preserves_walk_order_and_flags() {
        let s = PartnerSchedule::new(5, 40);
        let planner = s.planner(3, Protocol::OptimisticPush);
        let mut plan = ExchangePlan::new();
        let actives: Vec<NodeId> = NodeId::all(40).filter(|v| v.0 % 3 == 0).collect();
        plan.reset(actives.len());
        planner.fill(
            actives.iter().copied(),
            |v, p| if (v.0 + p.0) % 2 == 0 { READY } else { VIABLE },
            plan.entries_mut(),
        );
        for (v, e) in actives.iter().zip(plan.entries()) {
            assert_eq!(e.initiator, *v);
            assert_eq!(e.partner, s.partner_of(*v, 3, Protocol::OptimisticPush));
            let want = if (v.0 + e.partner.0) % 2 == 0 {
                READY
            } else {
                VIABLE
            };
            assert_eq!(e.flags, want);
            assert!(e.is_viable());
            assert_eq!(e.is_ready(), want == READY);
        }
    }

    #[test]
    #[should_panic(expected = "plan segment size")]
    fn fill_rejects_size_mismatch() {
        let s = PartnerSchedule::new(5, 10);
        let mut plan = ExchangePlan::new();
        plan.reset(3);
        s.planner(0, Protocol::BalancedExchange).fill(
            NodeId::all(2),
            |_, _| READY,
            plan.entries_mut(),
        );
    }

    #[test]
    fn shuffle_consumes_the_same_stream_as_a_bare_list() {
        // The redesign's keystone: shuffling the pair batch must draw
        // exactly what shuffling the legacy initiator list drew.
        let s = PartnerSchedule::new(11, 300);
        let planner = s.planner(9, Protocol::BalancedExchange);
        let mut plan = ExchangePlan::new();
        plan.reset(300);
        planner.fill(NodeId::all(300), |_, _| READY, plan.entries_mut());
        plan.shuffle(&mut DetRng::seed_from(77).fork_idx("order", 9));

        let mut legacy: Vec<NodeId> = NodeId::all(300).collect();
        DetRng::seed_from(77)
            .fork_idx("order", 9)
            .shuffle(&mut legacy);

        let got: Vec<NodeId> = plan.entries().iter().map(|e| e.initiator).collect();
        assert_eq!(got, legacy);
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut plan = ExchangePlan::new();
        plan.reset(128);
        assert_eq!(plan.len(), 128);
        let cap_ptr = plan.entries().as_ptr();
        plan.reset(64);
        assert_eq!(plan.len(), 64);
        assert!(!plan.is_empty());
        assert_eq!(plan.entries().as_ptr(), cap_ptr, "no realloc on shrink");
    }
}
