//! Deterministic, forkable pseudorandom number generation.
//!
//! Every experiment in the workspace derives all of its randomness from a
//! single `u64` master seed through [`DetRng`], a PCG-32 generator
//! (`pcg_xsh_rr_64_32`, O'Neill 2014) seeded via SplitMix64. Two properties
//! matter for reproducible research and are covered by tests:
//!
//! 1. **Determinism** — the same seed yields the same stream on every
//!    platform (no `std::collections::HashMap` iteration order, no OS
//!    entropy).
//! 2. **Forkability** — [`DetRng::fork`] derives an independent, labelled
//!    child stream, so adding a consumer of randomness in one subsystem
//!    cannot perturb another subsystem's stream (a classic source of
//!    "heisenbugs" in simulation studies).

/// SplitMix64 step; used for seeding and for stateless hashing.
///
/// This is the finalizer from Steele et al., "Fast splittable pseudorandom
/// number generators" (OOPSLA 2014). It is a bijection on `u64` with good
/// avalanche behaviour.
///
/// ```
/// use netsim::rng::split_mix64;
/// assert_ne!(split_mix64(1), split_mix64(2));
/// ```
#[inline]
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary byte string into a `u64` (FNV-1a followed by a SplitMix
/// finalizer). Used to derive fork streams from labels.
#[inline]
pub fn mix_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    split_mix64(h)
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

/// A deterministic PCG-32 pseudorandom generator with labelled forking.
///
/// ```
/// use netsim::rng::DetRng;
///
/// let mut a = DetRng::seed_from(7);
/// let mut b = DetRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut child = a.fork("topology");
/// let _ = child.range(10); // child stream is independent of `a`
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
    /// Stream selector; always odd.
    inc: u64,
}

impl DetRng {
    /// Create a generator from a master seed, on the default stream.
    pub fn seed_from(seed: u64) -> Self {
        Self::from_parts(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Create a generator from a seed and an explicit stream id.
    ///
    /// Distinct streams produce statistically independent sequences even for
    /// the same seed.
    pub fn from_parts(seed: u64, stream: u64) -> Self {
        let inc = (split_mix64(stream) << 1) | 1;
        let mut rng = DetRng { state: 0, inc };
        // Standard PCG initialisation dance.
        rng.step();
        rng.state = rng.state.wrapping_add(split_mix64(seed));
        rng.step();
        rng
    }

    /// Derive an independent child generator identified by `label`.
    ///
    /// Forking does not advance `self`'s stream, so inserting a new fork
    /// never perturbs randomness drawn later from the parent: both the
    /// parent state and the label feed the child's seed.
    pub fn fork(&self, label: &str) -> DetRng {
        let l = mix_label(label);
        DetRng::from_parts(self.state ^ l, self.inc.rotate_left(17) ^ l)
    }

    /// Derive an independent child generator identified by an integer
    /// (useful when forking per node or per trial in a loop).
    pub fn fork_idx(&self, label: &str, idx: u64) -> DetRng {
        let l = mix_label(label) ^ split_mix64(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        DetRng::from_parts(self.state ^ l, self.inc.rotate_left(29) ^ l)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::range called with n = 0");
        // Unbiased rejection sampling (the "threshold" method).
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Uniform `usize` in `0..n`. Convenience wrapper over [`Self::range`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.range(n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Sample `k` distinct indices from `0..n`, in random order.
    ///
    /// Uses Floyd's algorithm: `O(k)` expected time, `O(k)` space.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        self.sample_indices_into(n, k, &mut chosen);
        chosen
    }

    /// [`DetRng::sample_indices`] into a caller-owned buffer (cleared
    /// first), so per-round hot loops can reuse one allocation. Consumes
    /// the identical random stream.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} items from a universe of {n}");
        out.clear();
        // Floyd's algorithm guarantees distinctness; we shuffle afterwards
        // because it does not produce a uniformly random *order*.
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        self.shuffle(out);
    }

    /// Draw from a geometric distribution: number of failures before the
    /// first success of a Bernoulli(`p`) trial. Returns `u64::MAX` when
    /// `p <= 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 0;
        }
        // Inverse transform sampling.
        let u = self.f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(123);
        let mut b = DetRng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams of different seeds should diverge");
    }

    #[test]
    fn known_vector_is_stable() {
        // Pin the exact output so accidental algorithm changes are caught:
        // figures in EXPERIMENTS.md depend on these streams.
        let mut r = DetRng::seed_from(0);
        let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        let again: Vec<u32> = {
            let mut r = DetRng::seed_from(0);
            (0..4).map(|_| r.next_u32()).collect()
        };
        assert_eq!(first, again);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = DetRng::seed_from(9);
        let mut c1 = parent.fork("alpha");
        let mut c2 = parent.fork("alpha");
        let mut c3 = parent.fork("beta");
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Different labels should give different streams (overwhelmingly).
        let mut diffs = 0;
        for _ in 0..16 {
            if c1.next_u64() != c3.next_u64() {
                diffs += 1;
            }
        }
        assert!(diffs >= 15);
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = DetRng::seed_from(5);
        let mut b = DetRng::seed_from(5);
        let _ = a.fork("child");
        let _ = a.fork_idx("child", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_idx_distinct_per_index() {
        let parent = DetRng::seed_from(11);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let mut c = parent.fork_idx("node", i);
            seen.insert(c.next_u64());
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = DetRng::seed_from(77);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn range_zero_panics() {
        DetRng::seed_from(0).range(0);
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = DetRng::seed_from(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_edge_cases() {
        let mut r = DetRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_tracks_p() {
        let mut r = DetRng::seed_from(8);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from(10);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_trivial_slices() {
        let mut r = DetRng::seed_from(10);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::seed_from(0);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[5]), Some(&5));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = DetRng::seed_from(21);
        for _ in 0..50 {
            let s = r.sample_indices(30, 12);
            assert_eq!(s.len(), 12);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 12, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_indices_into_matches_allocating_form() {
        let mut a = DetRng::seed_from(19);
        let mut b = DetRng::seed_from(19);
        let mut buf = vec![99; 4]; // stale content must be discarded
        for (n, k) in [(30, 12), (8, 8), (5, 0)] {
            b.sample_indices_into(n, k, &mut buf);
            assert_eq!(a.sample_indices(n, k), buf, "same stream, same sample");
        }
    }

    #[test]
    fn sample_indices_full_universe() {
        let mut r = DetRng::seed_from(22);
        let mut s = r.sample_indices(8, 8);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_universe_panics() {
        DetRng::seed_from(0).sample_indices(3, 4);
    }

    #[test]
    fn sample_indices_roughly_uniform() {
        let mut r = DetRng::seed_from(33);
        let mut counts = [0u32; 10];
        for _ in 0..5000 {
            for i in r.sample_indices(10, 3) {
                counts[i] += 1;
            }
        }
        // Each index should be picked ~1500 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1350..1650).contains(&c), "index {i} picked {c} times");
        }
    }

    #[test]
    fn geometric_edges() {
        let mut r = DetRng::seed_from(0);
        assert_eq!(r.geometric(1.0), 0);
        assert_eq!(r.geometric(0.0), u64::MAX);
        let mean: f64 = (0..5000).map(|_| r.geometric(0.5) as f64).sum::<f64>() / 5000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}"); // E = (1-p)/p
    }

    #[test]
    fn mix_label_distinguishes_labels() {
        assert_ne!(mix_label("a"), mix_label("b"));
        assert_ne!(mix_label(""), mix_label("a"));
        assert_eq!(mix_label("topology"), mix_label("topology"));
    }
}
