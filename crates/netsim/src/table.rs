//! Aligned text tables and CSV output.
//!
//! The figure-regeneration binaries print the same rows/series the paper
//! reports; this module renders them as aligned terminal tables and as CSV
//! for downstream plotting.

/// A simple column-aligned text table builder.
///
/// ```
/// use netsim::table::Table;
/// let mut t = Table::new(vec!["Parameter", "Value"]);
/// t.row(vec!["Number of Nodes".into(), "250".into()]);
/// let s = t.render();
/// assert!(s.contains("Number of Nodes"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns, a header underline and `|` separators.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str(" | ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes cells containing `,`, `"` or
    /// newlines).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format an `f64` with `places` decimal places (helper for table rows).
pub fn fmt_f(x: f64, places: usize) -> String {
    format!("{x:.places$}")
}

/// Format an optional crossover fraction as `"0.22"` or `"-"` (never
/// crosses).
pub fn fmt_crossover(x: Option<f64>) -> String {
    match x {
        Some(v) => fmt_f(v, 3),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     | long header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx | 1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["x", "note"]);
        t.row(vec!["1".into(), "plain".into()]);
        t.row(vec!["2".into(), "has,comma".into()]);
        t.row(vec!["3".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("x,note"));
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(0.12345, 3), "0.123");
        assert_eq!(fmt_crossover(Some(0.2199)), "0.220");
        assert_eq!(fmt_crossover(None), "-");
    }
}
