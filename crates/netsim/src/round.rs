//! A minimal round-driven simulation engine.
//!
//! All simulators in the workspace advance in synchronous rounds (the
//! paper's model is round-based, as is BAR Gossip). [`RoundSim`] is the
//! common trait; [`run`] and [`run_while`] drive a simulator while keeping
//! the round counter honest in one place.

use crate::Round;

/// A synchronous round-based simulation.
pub trait RoundSim {
    /// Execute round `t` (starting from 0, strictly increasing).
    fn round(&mut self, t: Round);

    /// Rounds executed so far (i.e. the next round index).
    fn rounds_run(&self) -> Round;
}

/// Drive `sim` for `rounds` additional rounds.
pub fn run<S: RoundSim>(sim: &mut S, rounds: Round) {
    let start = sim.rounds_run();
    for t in start..start + rounds {
        sim.round(t);
    }
}

/// Drive `sim` for `rounds` additional rounds, invoking `before` with the
/// simulator and the round index ahead of every round.
///
/// This is the generic seam for per-round environment dynamics that live
/// outside the simulator proper — population churn
/// (`lotus_core::population`), scheduled attack phase flips, fault
/// injection. The hook runs before the round executes, so whatever it
/// mutates is visible to that round.
pub fn run_with<S: RoundSim>(sim: &mut S, rounds: Round, mut before: impl FnMut(&mut S, Round)) {
    let start = sim.rounds_run();
    for t in start..start + rounds {
        before(sim, t);
        sim.round(t);
    }
}

/// Drive `sim` until `stop` returns `true` or `max_rounds` total rounds
/// have run. Returns the number of rounds executed by this call.
pub fn run_while<S: RoundSim>(
    sim: &mut S,
    max_rounds: Round,
    mut stop: impl FnMut(&S) -> bool,
) -> Round {
    let start = sim.rounds_run();
    let mut executed = 0;
    while sim.rounds_run() < max_rounds && !stop(sim) {
        let t = sim.rounds_run();
        sim.round(t);
        executed = sim.rounds_run() - start;
    }
    executed
}

/// Drive `sim` until `stop` returns `true` or `max_rounds` total rounds
/// have run, invoking `before` with the simulator and the round index
/// ahead of every executed round. Returns the number of rounds executed
/// by this call.
///
/// This composes [`run_while`]'s early-stopping contract with
/// [`run_with`]'s pre-round hook seam, so per-round environment dynamics
/// (churn, schedule flips, fault injection) work under early-stopping
/// drivers too. As in [`run_while`], the predicate is checked first; a
/// round that does not execute never sees the hook.
pub fn run_while_with<S: RoundSim>(
    sim: &mut S,
    max_rounds: Round,
    mut before: impl FnMut(&mut S, Round),
    mut stop: impl FnMut(&S) -> bool,
) -> Round {
    let start = sim.rounds_run();
    let mut executed = 0;
    while sim.rounds_run() < max_rounds && !stop(sim) {
        let t = sim.rounds_run();
        before(sim, t);
        sim.round(t);
        executed = sim.rounds_run() - start;
    }
    executed
}

/// Zero per-node round counters over the given index ranges — the
/// batched, shard-aware stand-in for a full-slab `fill(0)` in per-round
/// exchange bookkeeping (served-interaction counters and the like).
///
/// Callers pass the active ranges of their shard map: only slots a
/// responder can actually touch this round need clearing, so the cost
/// is `O(active shards)` instead of `O(population)`. Ranges must lie
/// within the slab; out-of-range indices panic like any slice index.
// lint: hot-loop
pub fn clear_counters_for(
    counters: &mut [u32],
    ranges: impl IntoIterator<Item = core::ops::Range<usize>>,
) {
    for range in ranges {
        for c in &mut counters[range] {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        t: Round,
        history: Vec<Round>,
    }

    impl RoundSim for Counter {
        fn round(&mut self, t: Round) {
            assert_eq!(t, self.t, "rounds must be strictly sequential");
            self.history.push(t);
            self.t += 1;
        }
        fn rounds_run(&self) -> Round {
            self.t
        }
    }

    #[test]
    fn clear_counters_zeroes_exactly_the_ranges() {
        let mut slab = vec![7u32; 10];
        clear_counters_for(&mut slab, [1..3, 8..10]);
        assert_eq!(slab, vec![7, 0, 0, 7, 7, 7, 7, 7, 0, 0]);
        clear_counters_for(&mut slab, std::iter::empty::<std::ops::Range<usize>>());
        assert_eq!(slab[0], 7, "no ranges, no writes");
    }

    #[test]
    fn run_advances_sequentially() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        run(&mut c, 5);
        assert_eq!(c.history, vec![0, 1, 2, 3, 4]);
        run(&mut c, 2);
        assert_eq!(c.rounds_run(), 7);
    }

    #[test]
    fn run_with_invokes_hook_before_each_round() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let mut hooked = Vec::new();
        run_with(&mut c, 4, |sim, t| {
            assert_eq!(sim.rounds_run(), t, "hook sees the pre-round state");
            hooked.push(t);
        });
        assert_eq!(hooked, vec![0, 1, 2, 3]);
        assert_eq!(c.rounds_run(), 4);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let executed = run_while(&mut c, 100, |s| s.rounds_run() >= 3);
        assert_eq!(executed, 3);
        assert_eq!(c.rounds_run(), 3);
    }

    #[test]
    fn run_while_respects_max() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let executed = run_while(&mut c, 4, |_| false);
        assert_eq!(executed, 4);
    }

    #[test]
    fn run_while_zero_if_already_stopped() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let executed = run_while(&mut c, 10, |_| true);
        assert_eq!(executed, 0);
    }

    #[test]
    fn run_while_with_sequences_hook_check_round() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let mut hooked = Vec::new();
        let executed = run_while_with(
            &mut c,
            100,
            |sim, t| {
                assert_eq!(sim.rounds_run(), t, "hook sees the pre-round state");
                hooked.push(t);
            },
            |s| s.rounds_run() >= 3,
        );
        assert_eq!(executed, 3);
        assert_eq!(c.history, vec![0, 1, 2]);
        // The predicate stopped the fourth round before its hook ran:
        // a round that does not execute never sees the hook.
        assert_eq!(hooked, vec![0, 1, 2]);
    }

    #[test]
    fn run_while_with_respects_max_and_immediate_stop() {
        let mut c = Counter {
            t: 0,
            history: vec![],
        };
        let mut hooks = 0;
        let executed = run_while_with(&mut c, 4, |_, _| hooks += 1, |_| false);
        assert_eq!((executed, hooks), (4, 4));
        let mut hooks = 0;
        let executed = run_while_with(&mut c, 10, |_, _| hooks += 1, |_| true);
        assert_eq!((executed, hooks), (0, 0), "already stopped: no hook runs");
    }
}
