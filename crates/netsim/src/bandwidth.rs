//! Per-node bandwidth accounting.
//!
//! The paper notes that the trade lotus-eater attack "does require enough
//! bandwidth at each attacking node to satiate multiple nodes every round
//! while the crash attack requires essentially no bandwidth". To make that
//! comparison measurable, simulators meter every transfer by message class.

use crate::NodeId;

/// Classification of metered traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Useful protocol payload (updates, pieces, tokens).
    Payload,
    /// Junk uploaded to satisfy balance requirements (BAR Gossip optimistic
    /// pushes pay in junk when no useful update is owed).
    Junk,
    /// Control traffic (offers, requests, reports).
    Control,
}

impl MsgClass {
    const ALL: [MsgClass; 3] = [MsgClass::Payload, MsgClass::Junk, MsgClass::Control];

    fn idx(self) -> usize {
        match self {
            MsgClass::Payload => 0,
            MsgClass::Junk => 1,
            MsgClass::Control => 2,
        }
    }
}

/// Upload/download meter over `n` nodes.
///
/// ```
/// use netsim::bandwidth::{BandwidthMeter, MsgClass};
/// use netsim::NodeId;
///
/// let mut m = BandwidthMeter::new(2);
/// m.transfer(NodeId(0), NodeId(1), MsgClass::Payload, 3);
/// assert_eq!(m.uploaded(NodeId(0)), 3);
/// assert_eq!(m.downloaded(NodeId(1)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandwidthMeter {
    up: Vec<[u64; 3]>,
    down: Vec<[u64; 3]>,
}

impl BandwidthMeter {
    /// A meter for `n` nodes, all counters zero.
    pub fn new(n: u32) -> Self {
        BandwidthMeter {
            up: vec![[0; 3]; n as usize],
            down: vec![[0; 3]; n as usize],
        }
    }

    /// Record `units` of traffic from `src` to `dst`.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, class: MsgClass, units: u64) {
        self.up[src.index()][class.idx()] += units;
        self.down[dst.index()][class.idx()] += units;
    }

    /// Total units uploaded by `node` across all classes.
    pub fn uploaded(&self, node: NodeId) -> u64 {
        self.up[node.index()].iter().sum()
    }

    /// Total units downloaded by `node` across all classes.
    pub fn downloaded(&self, node: NodeId) -> u64 {
        self.down[node.index()].iter().sum()
    }

    /// Units uploaded by `node` in one class.
    pub fn uploaded_class(&self, node: NodeId, class: MsgClass) -> u64 {
        self.up[node.index()][class.idx()]
    }

    /// Units downloaded by `node` in one class.
    pub fn downloaded_class(&self, node: NodeId, class: MsgClass) -> u64 {
        self.down[node.index()][class.idx()]
    }

    /// System-wide uploads in one class.
    pub fn total_class(&self, class: MsgClass) -> u64 {
        self.up.iter().map(|row| row[class.idx()]).sum()
    }

    /// System-wide uploads across all classes.
    pub fn total(&self) -> u64 {
        MsgClass::ALL.iter().map(|&c| self.total_class(c)).sum()
    }

    /// Mean uploads per node over an arbitrary node subset.
    pub fn mean_uploaded<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for n in nodes {
            total += self.uploaded(n);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Fraction of system-wide traffic that is junk (0 when idle).
    pub fn junk_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.total_class(MsgClass::Junk) as f64 / total as f64
        }
    }

    /// Reset all counters (e.g. at the end of a warm-up phase).
    pub fn reset(&mut self) {
        for row in self.up.iter_mut().chain(self.down.iter_mut()) {
            *row = [0; 3];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_accumulate_by_direction() {
        let mut m = BandwidthMeter::new(3);
        m.transfer(NodeId(0), NodeId(1), MsgClass::Payload, 5);
        m.transfer(NodeId(0), NodeId(2), MsgClass::Junk, 2);
        m.transfer(NodeId(1), NodeId(0), MsgClass::Payload, 1);

        assert_eq!(m.uploaded(NodeId(0)), 7);
        assert_eq!(m.downloaded(NodeId(0)), 1);
        assert_eq!(m.uploaded_class(NodeId(0), MsgClass::Junk), 2);
        assert_eq!(m.downloaded_class(NodeId(2), MsgClass::Junk), 2);
    }

    #[test]
    fn uploads_equal_downloads_globally() {
        let mut m = BandwidthMeter::new(4);
        m.transfer(NodeId(0), NodeId(1), MsgClass::Payload, 5);
        m.transfer(NodeId(2), NodeId(3), MsgClass::Control, 4);
        let up: u64 = (0..4).map(|i| m.uploaded(NodeId(i))).sum();
        let down: u64 = (0..4).map(|i| m.downloaded(NodeId(i))).sum();
        assert_eq!(up, down);
        assert_eq!(m.total(), 9);
    }

    #[test]
    fn junk_fraction_and_reset() {
        let mut m = BandwidthMeter::new(2);
        assert_eq!(m.junk_fraction(), 0.0);
        m.transfer(NodeId(0), NodeId(1), MsgClass::Payload, 3);
        m.transfer(NodeId(1), NodeId(0), MsgClass::Junk, 1);
        assert!((m.junk_fraction() - 0.25).abs() < 1e-12);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn mean_uploaded_subset() {
        let mut m = BandwidthMeter::new(3);
        m.transfer(NodeId(0), NodeId(1), MsgClass::Payload, 10);
        m.transfer(NodeId(2), NodeId(1), MsgClass::Payload, 2);
        let mean = m.mean_uploaded([NodeId(0), NodeId(2)]);
        assert!((mean - 6.0).abs() < 1e-12);
        assert_eq!(m.mean_uploaded([]), 0.0);
    }
}
