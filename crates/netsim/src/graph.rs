//! Compact undirected graphs and standard topology builders.
//!
//! The lotus-eater paper's abstract model (§3) characterises a system by a
//! graph `G = (V, E)` of potential communication pairs. Cut-based satiation
//! attacks exploit graph structure (grids, sensor networks), while random
//! graphs resist them; this module provides both kinds of topology plus the
//! traversal helpers the attack planners need.
//!
//! Graphs are stored in CSR (compressed sparse row) form: cache-friendly,
//! immutable after construction, `O(1)` neighbour slices.

use crate::rng::DetRng;
use crate::NodeId;

/// An immutable simple undirected graph in CSR form.
///
/// Self-loops and parallel edges are removed at construction time.
///
/// ```
/// use netsim::graph::Graph;
/// let g = Graph::cycle(5);
/// assert_eq!(g.len(), 5);
/// assert_eq!(g.degree(netsim::NodeId(0)), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
}

impl Graph {
    /// Build a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are dropped; duplicate edges are merged. Endpoints must be
    /// `< n`.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for n = {n}");
            if a == b {
                continue;
            }
            pairs.push((a, b));
            pairs.push((b, a));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0u32; n as usize + 1];
        for &(a, _) in &pairs {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n as usize {
            offsets[i + 1] += offsets[i];
        }
        let adjacency = pairs.into_iter().map(|(_, b)| b).collect();
        Graph { offsets, adjacency }
    }

    /// Number of vertices.
    pub fn len(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Neighbours of `v` as a sorted slice of raw vertex indices.
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// `true` if `{a, b}` is an edge.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b.0).is_ok()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        NodeId::all(self.len())
    }

    /// BFS hop distances from `src`; `None` for unreachable vertices.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.len() as usize];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = Some(0);
        queue.push_back(src.0);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize].expect("queued vertices have distances");
            for &w in self.neighbors(NodeId(u)) {
                if dist[w as usize].is_none() {
                    dist[w as usize] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// `true` if every vertex is reachable from every other.
    ///
    /// The empty graph is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(Option::is_some)
    }

    /// Connected-component label for every vertex (labels are dense from 0).
    pub fn components(&self) -> Vec<u32> {
        let n = self.len() as usize;
        let mut comp = vec![u32::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            let mut queue = std::collections::VecDeque::new();
            comp[s] = next;
            queue.push_back(s as u32);
            while let Some(u) = queue.pop_front() {
                for &w in self.neighbors(NodeId(u)) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        queue.push_back(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Component labels of the graph after removing `removed` vertices.
    ///
    /// Removed vertices get label `u32::MAX`. Used by the cut-attack
    /// planner: if the survivors split into more than one component, the
    /// removed set was a vertex cut.
    ///
    /// # Panics
    ///
    /// Panics if `removed.len() != self.len()`.
    pub fn components_without(&self, removed: &[bool]) -> Vec<u32> {
        assert_eq!(removed.len(), self.len() as usize);
        let n = self.len() as usize;
        let mut comp = vec![u32::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if removed[s] || comp[s] != u32::MAX {
                continue;
            }
            let mut queue = std::collections::VecDeque::new();
            comp[s] = next;
            queue.push_back(s as u32);
            while let Some(u) = queue.pop_front() {
                for &w in self.neighbors(NodeId(u)) {
                    if !removed[w as usize] && comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        queue.push_back(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// `true` if removing `removed` disconnects the surviving vertices.
    pub fn is_vertex_cut(&self, removed: &[bool]) -> bool {
        // Survivor component labels are dense from 0, so "more than one
        // distinct label" is just "some survivor has a label above 0" —
        // no set needed at all.
        let comp = self.components_without(removed);
        comp.iter().enumerate().any(|(i, &c)| !removed[i] && c > 0)
    }

    // ----------------------------------------------------------------
    // Builders.
    // ----------------------------------------------------------------

    /// The complete graph `K_n`.
    pub fn complete(n: u32) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// A simple path `0 — 1 — … — (n-1)`.
    pub fn path(n: u32) -> Self {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        Graph::from_edges(n, &edges)
    }

    /// A cycle of `n` vertices (`n >= 3` to be a proper cycle; smaller `n`
    /// degenerates to a path/edge).
    pub fn cycle(n: u32) -> Self {
        let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        if n >= 3 {
            edges.push((n - 1, 0));
        }
        Graph::from_edges(n, &edges)
    }

    /// A `rows × cols` 2-D grid; `torus` wraps both dimensions.
    ///
    /// Vertex `(r, c)` has index `r * cols + c`.
    pub fn grid(rows: u32, cols: u32, torus: bool) -> Self {
        let n = rows * cols;
        let idx = |r: u32, c: u32| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                } else if torus && cols > 2 {
                    edges.push((idx(r, c), idx(r, 0)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                } else if torus && rows > 2 {
                    edges.push((idx(r, c), idx(0, c)));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// Erdős–Rényi `G(n, p)`: each pair is an edge independently with
    /// probability `p`.
    pub fn erdos_renyi(n: u32, p: f64, rng: &mut DetRng) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(p) {
                    edges.push((a, b));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// Watts–Strogatz small world: ring lattice with `k` nearest neighbours
    /// per side, each edge rewired with probability `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `2 * k >= n` (the lattice would not be simple).
    pub fn watts_strogatz(n: u32, k: u32, beta: f64, rng: &mut DetRng) -> Self {
        assert!(
            2 * k < n,
            "watts_strogatz requires 2k < n (got k={k}, n={n})"
        );
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..n {
            for j in 1..=k {
                edges.push((v, (v + j) % n));
            }
        }
        // BTreeSet, not HashSet: membership/removal are order-insensitive
        // here (`from_edges` sorts), but the sim tier bans hash containers
        // outright so no iteration-order dependence can creep in later.
        let mut set: std::collections::BTreeSet<(u32, u32)> =
            edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        for e in edges.iter_mut() {
            if rng.chance(beta) {
                let (a, old_b) = *e;
                // Try a few times to find a fresh endpoint.
                for _ in 0..16 {
                    let nb = rng.range(u64::from(n)) as u32;
                    let key = (a.min(nb), a.max(nb));
                    if nb != a && !set.contains(&key) {
                        set.remove(&(a.min(old_b), a.max(old_b)));
                        set.insert(key);
                        *e = (a, nb);
                        break;
                    }
                }
            }
        }
        let final_edges: Vec<_> = set.into_iter().collect();
        Graph::from_edges(n, &final_edges)
    }

    /// Random geometric graph: `n` points uniform in the unit square,
    /// edges between pairs within `radius` — the standard model of a
    /// sensor-network radio topology. The paper (§3) observes that such
    /// inherent spatial structure gives an attacker cheap cuts that random
    /// graphs lack.
    pub fn random_geometric(n: u32, radius: f64, rng: &mut DetRng) -> Self {
        let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64(), rng.f64())).collect();
        let r2 = radius * radius;
        let mut edges = Vec::new();
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                let dx = points[a].0 - points[b].0;
                let dy = points[a].1 - points[b].1;
                if dx * dx + dy * dy <= r2 {
                    edges.push((a as u32, b as u32));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// Barabási–Albert preferential attachment: start from a clique of
    /// `m + 1` vertices, then attach each new vertex to `m` existing ones
    /// chosen proportionally to degree.
    ///
    /// # Panics
    ///
    /// Panics if `n <= m` or `m == 0`.
    pub fn barabasi_albert(n: u32, m: u32, rng: &mut DetRng) -> Self {
        assert!(m > 0 && n > m, "barabasi_albert requires 0 < m < n");
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Repeated-endpoint list: sampling uniformly from it is sampling
        // proportionally to degree.
        let mut endpoints: Vec<u32> = Vec::new();
        for a in 0..=m {
            for b in (a + 1)..=m {
                edges.push((a, b));
                endpoints.push(a);
                endpoints.push(b);
            }
        }
        for v in (m + 1)..n {
            // A BTreeSet (iterated in sorted order) where a HashSet once
            // was: HashSet iteration order is randomised per process, and
            // it fed back into `endpoints` — so two runs of the same seed
            // in different processes could build different graphs. Sorted
            // iteration makes the builder genuinely deterministic.
            let mut targets = std::collections::BTreeSet::new();
            while (targets.len() as u32) < m {
                let t = endpoints[rng.index(endpoints.len())];
                targets.insert(t);
            }
            for &t in &targets {
                edges.push((v, t));
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// BFS layers from `src`: `layers[d]` holds all vertices at hop
    /// distance `d`. Unreachable vertices are omitted.
    pub fn bfs_layers(&self, src: NodeId) -> Vec<Vec<NodeId>> {
        let dist = self.bfs_distances(src);
        let mut layers: Vec<Vec<NodeId>> = Vec::new();
        for (i, d) in dist.iter().enumerate() {
            if let Some(d) = d {
                let d = *d as usize;
                while layers.len() <= d {
                    layers.push(Vec::new());
                }
                layers[d].push(NodeId(i as u32));
            }
        }
        layers
    }

    /// A cheap vertex cut found by the BFS-layer heuristic: grow layers
    /// from `src` and return the smallest intermediate layer that actually
    /// separates the graph (both sides non-empty). This is how an attacker
    /// without global knowledge plans a cut-satiation attack — "finding
    /// inexpensive cuts depends on the structure of G" (§3).
    ///
    /// Returns `None` when no intermediate layer is a cut (e.g. complete
    /// graphs, or graphs with fewer than three BFS layers).
    pub fn layered_cut(&self, src: NodeId) -> Option<Vec<NodeId>> {
        let layers = self.bfs_layers(src);
        if layers.len() < 3 {
            return None;
        }
        let mut best: Option<&Vec<NodeId>> = None;
        for layer in &layers[1..layers.len() - 1] {
            let mut removed = vec![false; self.len() as usize];
            for v in layer {
                removed[v.index()] = true;
            }
            if self.is_vertex_cut(&removed) && best.is_none_or(|b| layer.len() < b.len()) {
                best = Some(layer);
            }
        }
        best.cloned()
    }

    /// Graph diameter (longest shortest path), or `None` if disconnected
    /// or empty. `O(V * E)` — fine at simulation scale.
    pub fn diameter(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        for v in self.nodes() {
            for d in self.bfs_distances(v) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Mean degree over all vertices (0 for the empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.adjacency.len() as f64 / f64::from(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(NodeId(1)), &[0, 2]);
        assert!(!g.contains_edge(NodeId(1), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_endpoints() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn complete_graph_shape() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn path_and_cycle_shape() {
        let p = Graph::path(5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.degree(NodeId(0)), 1);
        assert_eq!(p.degree(NodeId(2)), 2);

        let c = Graph::cycle(5);
        assert_eq!(c.edge_count(), 5);
        for v in c.nodes() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    fn grid_shape_and_torus() {
        let g = Graph::grid(4, 5, false);
        assert_eq!(g.len(), 20);
        // Corner has degree 2, interior 4.
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(6)), 4);
        assert!(g.is_connected());

        let t = Graph::grid(4, 5, true);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4, "torus is 4-regular");
        }
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::path(4);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn disconnected_components() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let comp = g.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert_ne!(comp[4], comp[2]);
    }

    #[test]
    fn grid_column_is_a_cut() {
        // Removing a full column of a 5x5 grid splits it in two.
        let g = Graph::grid(5, 5, false);
        let mut removed = vec![false; 25];
        for r in 0..5 {
            removed[r * 5 + 2] = true;
        }
        assert!(g.is_vertex_cut(&removed));
        let comp = g.components_without(&removed);
        assert_eq!(comp[0], comp[1]); // left side together
        assert_ne!(comp[0], comp[4]); // right side separate
        assert_eq!(comp[2], u32::MAX); // removed marker
    }

    #[test]
    fn complete_graph_has_no_small_cut() {
        let g = Graph::complete(6);
        let mut removed = vec![false; 6];
        removed[0] = true;
        removed[1] = true;
        assert!(!g.is_vertex_cut(&removed));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = DetRng::seed_from(1);
        let empty = Graph::erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = Graph::erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = DetRng::seed_from(2);
        let g = Graph::erdos_renyi(60, 0.25, &mut rng);
        let expected = 0.25 * (60.0 * 59.0 / 2.0);
        let got = g.edge_count() as f64;
        assert!((got - expected).abs() < expected * 0.25, "got {got} edges");
    }

    #[test]
    fn watts_strogatz_preserves_edge_count_at_beta_zero() {
        let mut rng = DetRng::seed_from(3);
        let g = Graph::watts_strogatz(20, 2, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_graph_simple() {
        let mut rng = DetRng::seed_from(4);
        let g = Graph::watts_strogatz(50, 3, 0.5, &mut rng);
        for v in g.nodes() {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "neighbour lists sorted & deduped");
            }
            assert!(!nb.contains(&v.0), "no self loops");
        }
    }

    #[test]
    #[should_panic(expected = "2k < n")]
    fn watts_strogatz_validates_k() {
        let mut rng = DetRng::seed_from(0);
        Graph::watts_strogatz(6, 3, 0.1, &mut rng);
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut rng = DetRng::seed_from(5);
        let g = Graph::barabasi_albert(100, 3, &mut rng);
        assert_eq!(g.len(), 100);
        assert!(g.is_connected());
        // Initial clique of 4 contributes 6 edges; each of the 96 newcomers 3.
        assert_eq!(g.edge_count(), 6 + 96 * 3);
    }

    #[test]
    fn barabasi_albert_is_skewed() {
        let mut rng = DetRng::seed_from(6);
        let g = Graph::barabasi_albert(200, 2, &mut rng);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 3.0 * g.mean_degree(),
            "hubs should emerge (max {max_deg}, mean {})",
            g.mean_degree()
        );
    }

    #[test]
    fn bfs_layers_partition_reachable_vertices() {
        let g = Graph::grid(3, 4, false);
        let layers = g.bfs_layers(NodeId(0));
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, 12, "connected: all vertices appear");
        assert_eq!(layers[0], vec![NodeId(0)]);
        // Manhattan distance layering on the grid.
        assert_eq!(layers[1].len(), 2);
    }

    #[test]
    fn layered_cut_finds_grid_separators() {
        let g = Graph::grid(5, 9, false);
        let cut = g.layered_cut(NodeId(0)).expect("grids have cheap cuts");
        let mut removed = vec![false; g.len() as usize];
        for v in &cut {
            removed[v.index()] = true;
        }
        assert!(g.is_vertex_cut(&removed), "returned set must be a cut");
        assert!(
            cut.len() <= 9,
            "heuristic cut should be small on a grid, got {}",
            cut.len()
        );
    }

    #[test]
    fn layered_cut_none_on_complete_graphs() {
        let g = Graph::complete(8);
        assert!(g.layered_cut(NodeId(0)).is_none());
    }

    #[test]
    fn path_layered_cut_is_single_vertex() {
        let g = Graph::path(9);
        let cut = g.layered_cut(NodeId(0)).unwrap();
        assert_eq!(cut.len(), 1, "any interior path vertex is a cut");
    }

    #[test]
    fn diameter_values() {
        assert_eq!(Graph::path(5).diameter(), Some(4));
        assert_eq!(Graph::complete(6).diameter(), Some(1));
        assert_eq!(Graph::cycle(8).diameter(), Some(4));
        assert_eq!(Graph::from_edges(4, &[(0, 1)]).diameter(), None);
        assert_eq!(Graph::from_edges(0, &[]).diameter(), None);
    }

    #[test]
    fn random_geometric_shape() {
        let mut rng = DetRng::seed_from(8);
        let sparse = Graph::random_geometric(100, 0.05, &mut rng);
        let dense = Graph::random_geometric(100, 0.5, &mut rng);
        assert!(dense.edge_count() > sparse.edge_count());
        // Radius sqrt(2) covers the whole unit square: complete graph.
        let full = Graph::random_geometric(20, 1.5, &mut rng);
        assert_eq!(full.edge_count(), 190);
        // Degenerate radius: no edges.
        let empty = Graph::random_geometric(20, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn random_geometric_graphs_have_spatial_cuts() {
        // At moderate density a geometric graph almost always admits a
        // cheap layered cut — the §3 sensor-network observation.
        let mut rng = DetRng::seed_from(9);
        let mut found = 0;
        for _ in 0..5 {
            let g = Graph::random_geometric(120, 0.16, &mut rng);
            if !g.is_connected() {
                continue;
            }
            if let Some(cut) = g.layered_cut(NodeId(0)) {
                if cut.len() < 30 {
                    found += 1;
                }
            }
        }
        assert!(found >= 1, "geometric graphs should expose cheap cuts");
    }

    #[test]
    fn mean_degree_empty() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.is_empty());
        assert!(g.is_connected());
    }
}
