//! Running statistics, histograms and time series.
//!
//! Every experiment reports aggregates — mean delivery fractions, crossover
//! points, percentiles of completion times. This module provides the small
//! numeric toolkit those reports are built from, with numerically stable
//! accumulators (Welford) and fixed-bucket histograms.

/// Numerically stable running mean/variance/min/max accumulator
/// (Welford's algorithm).
///
/// ```
/// use netsim::metrics::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` if no observations were added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with `buckets` equal-width buckets over `[lo, hi)`.
///
/// Out-of-range observations clamp into the first/last bucket, so totals
/// are conserved (important when histogramming ratios that can hit 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Add an observation (clamped into range).
    pub fn push(&mut self, x: f64) {
        let b = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64)
            .floor()
            .clamp(0.0, (self.counts.len() - 1) as f64) as usize;
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bucket midpoints.
    ///
    /// Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// Exact quantile of a data set (interpolated, like numpy's `linear`).
///
/// Returns `None` on empty input. Sorts a copy: `O(n log n)`.
pub fn quantile_exact(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile data must not contain NaN")
    });
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// A labelled series of `(x, y)` points — one experiment curve.
///
/// This is the exchange format between simulators, the sweep harness and
/// the figure printers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    /// Curve label, e.g. `"Crash attack"`.
    pub label: String,
    /// The `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new, empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Linear interpolation of `y` at `x` (clamped to the range covered).
    ///
    /// Returns `None` if the series is empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if (x0..=x1).contains(&x) {
                if x1 == x0 {
                    return Some(y0);
                }
                let t = (x - x0) / (x1 - x0);
                return Some(y0 + t * (y1 - y0));
            }
        }
        None
    }

    /// Smallest `x` at which the (assumed monotone-decreasing) curve first
    /// drops below `threshold`, linearly interpolated between samples.
    ///
    /// This is how we extract the paper's headline numbers ("the attacker
    /// needs to control 22 % of the nodes"): the crossover of the
    /// delivered-fraction curve with the 93 % usability line.
    ///
    /// Returns `None` if the curve never drops below the threshold.
    pub fn crossover_below(&self, threshold: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if pts[0].1 < threshold {
            return Some(pts[0].0);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if y0 >= threshold && y1 < threshold {
                if (y0 - y1).abs() < f64::EPSILON {
                    return Some(x1);
                }
                let t = (y0 - threshold) / (y0 - y1);
                return Some(x0 + t * (x1 - x0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic_stats() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.std_dev(), 2.0);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn running_empty_defaults() {
        let r = Running::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        data.iter().for_each(|&x| whole.push(x));

        let mut a = Running::new();
        let mut b = Running::new();
        data[..37].iter().for_each(|&x| a.push(x));
        data[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.len(), whole.len());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn running_merge_with_empty() {
        let mut a = Running::new();
        a.push(1.0);
        let b = Running::new();
        let snapshot = a;
        a.merge(&b);
        assert_eq!(a, snapshot);

        let mut e = Running::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9, -5.0, 5.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]); // clamped extremes at ends
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(f64::from(i) / 10.0);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() < 1.0, "median was {median}");
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn quantile_exact_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_exact(&data, 0.0), Some(1.0));
        assert_eq!(quantile_exact(&data, 1.0), Some(4.0));
        assert_eq!(quantile_exact(&data, 0.5), Some(2.5));
        assert_eq!(quantile_exact(&[], 0.5), None);
    }

    #[test]
    fn series_interpolation() {
        let mut s = Series::new("test");
        s.push(0.0, 1.0);
        s.push(1.0, 0.0);
        assert_eq!(s.interpolate(0.5), Some(0.5));
        assert_eq!(s.interpolate(-1.0), Some(1.0));
        assert_eq!(s.interpolate(2.0), Some(0.0));
        assert_eq!(Series::new("e").interpolate(0.0), None);
    }

    #[test]
    fn series_crossover() {
        let mut s = Series::new("delivery");
        s.push(0.0, 1.0);
        s.push(0.2, 0.98);
        s.push(0.4, 0.90);
        s.push(0.6, 0.50);
        // Crosses 0.93 between x = 0.2 and x = 0.4.
        let x = s.crossover_below(0.93).unwrap();
        assert!((0.2..0.4).contains(&x), "crossover at {x}");
        // Never drops below 0.1.
        assert_eq!(s.crossover_below(0.1), None);
        // Already below at x = 0.
        let mut low = Series::new("low");
        low.push(0.0, 0.5);
        assert_eq!(low.crossover_below(0.93), Some(0.0));
    }

    #[test]
    fn series_crossover_flat_segment() {
        let mut s = Series::new("flat");
        s.push(0.0, 0.95);
        s.push(0.5, 0.95);
        s.push(1.0, 0.0);
        let x = s.crossover_below(0.93).unwrap();
        assert!(x > 0.5 && x < 1.0);
    }
}
