//! Simulated message authentication.
//!
//! BAR Gossip relies on signed messages so that misbehaviour leaves
//! *evidence*: a node can prove to a third party what a peer sent. The
//! report-and-evict defense against the lotus-eater attack (paper §4) needs
//! exactly this — an obedient node that receives excessive service reports
//! it, attaching the signed transfer record as proof.
//!
//! Real deployments would use asymmetric signatures. For a simulation we
//! only need the *interface* properties: (1) a signature binds a payload to
//! a signer, (2) other parties can verify it, (3) a node cannot forge
//! another node's signature *through the APIs the simulator exposes*. We
//! implement this with keyed 64-bit hashes checked by a central
//! [`Authority`] (which stands in for a PKI).
//!
//! **This module is not cryptographically secure** and must never be used
//! outside simulations.

use crate::rng::{split_mix64, DetRng};
use crate::NodeId;

/// A 64-bit digest accumulator (FNV-1a with a strengthening finalizer).
///
/// Payload types implement [`Digestible`] by feeding their fields to this
/// hasher in a fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    state: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// A fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Hasher64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feed one `u64` word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Finish, applying an avalanche finalizer.
    #[inline]
    pub fn finish(self) -> u64 {
        split_mix64(self.state)
    }
}

/// Types that can be deterministically digested for signing.
pub trait Digestible {
    /// Feed the value's canonical encoding to `h`.
    fn digest(&self, h: &mut Hasher64);

    /// Convenience: digest into a single `u64`.
    fn digest_value(&self) -> u64 {
        let mut h = Hasher64::new();
        self.digest(&mut h);
        h.finish()
    }
}

impl Digestible for u64 {
    fn digest(&self, h: &mut Hasher64) {
        h.write_u64(*self);
    }
}

impl Digestible for u32 {
    fn digest(&self, h: &mut Hasher64) {
        h.write_u64(u64::from(*self));
    }
}

impl Digestible for NodeId {
    fn digest(&self, h: &mut Hasher64) {
        h.write_u64(u64::from(self.0));
    }
}

impl Digestible for &str {
    fn digest(&self, h: &mut Hasher64) {
        h.write_u64(self.len() as u64);
        h.write_bytes(self.as_bytes());
    }
}

impl<T: Digestible> Digestible for &[T] {
    fn digest(&self, h: &mut Hasher64) {
        h.write_u64(self.len() as u64);
        for item in self.iter() {
            item.digest(h);
        }
    }
}

impl<T: Digestible> Digestible for Vec<T> {
    fn digest(&self, h: &mut Hasher64) {
        self.as_slice().digest(h);
    }
}

impl<A: Digestible, B: Digestible> Digestible for (A, B) {
    fn digest(&self, h: &mut Hasher64) {
        self.0.digest(h);
        self.1.digest(h);
    }
}

impl<A: Digestible, B: Digestible, C: Digestible> Digestible for (A, B, C) {
    fn digest(&self, h: &mut Hasher64) {
        self.0.digest(h);
        self.1.digest(h);
        self.2.digest(h);
    }
}

/// A simulated signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(u64);

/// A payload together with the signer's id and signature.
///
/// Constructed via [`Authority::sign`]; checked via [`Authority::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signed<T> {
    /// The signed payload.
    pub payload: T,
    /// Claimed signer.
    pub signer: NodeId,
    /// Simulated signature over `(signer, payload)`.
    pub signature: Signature,
}

/// Errors returned by [`Authority::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The claimed signer is not registered with the authority.
    UnknownSigner(NodeId),
    /// The signature does not match the payload/signer pair.
    BadSignature(NodeId),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownSigner(n) => write!(f, "unknown signer {n}"),
            VerifyError::BadSignature(n) => write!(f, "bad signature claimed from {n}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A simulated PKI: issues per-node keys and verifies signatures.
///
/// ```
/// use netsim::sign::Authority;
/// use netsim::NodeId;
///
/// let auth = Authority::new(99, 10);
/// let msg = (NodeId(4), 123u64);
/// let signed = auth.sign(NodeId(2), msg);
/// assert!(auth.verify(&signed).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Authority {
    keys: Vec<u64>,
}

impl Authority {
    /// Issue keys for `n` nodes deterministically from `seed`.
    pub fn new(seed: u64, n: u32) -> Self {
        let mut rng = DetRng::seed_from(seed ^ 0x5167_4e41_5455_5245); // "SIGNATURE"
        let keys = (0..n).map(|_| rng.next_u64()).collect();
        Authority { keys }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> u32 {
        self.keys.len() as u32
    }

    /// `true` if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn mac<T: Digestible>(&self, key: u64, signer: NodeId, payload: &T) -> Signature {
        let mut h = Hasher64::new();
        h.write_u64(key);
        signer.digest(&mut h);
        payload.digest(&mut h);
        h.write_u64(key.rotate_left(32));
        Signature(h.finish())
    }

    /// Sign `payload` as `signer`.
    ///
    /// # Panics
    ///
    /// Panics if `signer` is not registered.
    pub fn sign<T: Digestible>(&self, signer: NodeId, payload: T) -> Signed<T> {
        let key = self.keys[signer.index()];
        let signature = self.mac(key, signer, &payload);
        Signed {
            payload,
            signer,
            signature,
        }
    }

    /// Verify a signed payload.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::UnknownSigner`] for unregistered signers and
    /// [`VerifyError::BadSignature`] if the signature does not match.
    pub fn verify<T: Digestible>(&self, signed: &Signed<T>) -> Result<(), VerifyError> {
        let Some(&key) = self.keys.get(signed.signer.index()) else {
            return Err(VerifyError::UnknownSigner(signed.signer));
        };
        if self.mac(key, signed.signer, &signed.payload) == signed.signature {
            Ok(())
        } else {
            Err(VerifyError::BadSignature(signed.signer))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auth() -> Authority {
        Authority::new(42, 8)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let a = auth();
        let s = a.sign(NodeId(3), 77u64);
        assert_eq!(a.verify(&s), Ok(()));
    }

    #[test]
    fn tampered_payload_rejected() {
        let a = auth();
        let mut s = a.sign(NodeId(3), 77u64);
        s.payload = 78;
        assert_eq!(a.verify(&s), Err(VerifyError::BadSignature(NodeId(3))));
    }

    #[test]
    fn reattributed_signature_rejected() {
        let a = auth();
        let mut s = a.sign(NodeId(3), 77u64);
        s.signer = NodeId(4);
        assert_eq!(a.verify(&s), Err(VerifyError::BadSignature(NodeId(4))));
    }

    #[test]
    fn unknown_signer_rejected() {
        let a = auth();
        let mut s = a.sign(NodeId(3), 1u64);
        s.signer = NodeId(99);
        assert_eq!(a.verify(&s), Err(VerifyError::UnknownSigner(NodeId(99))));
    }

    #[test]
    fn distinct_payloads_distinct_signatures() {
        let a = auth();
        let s1 = a.sign(NodeId(0), 1u64);
        let s2 = a.sign(NodeId(0), 2u64);
        assert_ne!(s1.signature, s2.signature);
    }

    #[test]
    fn authorities_with_same_seed_agree() {
        let a = Authority::new(7, 4);
        let b = Authority::new(7, 4);
        let s = a.sign(NodeId(1), (NodeId(2), 10u64));
        assert_eq!(b.verify(&s), Ok(()));
    }

    #[test]
    fn authorities_with_different_seeds_disagree() {
        let a = Authority::new(7, 4);
        let b = Authority::new(8, 4);
        let s = a.sign(NodeId(1), 10u64);
        assert!(b.verify(&s).is_err());
    }

    #[test]
    fn digest_composite_types() {
        let v1 = (NodeId(1), vec![1u64, 2, 3]).digest_value();
        let v2 = (NodeId(1), vec![1u64, 2, 4]).digest_value();
        let v3 = (NodeId(2), vec![1u64, 2, 3]).digest_value();
        assert_ne!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn digest_str_length_prefixed() {
        // "ab" + "c" must differ from "a" + "bc".
        let x = ("ab", "c").digest_value();
        let y = ("a", "bc").digest_value();
        assert_ne!(x, y);
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError::UnknownSigner(NodeId(1));
        assert!(format!("{e}").contains("unknown signer"));
        let e = VerifyError::BadSignature(NodeId(1));
        assert!(format!("{e}").contains("bad signature"));
    }
}
