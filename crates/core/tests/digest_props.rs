//! Property tests for the digest-exchange primitives
//! ([`lotus_core::digest`]), on the dependency-free
//! [`proptest_lite`](lotus_core::proptest_lite) harness.
//!
//! Across ~200 generated (bits, hashes, load) configurations each, the
//! suite pins the two guarantees the digest gossip substrate builds on:
//!
//! * **no false negatives** — every inserted id probes positive, at any
//!   width/probe-count/load, so a truthful digest can never cause an
//!   honest peer to skip an update it actually needs (the keystone
//!   delivery-equivalence golden in `lotus-bench` rides on this);
//! * **bounded false positives** — the measured false-positive rate on
//!   fresh keys stays within a small multiple of the fill-ratio
//!   estimate [`BloomDigest::expected_fp_rate`], which is what makes
//!   `digest_fp_rate` a meaningful deniability floor for the
//!   advertise-then-withhold attacker;
//! * the exact [`region_hash`] variant separates distinct masks and
//!   regions (zero false positives by construction).

use lotus_core::digest::{region_hash, BloomDigest};
use lotus_core::proptest_lite::{check, Draw};

/// Draw a digest configuration plus a key load.
fn draw_config(d: &mut Draw) -> (u32, u32, u64, usize) {
    let bits = d.int("bits", 64, 4096) as u32;
    let hashes = d.int("hashes", 1, 8) as u32;
    let base = d.rng("key-base").next_u64() >> 1;
    let load = d.int("load", 1, 300) as usize;
    (bits, hashes, base, load)
}

#[test]
fn inserted_keys_never_false_negative() {
    check("digest::no_false_negatives", 200, |d| {
        let (bits, hashes, base, load) = draw_config(d);
        let mut digest = BloomDigest::new(bits, hashes);
        for i in 0..load as u64 {
            digest.insert(base + i);
        }
        for i in 0..load as u64 {
            if !digest.contains(base + i) {
                return Err(format!(
                    "key {i} of {load} lost in a {bits}-bit/{hashes}-hash digest"
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn false_positive_rate_stays_within_the_fill_estimate() {
    check("digest::fp_rate_bounded", 200, |d| {
        let (bits, hashes, base, load) = draw_config(d);
        let mut digest = BloomDigest::new(bits, hashes);
        for i in 0..load as u64 {
            digest.insert(base + i);
        }
        // Probe keys disjoint from the inserted range by construction.
        let probes = 2000u64;
        let fresh = base + 1_000_000;
        let hits = (0..probes).filter(|j| digest.contains(fresh + j)).count();
        let measured = hits as f64 / probes as f64;
        let expected = digest.expected_fp_rate();
        // Generous envelope: fill^hashes is the per-probe hit chance,
        // so 2000 probes concentrate well inside 2.5x + 2% slack; an
        // overloaded filter (fill -> 1) passes trivially.
        if measured > 2.5 * expected + 0.02 {
            return Err(format!(
                "measured fp {measured} vs expected {expected} \
                 (bits={bits} hashes={hashes} load={load})"
            ));
        }
        Ok(())
    });
}

#[test]
fn digest_is_a_pure_function_of_its_key_set() {
    check("digest::order_free_and_resettable", 200, |d| {
        let (bits, hashes, base, load) = draw_config(d);
        let mut forward = BloomDigest::new(bits, hashes);
        let mut reverse = BloomDigest::new(bits, hashes);
        for i in 0..load as u64 {
            forward.insert(base + i);
        }
        for i in (0..load as u64).rev() {
            reverse.insert(base + i);
        }
        if forward != reverse {
            return Err("insertion order changed the digest".into());
        }
        // clear + reinsert lands on the same digest as fresh.
        reverse.clear();
        for i in 0..load as u64 {
            reverse.insert(base + i);
        }
        if forward != reverse {
            return Err("clear + reinsert diverged from a fresh digest".into());
        }
        Ok(())
    });
}

#[test]
fn region_hash_is_exact_on_generated_masks() {
    check("digest::region_hash_exact", 200, |d| {
        let region = d.int("region", 0, 1 << 20) as u64;
        let mask = d.rng("mask").next_u64();
        let flip = d.int("flip", 0, 63) as u64;
        if region_hash(region, mask) != region_hash(region, mask) {
            return Err("region hash is not deterministic".into());
        }
        if region_hash(region, mask) == region_hash(region, mask ^ (1 << flip)) {
            return Err(format!("mask flip at bit {flip} not separated"));
        }
        if region_hash(region, mask) == region_hash(region + 1, mask) {
            return Err("adjacent regions collide".into());
        }
        Ok(())
    });
}
