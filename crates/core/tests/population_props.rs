//! Property tests for the population layer, on the dependency-free
//! [`proptest_lite`](lotus_core::proptest_lite) harness.
//!
//! Each property runs across ~200 generated churn profiles (1–4 weighted
//! cohorts with arbitrary leave/rejoin rates), population sizes, arrival
//! processes and substrate seeds, and pins the membership invariants the
//! simulators rely on:
//!
//! * protected roles never leave, under any profile or arrival process;
//! * the universe partitions exactly into present / churned-out /
//!   still-pending nodes, every round (alive-count conservation);
//! * departure and return never change identity: the membership history
//!   replays bit-identically per seed, and a returning node is the same
//!   index with the same protected/exempt marks;
//! * the degenerate one-class profile draws exactly the uniform
//!   [`ChurnSpec`] stream (the PR 3 compatibility guarantee);
//! * zero-rate profiles — however they are spelled — never touch the
//!   churn rng fork (the no-op/no-draw guard regression).

use lotus_core::population::{
    ArrivalProcess, ChurnClass, ChurnProfile, ChurnSpec, Population, MAX_CHURN_CLASSES,
};
use lotus_core::proptest_lite::{check, Draw};

/// Fixed names for per-cohort draws (proptest_lite wants `&'static str`).
const WEIGHT: [&str; MAX_CHURN_CLASSES] = ["w0", "w1", "w2", "w3"];
const LEAVE: [&str; MAX_CHURN_CLASSES] = ["leave0", "leave1", "leave2", "leave3"];
const REJOIN: [&str; MAX_CHURN_CLASSES] = ["rejoin0", "rejoin1", "rejoin2", "rejoin3"];

/// Draw a 1–4 cohort profile with arbitrary weights and rates. With
/// `zero_rate`, every cohort's leave rate is forced to zero (the
/// explicitly-configured-but-inert shape the no-draw guard must cover).
fn draw_profile(d: &mut Draw, zero_rate: bool) -> ChurnProfile {
    let classes = d.int("classes", 1, MAX_CHURN_CLASSES as i64) as usize;
    let mut out = Vec::new();
    for c in 0..classes {
        let weight = 0.05 + d.ratio(WEIGHT[c]);
        let leave = if zero_rate { 0.0 } else { d.ratio(LEAVE[c]) };
        out.push(ChurnClass {
            weight,
            spec: ChurnSpec::new(leave, d.ratio(REJOIN[c])),
        });
    }
    ChurnProfile::new(&out).expect("drawn profiles are valid")
}

/// Draw an arrival process sized for a population of `n`.
fn draw_arrival(d: &mut Draw, n: usize) -> ArrivalProcess {
    match d.int("arrival_kind", 0, 2) {
        0 => ArrivalProcess::None,
        1 => ArrivalProcess::Burst {
            round: d.int("wave_round", 0, 40) as u64,
            size: d.int("wave_size", 0, n as i64) as u32,
            period: match d.int("wave_period", 0, 10) {
                0 => None,
                p => Some(p as u64),
            },
        },
        _ => ArrivalProcess::Ramp {
            start: d.int("ramp_start", 0, 40) as u64,
            size: d.int("ramp_size", 0, n as i64) as u32,
            rate: d.int("ramp_rate", 1, 6) as u32,
        },
    }
}

#[test]
fn membership_invariants_hold_under_any_profile() {
    check("membership invariants", 200, |d| {
        let n = d.int("n", 2, 60) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let profile = draw_profile(d, false);
        let arrival = draw_arrival(d, n);
        let protected = d.int("protected", 0, (n / 4) as i64) as usize;
        let mut pop = Population::new(
            n,
            profile,
            netsim::rng::DetRng::seed_from(seed).fork("population"),
        );
        for i in 0..protected {
            pop.protect(i);
        }
        pop.set_arrival(arrival);
        // The holdback keeps at least one node in the system (churn may
        // empty it later — that is the open population being open).
        if pop.present_count() == 0 {
            return Err("set_arrival held back the whole population".to_string());
        }
        let mut ever_arrived: Vec<bool> = (0..n).map(|i| pop.ever_arrived(i)).collect();
        for t in 0..150u64 {
            pop.begin_round(t);
            // Protected roles never leave (and were never held back).
            for i in 0..protected {
                if !pop.is_present(i) {
                    return Err(format!("protected node {i} absent at round {t}"));
                }
            }
            // Alive-count conservation: present/churned-out/pending
            // partition the universe exactly.
            let present = pop.present_count();
            let pending = pop.pending_count();
            let absent = (0..n)
                .filter(|&i| !pop.is_present(i) && pop.ever_arrived(i))
                .count();
            if present + pending + absent != n {
                return Err(format!(
                    "round {t}: {present} present + {pending} pending + {absent} \
                     churned-out != {n}"
                ));
            }
            // Pending nodes are a subset of the absent set.
            for (i, arrived) in ever_arrived.iter_mut().enumerate() {
                if !pop.ever_arrived(i) && pop.is_present(i) {
                    return Err(format!("round {t}: node {i} present before arriving"));
                }
                // Arrival is one-way: pending never comes back.
                if *arrived && !pop.ever_arrived(i) {
                    return Err(format!("round {t}: node {i} un-arrived"));
                }
                *arrived = pop.ever_arrived(i);
            }
            let frac = pop.present_fraction();
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("round {t}: present_fraction {frac} out of range"));
            }
        }
        Ok(())
    });
}

#[test]
fn membership_history_replays_bit_identically() {
    check("replay determinism", 200, |d| {
        let n = d.int("n", 2, 48) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let profile = draw_profile(d, false);
        let arrival = draw_arrival(d, n);
        let trace = |rounds: u64| {
            let mut pop = Population::new(
                n,
                profile,
                netsim::rng::DetRng::seed_from(seed).fork("population"),
            );
            pop.set_arrival(arrival);
            let mut out = Vec::new();
            for t in 0..rounds {
                pop.begin_round(t);
                out.push(pop.present().iter().collect::<Vec<_>>());
            }
            out
        };
        if trace(120) == trace(120) {
            Ok(())
        } else {
            Err("same (profile, arrival, seed) diverged across replays".to_string())
        }
    });
}

#[test]
fn degenerate_one_class_profile_draws_the_uniform_stream() {
    check("one-class == uniform", 200, |d| {
        let n = d.int("n", 2, 48) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let spec = ChurnSpec::new(d.ratio("leave"), d.ratio("rejoin"));
        let history = |profile: ChurnProfile| {
            let mut pop = Population::new(
                n,
                profile,
                netsim::rng::DetRng::seed_from(seed).fork("population"),
            );
            let mut out = Vec::new();
            for t in 0..100 {
                pop.begin_round(t);
                out.push(pop.present().iter().collect::<Vec<_>>());
            }
            (out, pop.rng_snapshot().clone())
        };
        let uniform = history(ChurnProfile::uniform(spec));
        let converted = history(ChurnProfile::from(spec));
        let single = history(ChurnProfile::new(&[ChurnClass { weight: 1.0, spec }]).unwrap());
        if uniform == converted && uniform == single {
            Ok(())
        } else {
            Err(format!(
                "one-class profile diverged from the uniform stream for {spec:?}"
            ))
        }
    });
}

#[test]
fn zero_rate_profiles_never_draw() {
    // The no-op/no-draw guard regression: a profile whose every cohort
    // has a zero leave rate — no matter how many cohorts or how it was
    // spelled — must leave the rng fork untouched, so configuring it
    // cannot perturb anything forked downstream of the membership
    // stream.
    check("zero-rate draws nothing", 200, |d| {
        let n = d.int("n", 1, 48) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let profile = draw_profile(d, true);
        if profile.is_active() {
            return Err(format!("{profile:?} should be inactive"));
        }
        let mut pop = Population::new(
            n,
            profile,
            netsim::rng::DetRng::seed_from(seed).fork("population"),
        );
        let before = pop.rng_snapshot().clone();
        for t in 0..100 {
            pop.begin_round(t);
        }
        if !pop.all_present() {
            return Err("zero-rate churn lost a node".to_string());
        }
        if *pop.rng_snapshot() != before {
            return Err(format!(
                "zero-rate profile {profile:?} advanced the churn stream"
            ));
        }
        Ok(())
    });
}

#[test]
fn arrivals_draw_no_randomness_under_any_process() {
    check("arrivals are randomness-free", 200, |d| {
        let n = d.int("n", 2, 48) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let arrival = draw_arrival(d, n);
        let mut pop = Population::new(
            n,
            ChurnProfile::none(),
            netsim::rng::DetRng::seed_from(seed).fork("population"),
        );
        pop.set_arrival(arrival);
        let before = pop.rng_snapshot().clone();
        for t in 0..150 {
            pop.begin_round(t);
        }
        if *pop.rng_snapshot() != before {
            return Err(format!("arrival {arrival:?} drew randomness"));
        }
        // One-shot bursts and ramps must eventually flush the pool
        // (periodic bursts keep it as a re-admission reservoir).
        match arrival {
            ArrivalProcess::Burst { period: None, .. } | ArrivalProcess::Ramp { .. } => {
                if pop.pending_count() != 0 {
                    return Err(format!(
                        "{arrival:?} left {} nodes stranded outside",
                        pop.pending_count()
                    ));
                }
                if !pop.all_present() {
                    return Err("churn-free arrival run must end all-present".to_string());
                }
            }
            _ => {}
        }
        Ok(())
    });
}

#[test]
fn rejoin_restores_identity() {
    // A node that departs and returns is the same identity: its
    // protected / arrival-exempt marks are unchanged and the membership
    // universe never grows or shrinks.
    check("rejoin restores identity", 200, |d| {
        let n = d.int("n", 4, 48) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        // High rates so departures and returns actually happen.
        let profile = ChurnProfile::uniform(ChurnSpec::new(
            0.2 + 0.6 * d.ratio("leave"),
            0.2 + 0.6 * d.ratio("rejoin"),
        ));
        let mut pop = Population::new(
            n,
            profile,
            netsim::rng::DetRng::seed_from(seed).fork("population"),
        );
        pop.protect(0);
        let mut returned = 0u32;
        let mut was_absent = vec![false; n];
        for t in 0..200 {
            pop.begin_round(t);
            let count = (0..n).filter(|&i| pop.is_present(i)).count();
            if count != pop.present_count() {
                return Err(format!(
                    "round {t}: present() disagrees with present_count()"
                ));
            }
            for (i, absent) in was_absent.iter_mut().enumerate() {
                if pop.is_present(i) {
                    if *absent {
                        returned += 1;
                        if !pop.ever_arrived(i) {
                            return Err(format!("round {t}: returner {i} lost arrival mark"));
                        }
                    }
                    *absent = false;
                } else {
                    if i == 0 {
                        return Err(format!("round {t}: protected node left"));
                    }
                    *absent = true;
                }
            }
        }
        if returned == 0 {
            return Err("rates in [0.2, 0.8]: someone must have come back".to_string());
        }
        Ok(())
    });
}
