//! Property-based tests for the token model and sweep harness.
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature *and* add the `proptest` dev-dependency once the workspace
//! has access to a registry (the default build must stay dependency-free).
#![cfg(feature = "proptest-tests")]

use lotus_core::attack::{
    Attacker, BudgetedAttacker, NoAttack, RotatingSatiation, SatiateRandomFraction,
};
use lotus_core::token::{SatFunction, TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use netsim::rng::DetRng;
use netsim::NodeId;
use proptest::prelude::*;

fn arb_system(n: u32, tokens: usize, altruism: f64, seed: u64) -> TokenSystem {
    let cfg = TokenSystemConfig::builder(Graph::complete(n))
        .tokens(tokens)
        .altruism(altruism)
        .build()
        .expect("valid config");
    TokenSystem::new(cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn holdings_grow_monotonically_under_any_attack(
        seed in any::<u64>(),
        n in 4u32..24,
        tokens in 2usize..24,
        fraction in 0.0f64..1.0,
        altruism in 0.0f64..1.0,
    ) {
        let mut sys = arb_system(n, tokens, altruism, seed);
        let mut attack = SatiateRandomFraction::new(fraction);
        let mut rng = DetRng::seed_from(seed ^ 1);
        let mut prev: Vec<usize> = (0..n).map(|i| sys.holdings(NodeId(i)).len()).collect();
        for _ in 0..15 {
            let targets = attack.targets(&sys.view(), &mut rng);
            for t in targets {
                sys.satiate(t);
            }
            use netsim::round::RoundSim;
            let t = sys.rounds_run();
            sys.round(t);
            for i in 0..n {
                let len = sys.holdings(NodeId(i)).len();
                prop_assert!(len >= prev[i as usize], "holdings shrank at node {i}");
                prop_assert!(len <= tokens);
                prev[i as usize] = len;
            }
        }
    }

    #[test]
    fn coverage_and_satiation_agree(
        seed in any::<u64>(),
        n in 4u32..20,
        tokens in 2usize..16,
    ) {
        let mut sys = arb_system(n, tokens, 0.0, seed);
        let report = sys.run(&mut NoAttack, 30);
        for (i, &cov) in report.coverage.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&cov));
            let holds_all = (cov - 1.0).abs() < 1e-12;
            use lotus_core::satiation::Satiable;
            prop_assert_eq!(
                sys.is_satiated(NodeId(i as u32)),
                holds_all,
                "CollectAll satiation must equal full coverage"
            );
        }
        if let Some(t) = report.all_satiated_at {
            prop_assert!(t <= report.rounds);
            prop_assert!(report.mean_coverage() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn sat_functions_are_pointwise_monotone(
        seed in any::<u64>(),
        n in 4u32..16,
        tokens in 4usize..16,
        k1 in 1usize..16,
        k2 in 1usize..16,
    ) {
        // On any holding set, satisfying AnyK(max) implies AnyK(min), and
        // CollectAll implies every AnyK. (Note: this is a *pointwise*
        // property. Globally, weaker satiation can complete LATER, because
        // early-satiated nodes withdraw service and strand stragglers —
        // the satiation trap.)
        let (k_lo, k_hi) = {
            let a = k1.min(tokens);
            let b = k2.min(tokens);
            (a.min(b).max(1), a.max(b).max(1))
        };
        let mut sys = arb_system(n, tokens, 0.0, seed);
        let _ = sys.run(&mut NoAttack, 10);
        for i in 0..n {
            let h = sys.holdings(NodeId(i));
            if SatFunction::AnyK(k_hi).is_satiated(h) {
                prop_assert!(SatFunction::AnyK(k_lo).is_satiated(h));
            }
            if SatFunction::CollectAll.is_satiated(h) {
                prop_assert!(SatFunction::AnyK(k_lo).is_satiated(h));
                prop_assert_eq!(SatFunction::AnyK(k_lo).deficit(h), 0);
            }
            // Deficits are consistent with satiation.
            for f in [SatFunction::CollectAll, SatFunction::AnyK(k_lo), SatFunction::AnyK(k_hi)] {
                prop_assert_eq!(f.is_satiated(h), f.deficit(h) == 0);
            }
        }
    }

    #[test]
    fn budgets_are_respected(
        seed in any::<u64>(),
        budget in 0usize..6,
        fraction in 0.0f64..1.0,
    ) {
        let sys = arb_system(12, 6, 0.0, seed);
        let mut attack = BudgetedAttacker::new(SatiateRandomFraction::new(fraction), budget);
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..5 {
            let t = attack.targets(&sys.view(), &mut rng);
            prop_assert!(t.len() <= budget);
        }
        prop_assert!(attack.spent() <= (budget * 5) as u64);
    }

    #[test]
    fn rotating_satiation_targets_are_valid(
        seed in any::<u64>(),
        fraction in 0.0f64..1.0,
        period in 1u64..5,
    ) {
        let mut sys = arb_system(15, 4, 0.0, seed);
        let mut attack = RotatingSatiation::new(fraction, period);
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..8 {
            let targets = attack.targets(&sys.view(), &mut rng);
            let set: std::collections::HashSet<_> = targets.iter().collect();
            prop_assert_eq!(set.len(), targets.len(), "no duplicate targets");
            prop_assert!(targets.iter().all(|t| t.0 < 15));
            use netsim::round::RoundSim;
            let t = sys.rounds_run();
            sys.round(t);
        }
    }

    #[test]
    fn served_counters_only_grow(seed in any::<u64>(), altruism in 0.0f64..1.0) {
        let mut sys = arb_system(10, 8, altruism, seed);
        let mut prev = [0u64; 10];
        for _ in 0..10 {
            use netsim::round::RoundSim;
            let t = sys.rounds_run();
            sys.round(t);
            for i in 0..10u32 {
                let s = sys.served(NodeId(i));
                prop_assert!(s >= prev[i as usize]);
                prev[i as usize] = s;
            }
        }
    }
}
