//! Property tests for the fault-injection layer, on the dependency-free
//! [`proptest_lite`](lotus_core::proptest_lite) harness.
//!
//! Each property runs across ~200 generated fault plans (loss/duplicate/
//! delay rates, crash/recover pairs, partition epochs) and seeds, and
//! pins the invariants the substrate wiring relies on:
//!
//! * zero-rate plans — however they are spelled — draw nothing: every
//!   fate delivers, every link is up, the counters stay zero and the
//!   three forked rng streams never advance (the report-invisibility
//!   guarantee behind the byte-identical goldens);
//! * crash bookkeeping is consistent every round: `just_crashed` is a
//!   subset of the down set, exempt nodes never go down, and the crash
//!   counter counts exactly the down-transitions;
//! * the partition blocks exactly the cross-cell pairs while its epoch
//!   is open, and nothing before or after — the two cells cover the
//!   universe disjointly;
//! * the whole fault history replays bit-identically per (plan, seed).

use lotus_core::faults::{Fate, FaultPlan, FaultState};
use lotus_core::proptest_lite::{check, Draw};
use netsim::rng::DetRng;

/// Draw an active fault plan with arbitrary component mix.
fn draw_plan(d: &mut Draw) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if d.int("with_messages", 0, 1) == 1 {
        plan.loss = d.ratio("loss") * 0.5;
        plan.duplicate = d.ratio("dup") * 0.3;
        plan.delay = d.ratio("delay") * 0.3;
    }
    if d.int("with_crash", 0, 1) == 1 {
        plan.crash = 0.01 + d.ratio("crash") * 0.2;
        plan.recover = 0.05 + d.ratio("recover") * 0.5;
    }
    if d.int("with_partition", 0, 1) == 1 {
        plan.partition_start = d.int("p_start", 0, 15) as u64;
        plan.partition_len = d.int("p_len", 1, 20) as u64;
        plan.partition_frac = d.ratio("p_frac");
    }
    plan
}

/// Run a fixed driving script against a fresh state: every round, every
/// ordered pair gets a link check and every passing pair a fate draw.
/// Returns the full observable history.
fn drive(n: usize, rounds: u64, plan: FaultPlan, seed: u64) -> (Vec<bool>, Vec<Fate>, Vec<usize>) {
    let parent = DetRng::seed_from(seed);
    let mut st = FaultState::new(n, plan, &parent);
    let mut links = Vec::new();
    let mut fates = Vec::new();
    let mut downs = Vec::new();
    for t in 0..rounds {
        st.begin_round(t);
        downs.push(st.down_count());
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let ok = st.link_ok(a, b);
                links.push(ok);
                if ok {
                    fates.push(st.fate(a, b));
                }
            }
        }
    }
    (links, fates, downs)
}

#[test]
fn zero_rate_plans_draw_nothing_and_change_nothing() {
    check("zero-rate plans are invisible", 200, |d| {
        // Spell the inert plan every way the grammar allows: a bare
        // none(), explicit zero rates, or a zero-fraction partition.
        let plan = match d.int("spelling", 0, 2) {
            0 => FaultPlan::none(),
            1 => FaultPlan::parse("loss:0/dup:0/delay:0").expect("zero rates parse"),
            _ => {
                let mut p = FaultPlan::none();
                p.partition_start = d.int("p_start", 0, 10) as u64;
                p.partition_len = d.int("p_len", 1, 10) as u64;
                // frac 0 means has_partition() is false: the epoch never
                // opens and the partition stream is never consulted.
                p.partition_frac = 0.0;
                p
            }
        };
        let n = d.int("n", 2, 40) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let parent = DetRng::seed_from(seed);
        let mut st = FaultState::new(n, plan, &parent);
        let fresh_msg = parent.fork("faults");
        let fresh_crash = parent.fork("crash");
        let fresh_partition = parent.fork("partition");
        for t in 0..30 {
            st.begin_round(t);
            for a in 0..n {
                if st.is_down(a) {
                    return Err(format!("node {a} down with no crashes configured"));
                }
                let b = (a + 1) % n;
                if !st.link_ok(a, b) {
                    return Err(format!("link ({a},{b}) blocked with no partition at t={t}"));
                }
                if st.fate(a, b) != Fate::Deliver {
                    return Err(format!("non-deliver fate with no message faults at t={t}"));
                }
            }
        }
        let c = st.counters();
        if (
            c.dropped,
            c.duplicated,
            c.delayed,
            c.crashes,
            c.partition_blocked,
        ) != (0, 0, 0, 0, 0)
        {
            return Err(format!("counters moved on an inert plan: {c:?}"));
        }
        if st.msg_rng_snapshot() != &fresh_msg {
            return Err("msg stream advanced on an inert plan".into());
        }
        if st.crash_rng_snapshot() != &fresh_crash {
            return Err("crash stream advanced on an inert plan".into());
        }
        if st.partition_rng_snapshot() != &fresh_partition {
            return Err("partition stream advanced on an inert plan".into());
        }
        Ok(())
    });
}

#[test]
fn crash_bookkeeping_is_consistent_every_round() {
    check("crash bookkeeping", 200, |d| {
        let n = d.int("n", 2, 40) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let mut plan = FaultPlan::none();
        plan.crash = 0.02 + d.ratio("crash") * 0.3;
        plan.recover = d.ratio("recover") * 0.6;
        let parent = DetRng::seed_from(seed);
        let mut st = FaultState::new(n, plan, &parent);
        let exempt = d.int("exempt", 0, (n / 3) as i64) as usize;
        for i in 0..exempt {
            st.exempt(i);
        }
        let mut transitions = 0u64;
        let mut was_down = vec![false; n];
        for t in 0..60 {
            st.begin_round(t);
            for (i, prev) in was_down.iter_mut().enumerate() {
                if st.just_crashed().contains(i) {
                    if !st.is_down(i) {
                        return Err(format!("t={t}: just_crashed node {i} is not down"));
                    }
                    if *prev {
                        return Err(format!("t={t}: already-down node {i} crashed again"));
                    }
                    transitions += 1;
                }
                if i < exempt && st.is_down(i) {
                    return Err(format!("t={t}: exempt node {i} went down"));
                }
                *prev = st.is_down(i);
            }
            let down = was_down.iter().filter(|&&x| x).count();
            if st.down_count() != down {
                return Err(format!(
                    "t={t}: down_count {} != scanned {down}",
                    st.down_count()
                ));
            }
        }
        if st.counters().crashes != transitions {
            return Err(format!(
                "crash counter {} != observed transitions {transitions}",
                st.counters().crashes
            ));
        }
        Ok(())
    });
}

#[test]
fn partition_blocks_exactly_cross_cell_pairs_inside_the_epoch() {
    check("partition epoch", 200, |d| {
        let n = d.int("n", 2, 30) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let mut plan = FaultPlan::none();
        plan.partition_start = d.int("p_start", 0, 10) as u64;
        plan.partition_len = d.int("p_len", 1, 15) as u64;
        plan.partition_frac = d.ratio("p_frac");
        let parent = DetRng::seed_from(seed);
        let mut st = FaultState::new(n, plan, &parent);
        let until = plan.partition_start + plan.partition_len + 5;
        for t in 0..until {
            st.begin_round(t);
            let open = t >= plan.partition_start && t < plan.partition_start + plan.partition_len;
            if st.is_partitioned() != open {
                return Err(format!(
                    "t={t}: is_partitioned {} but epoch open = {open}",
                    st.is_partitioned()
                ));
            }
            // The minority cell and its complement cover the universe
            // disjointly by construction; link_ok must block exactly the
            // pairs that straddle them while the epoch is open.
            let cell: Vec<bool> = (0..n).map(|i| st.cell().contains(i)).collect();
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let expect = !open || cell[a] == cell[b];
                    if st.link_ok(a, b) != expect {
                        return Err(format!(
                            "t={t}: pair ({a},{b}) link {} expected {expect}",
                            !expect
                        ));
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn fault_history_replays_bit_identically_per_plan_and_seed() {
    check("replay determinism", 200, |d| {
        let plan = draw_plan(d);
        let n = d.int("n", 2, 20) as usize;
        let seed = d.int("seed", 1, 1 << 20) as u64;
        let rounds = d.int("rounds", 1, 40) as u64;
        let first = drive(n, rounds, plan, seed);
        let second = drive(n, rounds, plan, seed);
        if first != second {
            return Err("same plan + seed diverged on replay".into());
        }
        Ok(())
    });
}
