//! A dependency-free mini property-test harness.
//!
//! The workspace builds with zero external dependencies by design, which
//! left the `proptest`-gated property suites permanently dark (the
//! standing ROADMAP item). This module supplies the two things those
//! suites actually needed — a *seeded case generator* and a *shrinker* —
//! in ~200 lines over the workspace's own [`DetRng`]:
//!
//! * [`check`] runs a property over `cases` deterministically generated
//!   inputs. The property draws its inputs through [`Draw`]
//!   ([`Draw::int`] / [`Draw::ratio`]) and returns `Err(reason)` on
//!   violation.
//! * On failure the harness *shrinks by halving*: each recorded scalar is
//!   repeatedly halved toward its lower bound (integers toward `lo`,
//!   ratios toward `0.0`) while the property keeps failing, one position
//!   at a time, until no single shrink reproduces the failure (integers
//!   additionally try their predecessor, so the minimum is exact). The
//!   panic message names the minimal counterexample's draws, so the
//!   failing case can be pasted into a focused regression test.
//!
//! Determinism: case `k` of property `name` always draws the same values
//! (the stream is keyed on both), so failures replay across machines and
//! thread counts with no seed bookkeeping.
//!
//! ```
//! use lotus_core::proptest_lite::check;
//!
//! check("halving keeps order", 50, |d| {
//!     let n = d.int("n", 0, 1_000);
//!     if n / 2 <= n {
//!         Ok(())
//!     } else {
//!         Err(format!("{n}/2 > {n}"))
//!     }
//! });
//! ```

use netsim::rng::{mix_label, DetRng};

/// One recorded draw: the value plus the lower bound shrinking may not
/// cross.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Scalar {
    /// An integer drawn from `[lo, hi]`; shrinks by halving toward `lo`.
    Int {
        /// Drawn (or overridden) value.
        value: i64,
        /// Inclusive lower bound.
        lo: i64,
    },
    /// A ratio drawn from `[0, 1]`; shrinks by halving toward `0.0`.
    Ratio {
        /// Drawn (or overridden) value.
        value: f64,
    },
}

impl Scalar {
    /// Shrink candidates, most aggressive first: the bound itself, the
    /// halfway point, and (for integers) the predecessor — so halving
    /// converges fast and the final linear steps land *exactly* on the
    /// smallest failing value.
    fn shrunk(self) -> Vec<Scalar> {
        let mut out = Vec::new();
        match self {
            Scalar::Int { value, lo } => {
                for v in [lo, lo + (value - lo) / 2, value - 1] {
                    if v < value
                        && !out
                            .iter()
                            .any(|s| matches!(s, Scalar::Int { value, .. } if *value == v))
                    {
                        out.push(Scalar::Int { value: v, lo });
                    }
                }
            }
            Scalar::Ratio { value } => {
                if value > 0.0 {
                    out.push(Scalar::Ratio { value: 0.0 });
                    if value >= 1e-6 {
                        out.push(Scalar::Ratio { value: value / 2.0 });
                    }
                }
            }
        }
        out
    }

    fn describe(self) -> String {
        match self {
            Scalar::Int { value, .. } => value.to_string(),
            Scalar::Ratio { value } => format!("{value}"),
        }
    }
}

/// The input source a property draws from. Every draw is recorded (for
/// shrinking) and named (for the failure report).
pub struct Draw {
    rng: DetRng,
    /// Values forced by the shrinker, by draw position. Draws beyond the
    /// overridden prefix fall back to the rng stream, which is consumed
    /// identically either way so later draws stay aligned.
    overrides: Vec<Scalar>,
    drawn: Vec<(&'static str, Scalar)>,
}

impl Draw {
    fn new(property: &str, case: u64, overrides: Vec<Scalar>) -> Self {
        Draw {
            rng: DetRng::seed_from(mix_label(property)).fork_idx("case", case),
            overrides,
            drawn: Vec::new(),
        }
    }

    /// An integer in `[lo, hi]` (inclusive). Shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int(&mut self, name: &'static str, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "draw {name}: empty range [{lo}, {hi}]");
        // Always consume the stream so overridden replays keep later
        // draws aligned with the original run.
        let span = (hi - lo) as u64 + 1;
        let fresh = lo + self.rng.range(span) as i64;
        let value = match self.overrides.get(self.drawn.len()) {
            Some(&Scalar::Int { value, .. }) => value.clamp(lo, hi),
            _ => fresh,
        };
        self.drawn.push((name, Scalar::Int { value, lo }));
        value
    }

    /// A ratio in `[0, 1]`. Shrinks toward `0.0`.
    pub fn ratio(&mut self, name: &'static str) -> f64 {
        let fresh = self.rng.f64();
        let value = match self.overrides.get(self.drawn.len()) {
            Some(&Scalar::Ratio { value }) => value.clamp(0.0, 1.0),
            _ => fresh,
        };
        self.drawn.push((name, Scalar::Ratio { value }));
        value
    }

    /// A deterministic rng fork for the property's own use (seeding the
    /// system under test). Not recorded: it is derived state, not a
    /// shrinkable parameter.
    pub fn rng(&self, label: &str) -> DetRng {
        self.rng.fork(label)
    }
}

fn describe(drawn: &[(&'static str, Scalar)]) -> String {
    let parts: Vec<String> = drawn
        .iter()
        .map(|(name, s)| format!("{name}={}", s.describe()))
        .collect();
    parts.join(", ")
}

/// Run `prop` against `cases` generated inputs; shrink and panic on the
/// first failure.
///
/// The property draws inputs through the provided [`Draw`] and returns
/// `Err(reason)` to signal a violation. Failures are shrunk by halving
/// (see the module docs) before panicking, and the panic message carries
/// the minimal case's named draws.
///
/// # Panics
///
/// Panics — with the shrunk counterexample — when the property fails.
pub fn check<F>(property: &str, cases: u64, mut prop: F)
where
    F: FnMut(&mut Draw) -> Result<(), String>,
{
    for case in 0..cases {
        let mut d = Draw::new(property, case, Vec::new());
        if let Err(reason) = prop(&mut d) {
            let original = describe(&d.drawn);
            let (drawn, reason) = shrink(property, case, d.drawn, reason, &mut prop);
            panic!(
                "property {property:?} failed on case {case}/{cases}\n  \
                 reason:   {reason}\n  \
                 minimal:  {}\n  \
                 original: {original}",
                describe(&drawn),
            );
        }
    }
}

/// Shrink a failing draw vector by halving one position at a time,
/// restarting the scan after every accepted shrink, until no single
/// halving still fails (or a generous step budget runs out).
fn shrink<F>(
    property: &str,
    case: u64,
    mut drawn: Vec<(&'static str, Scalar)>,
    mut reason: String,
    prop: &mut F,
) -> (Vec<(&'static str, Scalar)>, String)
where
    F: FnMut(&mut Draw) -> Result<(), String>,
{
    let mut budget = 2_000u32;
    'scan: while budget > 0 {
        for pos in 0..drawn.len() {
            for candidate in drawn[pos].1.shrunk() {
                if budget == 0 {
                    break 'scan;
                }
                budget -= 1;
                let mut overrides: Vec<Scalar> = drawn.iter().map(|&(_, s)| s).collect();
                overrides[pos] = candidate;
                let mut d = Draw::new(property, case, overrides);
                if let Err(new_reason) = prop(&mut d) {
                    // Still failing with the smaller value: keep it. The
                    // replay's own record wins (the draw structure may
                    // have changed shape under the new value).
                    drawn = d.drawn;
                    reason = new_reason;
                    continue 'scan;
                }
            }
        }
        break; // full scan with no accepted shrink: minimal
    }
    (drawn, reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_draws_in_range() {
        check("ranges respected", 300, |d| {
            let n = d.int("n", 3, 17);
            let r = d.ratio("r");
            if (3..=17).contains(&n) && (0.0..=1.0).contains(&r) {
                Ok(())
            } else {
                Err(format!("out of range: n={n} r={r}"))
            }
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            check("determinism probe", 20, |d| {
                seen.push((d.int("a", 0, 1_000), d.ratio("b")));
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect(), "same property name, same cases");
    }

    #[test]
    fn failure_shrinks_to_the_boundary() {
        // Fails whenever n >= 10: the minimal failing value halves down
        // to exactly 10.
        let caught = std::panic::catch_unwind(|| {
            check("shrinks to bound", 200, |d| {
                let n = d.int("n", 0, 1_000);
                if n >= 10 {
                    Err(format!("n={n} crossed 10"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = match caught {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("string panic"),
        };
        assert!(
            msg.contains("minimal:  n=10"),
            "halving should stop exactly at the boundary, got:\n{msg}"
        );
    }

    #[test]
    fn ratio_failures_shrink_toward_zero() {
        let caught = std::panic::catch_unwind(|| {
            check("ratio shrink", 50, |d| {
                let r = d.ratio("r");
                if r > 0.25 {
                    Err(format!("r={r} > 0.25"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = match caught {
            Ok(()) => panic!("property should have failed"),
            Err(e) => *e.downcast::<String>().expect("string panic"),
        };
        // Halving from the failing draw lands in (0.25, 0.5].
        let min: f64 = msg
            .split("minimal:  r=")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("minimal ratio in message");
        assert!(
            min > 0.25 && min <= 0.5,
            "one more halving would pass: {min}"
        );
    }

    #[test]
    fn derived_rng_is_stable_per_case() {
        check("derived rng", 5, |d| {
            let mut a = d.rng("sim");
            let mut b = d.rng("sim");
            if a.next_u64() == b.next_u64() {
                Ok(())
            } else {
                Err("same label, same stream".to_string())
            }
        });
    }
}
