//! The satiation framework and an executable Observation 3.1.
//!
//! The paper's central definition: a protocol is *satiation-compatible* if
//! nodes in a satiated state do not provide service. Its central (informal)
//! theorem — Observation 3.1 — says that in such a system, an attacker that
//! can provide tokens *sufficiently rapidly* prevents a node from ever
//! providing service. Here both become code: [`Satiable`] is the interface
//! every simulator in the workspace implements, and [`observation_3_1`]
//! verifies the claim mechanically against any [`Feedable`] system.

use netsim::{NodeId, Round};

/// A system whose nodes can be observed for satiation and service.
///
/// Implemented by the token system, the BAR Gossip simulator, the scrip
/// economy and the BitTorrent swarm — the lotus-eater attack applies to
/// anything with this shape.
pub trait Satiable {
    /// Number of nodes in the system.
    fn node_count(&self) -> u32;

    /// Whether `node` currently has all of its desires met.
    fn is_satiated(&self, node: NodeId) -> bool;

    /// Cumulative units of service `node` has provided to other nodes.
    fn service_provided(&self, node: NodeId) -> u64;

    /// Fraction of nodes currently satiated. Provided for convenience.
    fn satiated_fraction(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        let sat = NodeId::all(n).filter(|&v| self.is_satiated(v)).count();
        sat as f64 / f64::from(n)
    }
}

/// A [`Satiable`] system that an attacker can feed and step — the minimal
/// interface needed to state Observation 3.1 operationally.
pub trait Feedable: Satiable {
    /// Give `node` everything it could want, instantly ("sufficiently
    /// rapidly" taken to its limit, as the paper's proof sketch does).
    fn feed_fully(&mut self, node: NodeId);

    /// Advance the system one round.
    fn step(&mut self);
}

impl Feedable for crate::token::TokenSystem {
    fn feed_fully(&mut self, node: NodeId) {
        self.satiate(node);
    }

    fn step(&mut self) {
        use netsim::round::RoundSim;
        let t = self.rounds_run();
        self.round(t);
    }
}

/// Outcome of running the Observation 3.1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation31Report {
    /// Rounds the experiment ran.
    pub rounds: Round,
    /// Whether the target was satiated at the start of every round.
    pub always_satiated: bool,
    /// Service the target provided *during* the experiment.
    pub service_during: u64,
    /// The observation holds: satiation was maintained and no service was
    /// provided.
    pub holds: bool,
}

/// Execute Observation 3.1: feed `target` fully at the start of every
/// round for `rounds` rounds and check that it never provides service.
///
/// For a satiation-compatible system this must return `holds == true`; a
/// system with altruism (`a > 0` in the token model, seeds in BitTorrent,
/// obedient unbalanced exchangers in BAR Gossip) is *not*
/// satiation-compatible and may legitimately fail the check — that failure
/// is exactly the defense the paper advocates.
///
/// ```
/// use lotus_core::satiation::observation_3_1;
/// use lotus_core::token::{TokenSystem, TokenSystemConfig};
/// use netsim::graph::Graph;
/// use netsim::NodeId;
///
/// let cfg = TokenSystemConfig::builder(Graph::complete(10)).tokens(6).build()?;
/// let mut sys = TokenSystem::new(cfg, 1);
/// let report = observation_3_1(&mut sys, NodeId(4), 30);
/// assert!(report.holds, "satiation-compatible => attack silences the node");
/// # Ok::<(), lotus_core::token::ConfigError>(())
/// ```
pub fn observation_3_1<S: Feedable>(
    sys: &mut S,
    target: NodeId,
    rounds: Round,
) -> Observation31Report {
    let service_before = sys.service_provided(target);
    let mut always_satiated = true;
    for _ in 0..rounds {
        sys.feed_fully(target);
        if !sys.is_satiated(target) {
            always_satiated = false;
        }
        sys.step();
    }
    let service_during = sys.service_provided(target) - service_before;
    Observation31Report {
        rounds,
        always_satiated,
        service_during,
        holds: always_satiated && service_during == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Allocation, TokenSystem, TokenSystemConfig};
    use netsim::graph::Graph;

    fn system(altruism: f64, seed: u64) -> TokenSystem {
        let cfg = TokenSystemConfig::builder(Graph::complete(12))
            .tokens(8)
            .allocation(Allocation::UniformCopies { copies: 2 })
            .altruism(altruism)
            .build()
            .unwrap();
        TokenSystem::new(cfg, seed)
    }

    #[test]
    fn observation_holds_for_satiation_compatible_system() {
        let mut sys = system(0.0, 3);
        let report = observation_3_1(&mut sys, NodeId(5), 40);
        assert!(report.always_satiated);
        assert_eq!(report.service_during, 0);
        assert!(report.holds);
    }

    #[test]
    fn observation_fails_with_full_altruism() {
        // With a = 1 the satiated node responds to every request: the
        // system is not satiation-compatible and the node serves.
        let mut sys = system(1.0, 3);
        let report = observation_3_1(&mut sys, NodeId(5), 40);
        assert!(report.always_satiated, "feeding keeps it satiated");
        assert!(report.service_during > 0, "altruistic node still serves");
        assert!(!report.holds);
    }

    #[test]
    fn satiated_fraction_default_impl() {
        let mut sys = system(0.0, 1);
        assert!(sys.satiated_fraction() < 0.2);
        for v in NodeId::all(12) {
            sys.feed_fully(v);
        }
        assert!((sys.satiated_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_is_copy_and_debuggable() {
        let r = Observation31Report {
            rounds: 1,
            always_satiated: true,
            service_during: 0,
            holds: true,
        };
        let r2 = r;
        assert_eq!(r, r2);
        assert!(!format!("{r:?}").is_empty());
    }
}
