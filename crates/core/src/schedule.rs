//! Attack schedules: *when* the lotus-eater strikes, as a first-class,
//! cross-substrate dimension.
//!
//! The lotus-eater attack is fundamentally about timing: attackers behave
//! well, then abruptly stop participating, and may oscillate or re-defect
//! to keep the system off balance (§2: "By changing who is satiated over
//! time, the attacker could even make the service intermittently unusable
//! for all nodes"). Every substrate used to hard-code its own onset and
//! rotation logic; this module factors the timing dimension out:
//!
//! * [`Trigger`] — when the attack turns on: immediately ([`Trigger::Always`]),
//!   at a fixed round ([`Trigger::AtRound`]), inside a window
//!   ([`Trigger::Window`]), oscillating ([`Trigger::Periodic`]), or when an
//!   observed [`ScenarioReport`](crate::scenario::ScenarioReport) metric
//!   crosses a threshold ([`Trigger::MetricThreshold`] — the adaptive
//!   "strike when the system looks healthy" attacker);
//! * [`AttackSchedule`] — a trigger plus an optional target-rotation
//!   period, `Copy`, parseable from the `lotus-bench --schedule` grammar;
//! * [`ScheduleState`] — the deterministic per-run stepper every sim
//!   embeds; one `is_active` call per round decides the phase
//!   (dormant/cooperate vs defect);
//! * [`rotating_window`] — the shared rotation arithmetic that used to be
//!   copied into `RotatingSatiation` and the BAR Gossip simulator.
//!
//! # Hot-loop allocation invariants
//!
//! [`ScheduleState::is_active`] and [`rotating_window`] never allocate and
//! never draw randomness: the schedule is a pure function of the round
//! index, the latch bit and (for metric triggers, only while unlatched)
//! one observed metric the caller computes from its own counters. Sims
//! must keep their metric observation allocation-free too — every
//! substrate derives the canonical metrics from running counters, not
//! from a full report. The default [`AttackSchedule::always`] schedule is
//! observation-free and reproduces pre-schedule behaviour bit-identically
//! per seed (the golden tests in `crates/bench/tests/schedule_golden.rs`
//! are the guardrail).

use netsim::Round;

/// The canonical [`ScenarioReport`](crate::scenario::ScenarioReport)
/// metrics a [`Trigger::MetricThreshold`] may observe.
///
/// Restricting triggers to the canonical vocabulary keeps
/// [`AttackSchedule`] `Copy` (no metric-name strings) and makes the same
/// schedule meaningful against every substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKey {
    /// Service delivered to the honest population (`overall_delivery`).
    OverallDelivery,
    /// Service enjoyed by the attacker's targets (`targeted_service`).
    TargetedService,
    /// The fraction of the population currently present
    /// (`present_fraction`, from
    /// [`Population::present_fraction`](crate::population::Population::present_fraction)).
    /// Lets a schedule key on membership dynamics — e.g. `presence-above`
    /// strikes the instant a flash crowd lands, `presence-below` waits
    /// for churn to thin the honest pool. Unlike the delivery metrics
    /// this is live membership state, not a report metric.
    PresentFraction,
    /// The fraction of honest nodes a cut-off defense has wrongly cut so
    /// far (`false_cut_rate`). Only substrates running such a defense
    /// can answer it (from their cut counters, allocation-free); others
    /// report no observation. Lets schedules and defense-side bandits
    /// key on collateral damage — e.g. `falsecut-above` backs a defense
    /// off once it starts cutting everyone.
    FalseCutRate,
}

impl MetricKey {
    /// The metric's name in the common report vocabulary (for
    /// [`MetricKey::PresentFraction`], the observation's own name — the
    /// value is live membership state, not a report metric).
    pub fn name(self) -> &'static str {
        match self {
            MetricKey::OverallDelivery => "overall_delivery",
            MetricKey::TargetedService => "targeted_service",
            MetricKey::PresentFraction => "present_fraction",
            MetricKey::FalseCutRate => "false_cut_rate",
        }
    }
}

/// When an attack is *on*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Active from round 0 (the default; pre-schedule behaviour).
    Always,
    /// Dormant until `round`, active from then on.
    AtRound(Round),
    /// Active only for rounds in `[from, until)`.
    Window {
        /// First active round.
        from: Round,
        /// First round after the attack stops.
        until: Round,
    },
    /// Oscillating: of every `period` rounds, the first `active_rounds`
    /// are on, the rest off — the re-defecting lotus-eater.
    Periodic {
        /// Cycle length in rounds (must be positive).
        period: Round,
        /// Active rounds at the start of each cycle.
        active_rounds: Round,
    },
    /// Dormant until the observed metric crosses a threshold, then active
    /// forever (the trigger latches). `above == true` fires when the
    /// metric is `>= value` — the patient attacker that waits for the
    /// system to look healthy before defecting.
    MetricThreshold {
        /// Which canonical metric to observe.
        metric: MetricKey,
        /// Threshold value.
        value: f64,
        /// Fire on `metric >= value` (else on `metric <= value`).
        above: bool,
    },
}

/// A complete attack timing specification: trigger plus optional target
/// rotation, plus — since the adaptive-attacker layer — an optional
/// closed-loop bandit policy that overrides the open-loop trigger.
///
/// ```
/// use lotus_core::schedule::{AttackSchedule, ScheduleState};
///
/// // On for 5 rounds of every 10, starting dormant-free at round 0.
/// let sched = AttackSchedule::oscillating(10, 5);
/// let mut state = ScheduleState::new(sched);
/// assert!(state.is_active(0, None));
/// assert!(state.is_active(4, None));
/// assert!(!state.is_active(5, None));
/// assert!(state.is_active(10, None));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSchedule {
    /// When the attack is on (ignored while `adaptive` is set: the
    /// bandit's arm owns the activity switch then).
    pub trigger: Trigger,
    /// Rotate the target set every this many rounds while attacking
    /// (`None` keeps the set fixed). The rotation phase at round `t` is
    /// `t / period`; [`rotating_window`] turns a phase into a target
    /// slice. Under an adaptive policy the period equals the policy's
    /// phase length and the phase is the policy's sliding-arm counter.
    pub rotation: Option<Round>,
    /// Closed-loop arm selection
    /// ([`AdaptiveSpec`](crate::adaptive::AdaptiveSpec)): when set, a
    /// bandit chooses the cooperate/defect/rotate behaviour each phase
    /// from observed damage and the open-loop `trigger` is ignored.
    pub adaptive: Option<crate::adaptive::AdaptiveSpec>,
}

impl Default for AttackSchedule {
    fn default() -> Self {
        AttackSchedule::always()
    }
}

impl AttackSchedule {
    /// The default schedule: attack from round 0, fixed targets. Runs
    /// under this schedule are bit-identical to pre-schedule behaviour.
    pub fn always() -> Self {
        AttackSchedule {
            trigger: Trigger::Always,
            rotation: None,
            adaptive: None,
        }
    }

    /// Dormant until `round`, then active forever.
    pub fn at(round: Round) -> Self {
        AttackSchedule {
            trigger: Trigger::AtRound(round),
            rotation: None,
            adaptive: None,
        }
    }

    /// Active only during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn window(from: Round, until: Round) -> Self {
        assert!(until > from, "schedule window must be non-empty");
        AttackSchedule {
            trigger: Trigger::Window { from, until },
            rotation: None,
            adaptive: None,
        }
    }

    /// Oscillating: on for the first `active_rounds` of every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `active_rounds` is not in `1..=period`.
    pub fn oscillating(period: Round, active_rounds: Round) -> Self {
        assert!(period > 0, "oscillation period must be positive");
        assert!(
            active_rounds > 0 && active_rounds <= period,
            "active rounds must be in 1..=period"
        );
        AttackSchedule {
            trigger: Trigger::Periodic {
                period,
                active_rounds,
            },
            rotation: None,
            adaptive: None,
        }
    }

    /// Dormant until `metric >= value` is observed, then active forever.
    pub fn when_above(metric: MetricKey, value: f64) -> Self {
        AttackSchedule {
            trigger: Trigger::MetricThreshold {
                metric,
                value,
                above: true,
            },
            rotation: None,
            adaptive: None,
        }
    }

    /// Dormant until `metric <= value` is observed, then active forever.
    pub fn when_below(metric: MetricKey, value: f64) -> Self {
        AttackSchedule {
            trigger: Trigger::MetricThreshold {
                metric,
                value,
                above: false,
            },
            rotation: None,
            adaptive: None,
        }
    }

    /// Rotate the target set every `period` rounds (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_rotation(mut self, period: Round) -> Self {
        assert!(period > 0, "rotation period must be positive");
        self.rotation = Some(period);
        self
    }

    /// Re-plan the attack each phase with a bandit policy (builder
    /// style): the open-loop trigger is superseded, and — when the
    /// policy can play a window-sliding arm — the rotation period
    /// becomes the policy's phase length so substrates re-aim their
    /// target window exactly at phase boundaries, through the same
    /// rotation switch static schedules use.
    pub fn with_adaptive(mut self, spec: crate::adaptive::AdaptiveSpec) -> Self {
        self.adaptive = Some(spec);
        self.rotation = if spec.can_rotate() {
            Some(spec.phase_len)
        } else {
            None
        };
        self
    }

    /// Whether this is the observation-free default.
    pub fn is_always(&self) -> bool {
        self.trigger == Trigger::Always && self.adaptive.is_none()
    }

    /// Parse the `lotus-bench --schedule` grammar:
    ///
    /// ```text
    /// always                     active from round 0 (default)
    /// at:<round>                 dormant until <round>
    /// window:<from>:<until>      active during [from, until)
    /// periodic:<period>:<active> on for <active> of every <period> rounds
    /// delivery-above:<x>         latch on once overall_delivery >= x
    /// delivery-below:<x>         latch on once overall_delivery <= x
    /// targeted-above:<x>         latch on once targeted_service >= x
    /// targeted-below:<x>         latch on once targeted_service <= x
    /// presence-above:<x>         latch on once present_fraction >= x
    ///                            (strike when the flash crowd lands)
    /// presence-below:<x>         latch on once present_fraction <= x
    ///                            (strike when churn thins the pool)
    /// falsecut-above:<x>         latch on once false_cut_rate >= x
    ///                            (react once the defense cuts everyone)
    /// falsecut-below:<x>         latch on once false_cut_rate <= x
    /// ```
    ///
    /// Rotation stays a separate per-substrate knob (`rotation_period` /
    /// `period`) so existing presets keep working.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(spec: &str) -> Result<AttackSchedule, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let mut num = |what: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("schedule {spec:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("schedule {spec:?}: {what} is not an integer"))
        };
        let sched = match head {
            "always" => AttackSchedule::always(),
            "at" => AttackSchedule::at(num("round")?),
            "window" => {
                let from = num("start round")?;
                let until = num("end round")?;
                if until <= from {
                    return Err(format!("schedule {spec:?}: empty window"));
                }
                AttackSchedule::window(from, until)
            }
            "periodic" => {
                let period = num("period")?;
                let active = num("active rounds")?;
                if period == 0 || active == 0 || active > period {
                    return Err(format!(
                        "schedule {spec:?}: need 1 <= active <= period with period > 0"
                    ));
                }
                AttackSchedule::oscillating(period, active)
            }
            key @ ("delivery-above" | "delivery-below" | "targeted-above" | "targeted-below"
            | "presence-above" | "presence-below" | "falsecut-above" | "falsecut-below") => {
                let value = parts
                    .next()
                    .ok_or_else(|| format!("schedule {spec:?}: missing threshold"))?
                    .parse::<f64>()
                    .map_err(|_| format!("schedule {spec:?}: threshold is not a number"))?;
                let metric = if key.starts_with("delivery") {
                    MetricKey::OverallDelivery
                } else if key.starts_with("presence") {
                    MetricKey::PresentFraction
                } else if key.starts_with("falsecut") {
                    MetricKey::FalseCutRate
                } else {
                    MetricKey::TargetedService
                };
                if key.ends_with("above") {
                    AttackSchedule::when_above(metric, value)
                } else {
                    AttackSchedule::when_below(metric, value)
                }
            }
            other => {
                return Err(format!(
                    "unknown schedule {other:?} (always | at:<r> | window:<a>:<b> | \
                     periodic:<p>:<a> | delivery-above:<x> | delivery-below:<x> | \
                     targeted-above:<x> | targeted-below:<x> | presence-above:<x> | \
                     presence-below:<x> | falsecut-above:<x> | falsecut-below:<x>)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("schedule {spec:?}: trailing fields"));
        }
        Ok(sched)
    }
}

/// The deterministic per-run schedule stepper a simulator embeds.
///
/// One [`ScheduleState::is_active`] call per round decides the phase. For
/// open-loop schedules the only mutable state is the metric-trigger
/// latch; with an adaptive policy the state additionally carries the
/// bandit's learning state — either way, cloning a sim clones its
/// schedule position exactly (replay-safe).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleState {
    spec: AttackSchedule,
    /// Metric triggers latch: once fired they stay fired.
    latched: bool,
    /// The bandit stepper, when `spec.adaptive` is set.
    /// Boxed: the bandit's learning state is ~20x the open-loop state,
    /// and almost every schedule ever stepped is open-loop.
    adaptive: Option<Box<crate::adaptive::AdaptivePolicy>>,
}

impl ScheduleState {
    /// Start stepping `spec` from round 0.
    ///
    /// An adaptive spec needs exploration randomness; this constructor
    /// seeds it from a fixed stream, so two runs differing only in their
    /// master seed would explore identically. Simulators use
    /// [`ScheduleState::seeded`] with a dedicated fork of their own rng
    /// instead; `new` is for schedule-only contexts (tests, the
    /// always-on defaults) and non-adaptive specs, where the two
    /// constructors coincide.
    pub fn new(spec: AttackSchedule) -> Self {
        ScheduleState::seeded(spec, netsim::rng::DetRng::seed_from(0).fork("adaptive"))
    }

    /// Start stepping `spec` from round 0, drawing any adaptive-policy
    /// exploration randomness from `rng` (pass a dedicated fork, e.g.
    /// `sim_rng.fork("adaptive")`, so honest-path streams stay
    /// bit-identical whether or not the attacker adapts).
    pub fn seeded(spec: AttackSchedule, rng: netsim::rng::DetRng) -> Self {
        ScheduleState {
            spec,
            latched: false,
            adaptive: spec
                .adaptive
                .map(|a| Box::new(crate::adaptive::AdaptivePolicy::new(a, rng))),
        }
    }

    /// The schedule being stepped.
    pub fn spec(&self) -> &AttackSchedule {
        &self.spec
    }

    /// The adaptive policy's per-phase arm trace, when the schedule runs
    /// one (the `lotus-bench --arm-trace` payload).
    pub fn arm_trace(&self) -> Option<&[crate::adaptive::TraceEntry]> {
        self.adaptive.as_ref().map(|p| p.trace())
    }

    /// Which canonical metric the caller must observe *this round*, if
    /// any. `None` for every non-metric trigger and once a metric trigger
    /// has latched — so the default schedule never asks for observations
    /// and stays entirely out of the hot loop. Learning adaptive policies
    /// observe their reward metric every round; fixed-arm policies, like
    /// static triggers, never ask.
    pub fn needs_observation(&self) -> Option<MetricKey> {
        if let Some(policy) = &self.adaptive {
            let spec = policy.spec();
            return spec.needs_observation().then_some(spec.metric);
        }
        match self.spec.trigger {
            Trigger::MetricThreshold { metric, .. } if !self.latched => Some(metric),
            _ => None,
        }
    }

    /// Whether the attack is on in round `t`. For metric triggers the
    /// caller passes the metric value [`Self::needs_observation`] asked
    /// for, computed allocation-free from its own counters — or `None`
    /// when the metric has no data yet (e.g. delivery before the first
    /// measured expiry). A `None` observation never latches: an
    /// unmeasured metric is *absent*, not zero, so `delivery-below`
    /// triggers wait for real degradation instead of firing on the empty
    /// counters of round 0. Under an adaptive policy the same
    /// observation is the bandit's reward signal and the chosen arm
    /// decides activity. Never allocates (the bandit's once-per-phase
    /// trace entry aside).
    // lint: hot-loop
    pub fn is_active(&mut self, t: Round, observed: Option<f64>) -> bool {
        if let Some(policy) = &mut self.adaptive {
            return policy.step(t, observed);
        }
        match self.spec.trigger {
            Trigger::Always => true,
            Trigger::AtRound(r) => t >= r,
            Trigger::Window { from, until } => t >= from && t < until,
            Trigger::Periodic {
                period,
                active_rounds,
            } => t % period < active_rounds,
            Trigger::MetricThreshold { value, above, .. } => {
                if !self.latched {
                    if let Some(v) = observed {
                        let fired = if above { v >= value } else { v <= value };
                        if fired {
                            self.latched = true;
                        }
                    }
                }
                self.latched
            }
        }
    }

    /// The rotation phase at round `t` (`None` without rotation). Feed it
    /// to [`rotating_window`] to obtain the round's target slice. Static
    /// schedules rotate on the clock (`t / period`); adaptive ones rotate
    /// when the bandit plays a window-sliding arm, so the phase is the
    /// policy's sliding-arm counter.
    pub fn rotation_phase(&self, t: Round) -> Option<u64> {
        self.spec.rotation?;
        Some(match &self.adaptive {
            Some(policy) => policy.rotation_phase(),
            None => t / self.spec.rotation.expect("checked above"),
        })
    }
}

/// The shared canonical-metric observation for sims that account
/// delivery in per-class counters (`delivered`/`totals` indexed
/// isolated = 0, satiated = 1, attacker = 2 — the layout both gossip
/// substrates use). Returns `None` while the honest population has no
/// measured samples yet, so metric triggers do not mistake empty
/// counters for zero delivery. Allocation-free.
pub fn class_delivery_observation(
    delivered: &[u64; 3],
    totals: &[u64; 3],
    key: MetricKey,
) -> Option<f64> {
    let frac = |d: u64, t: u64| {
        if t == 0 {
            None
        } else {
            Some(d as f64 / t as f64)
        }
    };
    match key {
        MetricKey::OverallDelivery => frac(delivered[0] + delivered[1], totals[0] + totals[1]),
        MetricKey::TargetedService => frac(delivered[1], totals[1]),
        // Presence is population state and false cuts are defense
        // accounting, not delivery: callers answer those from their
        // `Population` / cut counters before reaching for this helper,
        // so a counter-only caller simply has no observation.
        MetricKey::PresentFraction | MetricKey::FalseCutRate => None,
    }
}

/// The shared rotation arithmetic: the indices (into a population of `n`)
/// targeted during rotation `phase`, a `k`-wide window sliding `k` steps
/// per phase. This is exactly the math `RotatingSatiation` and the BAR
/// Gossip rotation used to duplicate. Allocation-free; yields nothing
/// when `k == 0` or `n == 0`.
pub fn rotating_window(phase: u64, k: usize, n: usize) -> impl Iterator<Item = usize> {
    let start = if n == 0 {
        0
    } else {
        (phase as usize).wrapping_mul(k) % n
    };
    (0..if n == 0 { 0 } else { k }).map(move |i| (start + i) % n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_is_always_on() {
        let mut s = ScheduleState::new(AttackSchedule::always());
        assert!(s.needs_observation().is_none());
        for t in 0..50 {
            assert!(s.is_active(t, None));
        }
    }

    #[test]
    fn at_round_turns_on_once() {
        let mut s = ScheduleState::new(AttackSchedule::at(10));
        assert!(!s.is_active(9, None));
        assert!(s.is_active(10, None));
        assert!(s.is_active(999, None));
    }

    #[test]
    fn window_turns_off_again() {
        let mut s = ScheduleState::new(AttackSchedule::window(5, 8));
        let on: Vec<Round> = (0..12).filter(|&t| s.is_active(t, None)).collect();
        assert_eq!(on, vec![5, 6, 7]);
    }

    #[test]
    fn periodic_oscillates() {
        let mut s = ScheduleState::new(AttackSchedule::oscillating(6, 2));
        let on: Vec<Round> = (0..13).filter(|&t| s.is_active(t, None)).collect();
        assert_eq!(on, vec![0, 1, 6, 7, 12]);
    }

    #[test]
    fn metric_trigger_latches() {
        let mut s = ScheduleState::new(AttackSchedule::when_above(MetricKey::OverallDelivery, 0.9));
        assert_eq!(s.needs_observation(), Some(MetricKey::OverallDelivery));
        assert!(!s.is_active(0, Some(0.5)));
        assert!(!s.is_active(1, None), "no observation, no latch");
        assert!(s.is_active(2, Some(0.95)), "fires on crossing");
        assert!(
            s.needs_observation().is_none(),
            "latched: no more observation"
        );
        assert!(
            s.is_active(3, Some(0.1)),
            "latch holds even if metric drops"
        );
    }

    #[test]
    fn no_data_observation_never_latches_below_triggers() {
        // An unmeasured metric is absent, not zero: a delivery-below
        // trigger must not fire while the caller reports None.
        let mut s = ScheduleState::new(AttackSchedule::when_below(MetricKey::OverallDelivery, 0.5));
        for t in 0..10 {
            assert!(!s.is_active(t, None), "no data, no latch");
        }
        assert!(s.is_active(10, Some(0.4)), "real degradation fires");
    }

    #[test]
    fn class_delivery_observation_handles_empty_counters() {
        let empty = class_delivery_observation(&[0; 3], &[0; 3], MetricKey::OverallDelivery);
        assert_eq!(empty, None, "no measured samples: no observation");
        let d = [30, 10, 0];
        let t = [40, 10, 0];
        assert_eq!(
            class_delivery_observation(&d, &t, MetricKey::OverallDelivery),
            Some(0.8)
        );
        assert_eq!(
            class_delivery_observation(&d, &t, MetricKey::TargetedService),
            Some(1.0)
        );
        assert_eq!(
            class_delivery_observation(&[5, 0, 0], &[10, 0, 0], MetricKey::TargetedService),
            None,
            "no satiated-set samples yet"
        );
    }

    #[test]
    fn metric_below_trigger() {
        let mut s = ScheduleState::new(AttackSchedule::when_below(MetricKey::TargetedService, 0.2));
        assert!(!s.is_active(0, Some(0.5)));
        assert!(s.is_active(1, Some(0.1)));
    }

    #[test]
    fn rotation_phase_and_window() {
        let s = ScheduleState::new(AttackSchedule::always().with_rotation(10));
        assert_eq!(s.rotation_phase(0), Some(0));
        assert_eq!(s.rotation_phase(19), Some(1));
        assert_eq!(
            ScheduleState::new(AttackSchedule::always()).rotation_phase(5),
            None
        );
        let w: Vec<usize> = rotating_window(1, 3, 10).collect();
        assert_eq!(w, vec![3, 4, 5]);
        let wrap: Vec<usize> = rotating_window(3, 3, 10).collect();
        assert_eq!(wrap, vec![9, 0, 1]);
        assert_eq!(rotating_window(5, 0, 10).count(), 0);
        assert_eq!(rotating_window(5, 3, 0).count(), 0);
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        assert_eq!(
            AttackSchedule::parse("always").unwrap(),
            AttackSchedule::always()
        );
        assert_eq!(
            AttackSchedule::parse("at:40").unwrap(),
            AttackSchedule::at(40)
        );
        assert_eq!(
            AttackSchedule::parse("window:5:9").unwrap(),
            AttackSchedule::window(5, 9)
        );
        assert_eq!(
            AttackSchedule::parse("periodic:20:10").unwrap(),
            AttackSchedule::oscillating(20, 10)
        );
        assert_eq!(
            AttackSchedule::parse("delivery-above:0.93").unwrap(),
            AttackSchedule::when_above(MetricKey::OverallDelivery, 0.93)
        );
        assert_eq!(
            AttackSchedule::parse("targeted-below:0.5").unwrap(),
            AttackSchedule::when_below(MetricKey::TargetedService, 0.5)
        );
        assert_eq!(
            AttackSchedule::parse("presence-above:0.95").unwrap(),
            AttackSchedule::when_above(MetricKey::PresentFraction, 0.95)
        );
        assert_eq!(
            AttackSchedule::parse("presence-below:0.6").unwrap(),
            AttackSchedule::when_below(MetricKey::PresentFraction, 0.6)
        );
        assert_eq!(
            AttackSchedule::parse("falsecut-above:0.1").unwrap(),
            AttackSchedule::when_above(MetricKey::FalseCutRate, 0.1)
        );
        assert_eq!(
            AttackSchedule::parse("falsecut-below:0.01").unwrap(),
            AttackSchedule::when_below(MetricKey::FalseCutRate, 0.01)
        );
    }

    #[test]
    fn presence_trigger_latches_on_membership() {
        // The flash-crowd striker: dormant while the crowd is outside,
        // latched the round the presence fraction crosses the bar.
        let mut s = ScheduleState::new(AttackSchedule::when_above(MetricKey::PresentFraction, 0.9));
        assert_eq!(s.needs_observation(), Some(MetricKey::PresentFraction));
        assert!(!s.is_active(0, Some(0.6)));
        assert!(s.is_active(1, Some(0.95)), "crowd landed: attack on");
        assert!(s.is_active(2, Some(0.3)), "latch holds through departures");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "sometimes",
            "at",
            "at:x",
            "window:5:5",
            "window:9:5",
            "periodic:0:0",
            "periodic:5:6",
            "delivery-above:high",
            "always:extra",
        ] {
            assert!(AttackSchedule::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_rotation_rejected() {
        let _ = AttackSchedule::always().with_rotation(0);
    }

    #[test]
    fn metric_key_names_match_report_vocabulary() {
        use crate::scenario::ScenarioReport;
        let r = ScenarioReport::new("x", 1, 0.25, 0.75, false);
        assert_eq!(r.metric(MetricKey::OverallDelivery.name()), Some(0.25));
        assert_eq!(r.metric(MetricKey::TargetedService.name()), Some(0.75));
    }
}
