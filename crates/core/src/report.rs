//! Shared reporting vocabulary: usability thresholds and crossover records.
//!
//! BAR Gossip's evaluation uses a hard usability rule — "nodes need to
//! receive more than 93% of the updates for the stream to be usable" — and
//! the paper's headline numbers are the attacker fractions at which each
//! attack first drives isolated nodes below that line. This module carries
//! that vocabulary so every experiment reports the same way.

use netsim::metrics::Series;

/// A service-usability threshold on a `[0, 1]` delivery metric.
///
/// ```
/// use lotus_core::report::UsabilityThreshold;
/// let u = UsabilityThreshold::BAR_GOSSIP;
/// assert!(u.usable(0.95));
/// assert!(!u.usable(0.90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsabilityThreshold(pub f64);

impl UsabilityThreshold {
    /// The BAR Gossip streaming threshold from the paper: > 93 %.
    pub const BAR_GOSSIP: UsabilityThreshold = UsabilityThreshold(0.93);

    /// Whether a delivery fraction clears the threshold.
    pub fn usable(self, delivered: f64) -> bool {
        delivered > self.0
    }

    /// The smallest attacker fraction at which `curve` first drops to or
    /// below the threshold (interpolated), i.e. the attack's *break point*.
    pub fn break_point(self, curve: &Series) -> Option<f64> {
        curve.crossover_below(self.0)
    }
}

impl Default for UsabilityThreshold {
    fn default() -> Self {
        UsabilityThreshold::BAR_GOSSIP
    }
}

/// A paper-vs-measured record for one experiment curve, as written into
/// EXPERIMENTS.md by the bench binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRecord {
    /// Curve label (e.g. `"Trade lotus-eater attack"`).
    pub label: String,
    /// The crossover fraction the paper reports, if it reports one.
    pub paper: Option<f64>,
    /// The crossover fraction we measured, if the curve crosses.
    pub measured: Option<f64>,
}

impl CrossoverRecord {
    /// Build a record by extracting the measured break point from a curve.
    pub fn from_curve(curve: &Series, threshold: UsabilityThreshold, paper: Option<f64>) -> Self {
        CrossoverRecord {
            label: curve.label.clone(),
            paper,
            measured: threshold.break_point(curve),
        }
    }

    /// `true` when both values exist and the measured break point is
    /// within `tol` (absolute) of the paper's.
    pub fn matches_paper(&self, tol: f64) -> bool {
        match (self.paper, self.measured) {
            (Some(p), Some(m)) => (p - m).abs() <= tol,
            _ => false,
        }
    }
}

impl std::fmt::Display for CrossoverRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "-".to_string(),
        };
        write!(
            f,
            "{}: paper {} / measured {}",
            self.label,
            fmt_opt(self.paper),
            fmt_opt(self.measured)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn falling_curve() -> Series {
        let mut s = Series::new("Trade lotus-eater attack");
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            s.push(x, 1.0 - x * x); // crosses 0.93 near x = 0.2646
        }
        s
    }

    #[test]
    fn threshold_semantics_are_strict() {
        let u = UsabilityThreshold::BAR_GOSSIP;
        assert!(!u.usable(0.93), "paper says strictly more than 93%");
        assert!(u.usable(0.9301));
    }

    #[test]
    fn break_point_extraction() {
        let u = UsabilityThreshold::BAR_GOSSIP;
        let x = u.break_point(&falling_curve()).unwrap();
        assert!((x - 0.2646).abs() < 0.02, "got {x}");
    }

    #[test]
    fn record_matches_within_tolerance() {
        let rec = CrossoverRecord::from_curve(
            &falling_curve(),
            UsabilityThreshold::BAR_GOSSIP,
            Some(0.22),
        );
        assert!(rec.matches_paper(0.10));
        assert!(!rec.matches_paper(0.01));
    }

    #[test]
    fn record_without_crossing() {
        let mut flat = Series::new("no attack");
        flat.push(0.0, 1.0);
        flat.push(1.0, 0.99);
        let rec = CrossoverRecord::from_curve(&flat, UsabilityThreshold::BAR_GOSSIP, None);
        assert_eq!(rec.measured, None);
        assert!(!rec.matches_paper(1.0));
        assert_eq!(format!("{rec}"), "no attack: paper - / measured -");
    }

    #[test]
    fn display_formats_values() {
        let rec = CrossoverRecord {
            label: "x".into(),
            paper: Some(0.42),
            measured: Some(0.4321),
        };
        assert_eq!(format!("{rec}"), "x: paper 0.420 / measured 0.432");
    }

    #[test]
    fn default_is_bar_gossip() {
        assert_eq!(UsabilityThreshold::default(), UsabilityThreshold(0.93));
    }
}
