//! The unified `Scenario` API: one polymorphic driving surface for every
//! substrate.
//!
//! The paper's central claim (Observation 3.1) is substrate-generic: *any*
//! satiation-compatible system is vulnerable to a lotus-eater attack. The
//! interesting science is therefore comparative — run the same attack
//! family against BAR Gossip, a scrip economy, a BitTorrent swarm and the
//! abstract token model, and compare how each responds. This module makes
//! that comparison a first-class operation instead of four parallel
//! copies of the same harness:
//!
//! * [`Scenario`] — the typed driving interface every substrate
//!   implements: `build(cfg, attack, seed)`, `step()`, `report()`. A
//!   scenario is deterministic in its seed: the same
//!   `(config, attack, seed)` triple always produces a bit-identical
//!   report.
//! * [`ScenarioReport`] — the common metric vocabulary
//!   (`overall_delivery`, `targeted_service`, `usable`, plus named custom
//!   metrics) that sweeps, crossover extraction and plotting understand
//!   without knowing the substrate.
//! * [`Summarize`] — the bridge from a substrate's typed report to the
//!   shared vocabulary.
//! * [`DynScenario`] — the type-erased layer: `Box<dyn DynScenario>`
//!   drives any scenario and yields [`ScenarioReport`]s, so registries
//!   and CLIs can dispatch by name.
//!
//! # Example: driving two different substrates through one interface
//!
//! ```
//! use lotus_core::scenario::{run, DynScenario, Scenario, StepOutcome};
//! use lotus_core::attack::TokenAttack;
//! use lotus_core::token::{TokenScenarioConfig, TokenSystem, TokenSystemConfig};
//! use netsim::graph::Graph;
//!
//! let cfg = TokenScenarioConfig::new(
//!     TokenSystemConfig::builder(Graph::complete(20)).tokens(6).build()?,
//!     50,
//! );
//!
//! // Typed driving: full access to the substrate report.
//! let report = run::<TokenSystem>(cfg.clone(), TokenAttack::none(), 7);
//! assert_eq!(report.rounds, 50);
//!
//! // Type-erased driving: only the common vocabulary, any substrate.
//! let mut erased = lotus_core::scenario::boxed::<TokenSystem>(cfg, TokenAttack::none(), 7);
//! let summary = erased.finish();
//! assert_eq!(summary.scenario, "token");
//! assert!(summary.overall_delivery > 0.9);
//! # Ok::<(), lotus_core::token::ConfigError>(())
//! ```

use netsim::Round;

/// What a single [`Scenario::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A round was executed and the scenario can continue.
    Continue,
    /// The scenario has reached its configured horizon (or a terminal
    /// state); further `step` calls are no-ops returning `Done`.
    Done,
}

impl StepOutcome {
    /// Whether the scenario has finished.
    pub fn is_done(self) -> bool {
        matches!(self, StepOutcome::Done)
    }
}

/// A runnable experiment: a substrate plus an attack plus a horizon,
/// deterministic in a single `u64` seed.
///
/// Implementations promise:
///
/// * **Determinism** — `build(cfg, attack, seed)` followed by stepping to
///   completion yields a bit-identical [`Scenario::Report`] for identical
///   inputs, on every platform.
/// * **Idempotent completion** — once `step` returns
///   [`StepOutcome::Done`], further calls keep returning `Done` without
///   changing the report.
/// * **Equivalence with the legacy entry points** — where a substrate
///   also exposes an inherent `run_to_report`/`run`, driving it through
///   this trait produces the same report.
pub trait Scenario: Sized {
    /// Substrate configuration (topology, horizon, protocol parameters).
    type Config: Clone;
    /// Attack specification (who the adversary is and what it does).
    type Attack: Clone;
    /// The substrate's full-fidelity typed report.
    type Report: Clone + Summarize;

    /// Stable scenario name used by registries, reports and CLIs.
    const NAME: &'static str;

    /// Construct the scenario in its initial state.
    ///
    /// # Panics
    ///
    /// Implementations may panic on invalid configurations (all substrate
    /// configs are validated by their builders first).
    fn build(cfg: Self::Config, attack: Self::Attack, seed: u64) -> Self;

    /// Execute one round; report whether the scenario can continue.
    fn step(&mut self) -> StepOutcome;

    /// Snapshot the typed report for the rounds executed so far.
    fn report(&self) -> Self::Report;

    /// The adaptive attacker's per-phase arm trace, when this run is
    /// driven by an [`AdaptivePolicy`](crate::adaptive::AdaptivePolicy)
    /// (substrates expose their schedule stepper's trace). `None` for
    /// every open-loop schedule — the default.
    fn arm_trace(&self) -> Option<&[crate::adaptive::TraceEntry]> {
        None
    }

    /// Step to completion and return the final typed report.
    fn finish(&mut self) -> Self::Report {
        while let StepOutcome::Continue = self.step() {}
        self.report()
    }
}

/// Build and run a scenario to completion: the one-line driving form.
///
/// ```
/// use lotus_core::attack::TokenAttack;
/// use lotus_core::token::{TokenScenarioConfig, TokenSystem, TokenSystemConfig};
/// use netsim::graph::Graph;
///
/// let cfg = TokenScenarioConfig::new(
///     TokenSystemConfig::builder(Graph::complete(16)).tokens(4).build()?,
///     30,
/// );
/// let report = lotus_core::scenario::run::<TokenSystem>(cfg, TokenAttack::none(), 1);
/// assert_eq!(report.rounds, 30);
/// # Ok::<(), lotus_core::token::ConfigError>(())
/// ```
pub fn run<S: Scenario>(cfg: S::Config, attack: S::Attack, seed: u64) -> S::Report {
    S::build(cfg, attack, seed).finish()
}

/// Build a scenario behind the type-erased [`DynScenario`] interface.
pub fn boxed<S: Scenario + 'static>(
    cfg: S::Config,
    attack: S::Attack,
    seed: u64,
) -> Box<dyn DynScenario> {
    Box::new(S::build(cfg, attack, seed))
}

/// Conversion from a substrate's typed report into the shared metric
/// vocabulary.
pub trait Summarize {
    /// Project the report onto the common [`ScenarioReport`] vocabulary.
    ///
    /// The projection must be pure: calling it twice on the same report
    /// yields identical summaries.
    fn summarize(&self) -> ScenarioReport;
}

/// The substrate-independent report: what every scenario can say about a
/// finished (or in-progress) run.
///
/// The three canonical metrics are chosen so the paper's comparative
/// questions are expressible against any substrate:
///
/// * `overall_delivery` — service delivered to the honest population the
///   attack tries to harm, on a `[0, 1]` scale (delivery fraction,
///   service rate, completion fraction, coverage — whatever "the system
///   works" means for the substrate);
/// * `targeted_service` — service enjoyed by the nodes the attacker
///   showers with gifts (the satiated set);
/// * `usable` — whether the honest population clears the substrate's
///   usability bar (BAR Gossip's 93 % rule, a functioning market, a
///   completed swarm).
///
/// Everything else a substrate knows travels as named custom metrics,
/// kept sorted by key so reports are bit-identical across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Name of the producing scenario (equal to [`Scenario::NAME`]).
    pub scenario: String,
    /// Rounds executed.
    pub rounds: Round,
    /// Service delivered to the honest population (`[0, 1]`).
    pub overall_delivery: f64,
    /// Service enjoyed by the attacker's targets (`[0, 1]`).
    pub targeted_service: f64,
    /// Whether the honest population clears the usability bar.
    pub usable: bool,
    /// Custom metrics, sorted by key.
    metrics: Vec<(String, f64)>,
}

impl ScenarioReport {
    /// Create a report with the canonical metrics and no custom ones.
    pub fn new(
        scenario: impl Into<String>,
        rounds: Round,
        overall_delivery: f64,
        targeted_service: f64,
        usable: bool,
    ) -> Self {
        ScenarioReport {
            scenario: scenario.into(),
            rounds,
            overall_delivery,
            targeted_service,
            usable,
            metrics: Vec::new(),
        }
    }

    /// Attach a custom metric (builder style). Inserts in sorted key
    /// order; re-using a key replaces the previous value.
    pub fn with_metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.set_metric(key, value);
        self
    }

    /// Attach or replace a custom metric.
    pub fn set_metric(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        match self.metrics.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.metrics[i].1 = value,
            Err(i) => self.metrics.insert(i, (key, value)),
        }
    }

    /// Look up a metric by name.
    ///
    /// The canonical metrics are addressable alongside the custom ones:
    /// `"overall_delivery"`, `"targeted_service"`, `"usable"` (as
    /// `0.0`/`1.0`) and `"rounds"`.
    pub fn metric(&self, key: &str) -> Option<f64> {
        match key {
            "overall_delivery" => Some(self.overall_delivery),
            "targeted_service" => Some(self.targeted_service),
            "usable" => Some(if self.usable { 1.0 } else { 0.0 }),
            "rounds" => Some(self.rounds as f64),
            _ => self
                .metrics
                .binary_search_by(|(k, _)| k.as_str().cmp(key))
                .ok()
                .map(|i| self.metrics[i].1),
        }
    }

    /// All metric names this report answers to, canonical ones first,
    /// custom ones in sorted order.
    pub fn metric_keys(&self) -> Vec<&str> {
        let mut keys = vec!["overall_delivery", "targeted_service", "usable", "rounds"];
        keys.extend(self.metrics.iter().map(|(k, _)| k.as_str()));
        keys
    }

    /// The custom metrics in sorted key order.
    pub fn custom_metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Serialize as a single JSON object (no external dependencies; keys
    /// in deterministic order).
    ///
    /// ```
    /// use lotus_core::scenario::ScenarioReport;
    /// let r = ScenarioReport::new("token", 5, 1.0, 1.0, true).with_metric("gini", 0.25);
    /// assert_eq!(
    ///     r.to_json(),
    ///     "{\"scenario\":\"token\",\"rounds\":5,\"overall_delivery\":1,\
    ///      \"targeted_service\":1,\"usable\":true,\"gini\":0.25}"
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"scenario\":{}", json_string(&self.scenario)));
        out.push_str(&format!(",\"rounds\":{}", self.rounds));
        out.push_str(&format!(
            ",\"overall_delivery\":{}",
            json_number(self.overall_delivery)
        ));
        out.push_str(&format!(
            ",\"targeted_service\":{}",
            json_number(self.targeted_service)
        ));
        out.push_str(&format!(",\"usable\":{}", self.usable));
        for (k, v) in &self.metrics {
            out.push_str(&format!(",{}:{}", json_string(k), json_number(*v)));
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (metric keys and scenario names are plain
/// ASCII identifiers, but be safe). Shared with the `lotus-bench` runner
/// so every JSON surface escapes identically.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe float formatting: finite values print shortest-roundtrip,
/// non-finite values become `null`.
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The type-erased driving interface: what a registry or CLI needs to run
/// *some* scenario without naming its types.
///
/// Blanket-implemented for every [`Scenario`], so
/// `Box<dyn DynScenario>` is always available via [`boxed`].
pub trait DynScenario {
    /// The scenario's stable name ([`Scenario::NAME`]).
    fn name(&self) -> &'static str;

    /// Execute one round; see [`Scenario::step`].
    fn step_dyn(&mut self) -> StepOutcome;

    /// Snapshot the common-vocabulary report for the rounds so far.
    fn report_dyn(&self) -> ScenarioReport;

    /// The adaptive arm trace, if the scenario ran one (see
    /// [`Scenario::arm_trace`]).
    fn arm_trace_dyn(&self) -> Option<&[crate::adaptive::TraceEntry]> {
        None
    }

    /// Step to completion and return the final summary.
    fn finish(&mut self) -> ScenarioReport {
        while let StepOutcome::Continue = self.step_dyn() {}
        self.report_dyn()
    }
}

impl<S: Scenario> DynScenario for S {
    fn name(&self) -> &'static str {
        S::NAME
    }

    fn step_dyn(&mut self) -> StepOutcome {
        Scenario::step(self)
    }

    fn report_dyn(&self) -> ScenarioReport {
        self.report().summarize()
    }

    fn arm_trace_dyn(&self) -> Option<&[crate::adaptive::TraceEntry]> {
        self.arm_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scenario counting to a horizon.
    #[derive(Debug, Clone)]
    struct Counter {
        horizon: u64,
        at: u64,
        seed: u64,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct CounterReport {
        at: u64,
        seed: u64,
    }

    impl Summarize for CounterReport {
        fn summarize(&self) -> ScenarioReport {
            ScenarioReport::new("counter", self.at, 1.0, 1.0, true)
                .with_metric("seed", self.seed as f64)
        }
    }

    impl Scenario for Counter {
        type Config = u64;
        type Attack = ();
        type Report = CounterReport;
        const NAME: &'static str = "counter";

        fn build(cfg: u64, _attack: (), seed: u64) -> Self {
            Counter {
                horizon: cfg,
                at: 0,
                seed,
            }
        }

        fn step(&mut self) -> StepOutcome {
            if self.at >= self.horizon {
                return StepOutcome::Done;
            }
            self.at += 1;
            if self.at >= self.horizon {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }

        fn report(&self) -> CounterReport {
            CounterReport {
                at: self.at,
                seed: self.seed,
            }
        }
    }

    #[test]
    fn typed_and_erased_paths_agree() {
        let typed = run::<Counter>(5, (), 9);
        let mut erased = boxed::<Counter>(5, (), 9);
        let summary = erased.finish();
        assert_eq!(typed.summarize(), summary);
        assert_eq!(summary.rounds, 5);
        assert_eq!(summary.metric("seed"), Some(9.0));
    }

    #[test]
    fn step_after_done_is_idempotent() {
        let mut c = Counter::build(2, (), 0);
        assert_eq!(c.step(), StepOutcome::Continue);
        assert_eq!(c.step(), StepOutcome::Done);
        assert_eq!(c.step(), StepOutcome::Done);
        assert!(c.step().is_done());
        assert_eq!(c.report().at, 2, "done steps must not advance the run");
    }

    #[test]
    fn metric_lookup_covers_canonical_and_custom() {
        let r = ScenarioReport::new("x", 7, 0.5, 0.9, false)
            .with_metric("b", 2.0)
            .with_metric("a", 1.0)
            .with_metric("b", 3.0);
        assert_eq!(r.metric("overall_delivery"), Some(0.5));
        assert_eq!(r.metric("targeted_service"), Some(0.9));
        assert_eq!(r.metric("usable"), Some(0.0));
        assert_eq!(r.metric("rounds"), Some(7.0));
        assert_eq!(r.metric("a"), Some(1.0));
        assert_eq!(r.metric("b"), Some(3.0), "re-set replaces");
        assert_eq!(r.metric("missing"), None);
        assert_eq!(
            r.metric_keys(),
            vec![
                "overall_delivery",
                "targeted_service",
                "usable",
                "rounds",
                "a",
                "b"
            ]
        );
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let r = ScenarioReport::new("a\"b", 1, 1.0, 0.0, true).with_metric("m", f64::NAN);
        let j = r.to_json();
        assert!(j.contains("\"a\\\"b\""));
        assert!(j.contains("\"m\":null"));
        assert_eq!(j, r.to_json());
    }
}
