//! Population dynamics: *who is even present*, as a first-class,
//! cross-substrate dimension.
//!
//! Real deployments are never the closed populations the paper's figures
//! assume — peers arrive, crash and come back, and they do so at wildly
//! different rates: measurement studies of deployed swarms consistently
//! find a *stable core* with long sessions next to a *transient fringe*
//! that flickers, punctuated by synchronized join bursts when new content
//! drops (the flash crowd). All three regimes interact with the
//! lotus-eater attack: departures shrink the honest service pool the
//! isolated nodes depend on, arrivals dilute the attacker's satiated set,
//! and a flash crowd can mask — or amplify — a defection depending on
//! when it lands. This module gives every substrate the same
//! deterministic machinery:
//!
//! * [`ChurnSpec`] — per-round leave/rejoin probabilities for one cohort,
//!   `Copy`, the PR 3 uniform-churn primitive;
//! * [`ChurnProfile`] — *heterogeneous* churn: up to [`MAX_CHURN_CLASSES`]
//!   weighted cohorts (e.g. a stable core at `0.002/round` next to a
//!   transient fringe at `0.2/round`), parseable from the
//!   `lotus-bench --churn-profile` grammar. Nodes are assigned to cohorts
//!   deterministically from a labelled fork of the population rng stream;
//! * [`ArrivalProcess`] — flash crowds: deterministic burst waves and a
//!   ramp mode that hold part of the population *outside* the system
//!   until their arrival round, entering with whatever state they were
//!   constructed with — they have never participated;
//! * [`Population`] — the per-run membership tracker: a
//!   [`BitSet`](crate::bitset::BitSet) of present nodes advanced once per
//!   round by [`Population::begin_round`], driven by a dedicated
//!   [`DetRng`] fork so enabling churn never perturbs any other
//!   randomness stream.
//!
//! Nodes keep their state while absent (windows go stale, balances and
//! piece maps persist) and resume participating on return — a crash,
//! not an identity change. Roles a substrate cannot lose (origin seeds,
//! attacker peers) are marked [`Population::protect`]ed and never leave.
//!
//! # Hot-loop allocation invariants
//!
//! [`Population::begin_round`] never allocates: it flips bits in the
//! membership set in place, and arrival waves admit nodes in index order
//! without drawing randomness. With an inactive profile (every cohort at
//! zero leave rate — [`ChurnProfile::none`], but also any explicitly
//! configured zero-rate profile) and no arrival process it returns
//! immediately *without drawing randomness*, so configuring churn at
//! rate zero can never perturb the membership stream or any fork derived
//! downstream of it, and churn-free runs are bit-identical to pre-churn
//! behaviour per seed (the golden tests in
//! `crates/bench/tests/schedule_golden.rs` and
//! `crates/bench/tests/churn_golden.rs` are the guardrail). A
//! single-cohort profile draws exactly the stream the PR 3 uniform
//! [`ChurnSpec`] drew, so the degenerate profile reproduces every
//! uniform-churn fixture byte-for-byte.

use crate::bitset::BitSet;
use netsim::rng::DetRng;
use netsim::Round;

/// Deterministic arrival/departure rates for one cohort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Per-round probability a present (unprotected) node departs.
    pub leave: f64,
    /// Per-round probability an absent node rejoins.
    pub rejoin: f64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec::none()
    }
}

impl ChurnSpec {
    /// No churn: everyone present for the whole run (the default).
    pub fn none() -> Self {
        ChurnSpec {
            leave: 0.0,
            rejoin: 0.0,
        }
    }

    /// Churn with the given per-round leave/rejoin probabilities
    /// (clamped to `[0, 1]`).
    pub fn new(leave: f64, rejoin: f64) -> Self {
        ChurnSpec {
            leave: leave.clamp(0.0, 1.0),
            rejoin: rejoin.clamp(0.0, 1.0),
        }
    }

    /// Whether any churn can happen at all.
    pub fn is_active(&self) -> bool {
        self.leave > 0.0
    }

    /// Parse the `lotus-bench --churn` grammar: `none`, `<leave>` (rejoin
    /// defaults to `0.25`) or `<leave>:<rejoin>`.
    ///
    /// # Errors
    ///
    /// Returns a message on non-numeric or out-of-range fields.
    pub fn parse(spec: &str) -> Result<ChurnSpec, String> {
        if spec == "none" {
            return Ok(ChurnSpec::none());
        }
        let mut parts = spec.split(':');
        let mut prob = |what: &str| -> Result<Option<f64>, String> {
            match parts.next() {
                None => Ok(None),
                Some(v) => {
                    let p = v
                        .parse::<f64>()
                        .map_err(|_| format!("churn {spec:?}: {what} is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("churn {spec:?}: {what} {p} outside [0, 1]"));
                    }
                    Ok(Some(p))
                }
            }
        };
        let leave = prob("leave probability")?
            .ok_or_else(|| format!("churn {spec:?}: missing leave probability"))?;
        let rejoin = prob("rejoin probability")?.unwrap_or(0.25);
        if parts.next().is_some() {
            return Err(format!("churn {spec:?}: trailing fields"));
        }
        Ok(ChurnSpec::new(leave, rejoin))
    }
}

/// One weighted cohort of a [`ChurnProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnClass {
    /// Relative share of the population in this cohort (normalised
    /// against the sum of all class weights at assignment time).
    pub weight: f64,
    /// The cohort's leave/rejoin rates.
    pub spec: ChurnSpec,
}

/// Maximum cohorts a [`ChurnProfile`] may mix. Four is enough for every
/// session-length taxonomy in the measurement literature (core /
/// regulars / fringe / one-shot visitors) and keeps the profile `Copy`,
/// so substrate configs stay cheap to clone and sweep.
pub const MAX_CHURN_CLASSES: usize = 4;

/// Heterogeneous churn: up to [`MAX_CHURN_CLASSES`] weighted cohorts,
/// each with its own [`ChurnSpec`]. The degenerate one-class profile is
/// exactly PR 3's uniform churn (and reproduces its fixtures
/// byte-for-byte); a `stable/transient` two-class mix is the realistic
/// default shape.
///
/// ```
/// use lotus_core::population::{ChurnProfile, ChurnSpec};
///
/// let uniform = ChurnProfile::uniform(ChurnSpec::new(0.05, 0.5));
/// assert!(uniform.is_active());
/// let mixed = ChurnProfile::parse("0.9:0.002:0.5/0.1:0.2:0.3").unwrap();
/// assert_eq!(mixed.classes().len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChurnProfile {
    classes: [ChurnClass; MAX_CHURN_CLASSES],
    len: u8,
}

/// Compares only the live cohorts: the padding slots of the fixed
/// array differ between construction paths (`uniform` repeats the
/// spec, `new` zero-pads) and must not make logically identical
/// profiles unequal.
impl PartialEq for ChurnProfile {
    fn eq(&self, other: &Self) -> bool {
        self.classes() == other.classes()
    }
}

impl Default for ChurnProfile {
    fn default() -> Self {
        ChurnProfile::none()
    }
}

impl From<ChurnSpec> for ChurnProfile {
    /// A uniform spec is the one-class profile.
    fn from(spec: ChurnSpec) -> Self {
        ChurnProfile::uniform(spec)
    }
}

impl ChurnProfile {
    /// The closed population: one cohort that never churns.
    pub fn none() -> Self {
        ChurnProfile::uniform(ChurnSpec::none())
    }

    /// The degenerate one-class profile: every node churns at `spec`.
    /// Draws exactly the stream PR 3's uniform churn drew.
    pub fn uniform(spec: ChurnSpec) -> Self {
        ChurnProfile {
            classes: [ChurnClass { weight: 1.0, spec }; MAX_CHURN_CLASSES],
            len: 1,
        }
    }

    /// A profile from explicit cohorts.
    ///
    /// # Errors
    ///
    /// Returns a message when `classes` is empty, has more than
    /// [`MAX_CHURN_CLASSES`] entries, or has a non-positive or non-finite
    /// weight.
    pub fn new(classes: &[ChurnClass]) -> Result<Self, String> {
        if classes.is_empty() {
            return Err("churn profile needs at least one class".to_string());
        }
        if classes.len() > MAX_CHURN_CLASSES {
            return Err(format!(
                "churn profile has {} classes; at most {MAX_CHURN_CLASSES} supported",
                classes.len()
            ));
        }
        for c in classes {
            if !(c.weight > 0.0 && c.weight.is_finite()) {
                return Err(format!("churn class weight {} must be positive", c.weight));
            }
        }
        let mut out = [ChurnClass {
            weight: 0.0,
            spec: ChurnSpec::none(),
        }; MAX_CHURN_CLASSES];
        out[..classes.len()].copy_from_slice(classes);
        Ok(ChurnProfile {
            classes: out,
            len: classes.len() as u8,
        })
    }

    /// The cohorts in force.
    pub fn classes(&self) -> &[ChurnClass] {
        &self.classes[..self.len as usize]
    }

    /// Whether any cohort can lose nodes at all. A profile whose every
    /// cohort has a zero leave rate is *inactive* no matter how it was
    /// spelled: [`Population::begin_round`] draws nothing under it, so an
    /// explicitly configured zero-rate profile cannot perturb the
    /// membership stream or anything forked downstream of it.
    pub fn is_active(&self) -> bool {
        self.classes().iter().any(|c| c.spec.is_active())
    }

    /// Parse the `lotus-bench --churn-profile` grammar:
    ///
    /// ```text
    /// none                          closed population
    /// uniform:<leave>[:<rejoin>]    one class (PR 3 uniform churn)
    /// <w>:<leave>:<rejoin>[/...]    up to 4 weighted classes, e.g. a
    ///                               stable core + transient fringe:
    ///                               0.9:0.002:0.5/0.1:0.2:0.3
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(spec: &str) -> Result<ChurnProfile, String> {
        if spec == "none" {
            return Ok(ChurnProfile::none());
        }
        if let Some(rest) = spec.strip_prefix("uniform:") {
            return Ok(ChurnProfile::uniform(ChurnSpec::parse(rest)?));
        }
        let mut classes = Vec::new();
        for (i, part) in spec.split('/').enumerate() {
            let fields: Vec<&str> = part.split(':').collect();
            let [w, leave, rejoin] = fields.as_slice() else {
                return Err(format!(
                    "churn profile {spec:?}: class {i} must be <weight>:<leave>:<rejoin>, got {part:?}"
                ));
            };
            let num = |what: &str, v: &str, max: f64| -> Result<f64, String> {
                let x = v.parse::<f64>().map_err(|_| {
                    format!("churn profile {spec:?}: class {i} {what} is not a number")
                })?;
                if !(0.0..=max).contains(&x) || !x.is_finite() {
                    return Err(format!(
                        "churn profile {spec:?}: class {i} {what} {x} outside [0, {max}]"
                    ));
                }
                Ok(x)
            };
            classes.push(ChurnClass {
                weight: num("weight", w, f64::INFINITY)?,
                spec: ChurnSpec::new(num("leave", leave, 1.0)?, num("rejoin", rejoin, 1.0)?),
            });
        }
        ChurnProfile::new(&classes).map_err(|e| format!("churn profile {spec:?}: {e}"))
    }
}

/// A deterministic flash-crowd arrival process: part of the population is
/// held *outside* the system at construction and admitted later, in
/// waves or a ramp. Admission is index-ordered and draws no randomness,
/// so replays are trivially bit-identical and the process composes with
/// any [`ChurnProfile`] without perturbing its stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Everyone is present from round 0 (the closed default).
    #[default]
    None,
    /// A burst wave: `size` nodes join at `round`. With `period`, further
    /// waves of up to `size` currently-absent nodes (fresh arrivals
    /// first, then churned-out returners) land every `period` rounds —
    /// the synchronized mass-rejoin that makes flash crowds interesting
    /// under churn.
    Burst {
        /// First wave round.
        round: Round,
        /// Nodes per wave (also the held-back pool size).
        size: u32,
        /// Rounds between waves (`None` = one-shot).
        period: Option<Round>,
    },
    /// A ramp: a crowd of `size` nodes joins at `rate` per round starting
    /// at `start` (fresh arrivals only).
    Ramp {
        /// First arrival round.
        start: Round,
        /// Total crowd size (the held-back pool).
        size: u32,
        /// Arrivals per round.
        rate: u32,
    },
}

impl ArrivalProcess {
    /// Whether any arrivals are configured.
    pub fn is_some(&self) -> bool {
        !matches!(self, ArrivalProcess::None)
    }

    /// The number of nodes the process wants held back at construction.
    pub fn pool(&self) -> usize {
        match *self {
            ArrivalProcess::None => 0,
            ArrivalProcess::Burst { size, .. } | ArrivalProcess::Ramp { size, .. } => size as usize,
        }
    }

    /// Replace the crowd/wave size (the `arrival_size` sweep axis).
    pub fn with_size(mut self, new_size: u32) -> Self {
        match &mut self {
            ArrivalProcess::None => {}
            ArrivalProcess::Burst { size, .. } | ArrivalProcess::Ramp { size, .. } => {
                *size = new_size;
            }
        }
        self
    }

    /// Parse the `lotus-bench --arrival` grammar:
    ///
    /// ```text
    /// none                          no arrivals (default)
    /// burst:<round>,<size>[,<period>]   a wave of <size> at <round>,
    ///                               repeating every <period> rounds
    /// ramp:<start>,<size>[,<rate>]  <size> nodes at <rate>/round
    ///                               (default 1) from <start>
    /// ```
    ///
    /// Colons are accepted in place of commas (`burst:30:12:10`) so the
    /// spec can ride inside a comma-separated `--curve`, mirroring the
    /// adaptive grammar's colon form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(spec: &str) -> Result<ArrivalProcess, String> {
        if spec == "none" {
            return Ok(ArrivalProcess::None);
        }
        let (head, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("arrival {spec:?}: want burst:... | ramp:... | none"))?;
        let fields: Vec<&str> = rest.split([',', ':']).collect();
        let num = |what: &str, v: &str| -> Result<u64, String> {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("arrival {spec:?}: {what} is not a non-negative integer"))
        };
        let count = |what: &str, v: &str| -> Result<u32, String> {
            u32::try_from(num(what, v)?)
                .map_err(|_| format!("arrival {spec:?}: {what} exceeds {}", u32::MAX))
        };
        match (head, fields.as_slice()) {
            ("burst", [round, size]) => Ok(ArrivalProcess::Burst {
                round: num("round", round)?,
                size: count("size", size)?,
                period: None,
            }),
            ("burst", [round, size, period]) => {
                let period = num("period", period)?;
                if period == 0 {
                    return Err(format!("arrival {spec:?}: period must be positive"));
                }
                Ok(ArrivalProcess::Burst {
                    round: num("round", round)?,
                    size: count("size", size)?,
                    period: Some(period),
                })
            }
            ("ramp", [start, size]) => Ok(ArrivalProcess::Ramp {
                start: num("start", start)?,
                size: count("size", size)?,
                rate: 1,
            }),
            ("ramp", [start, size, rate]) => {
                let rate = count("rate", rate)?;
                if rate == 0 {
                    return Err(format!("arrival {spec:?}: rate must be positive"));
                }
                Ok(ArrivalProcess::Ramp {
                    start: num("start", start)?,
                    size: count("size", size)?,
                    rate,
                })
            }
            ("burst", _) => Err(format!(
                "arrival {spec:?}: burst wants <round>,<size>[,<period>]"
            )),
            ("ramp", _) => Err(format!(
                "arrival {spec:?}: ramp wants <start>,<size>[,<rate>]"
            )),
            (other, _) => Err(format!(
                "unknown arrival {other:?} (burst:<round>,<size>[,<period>] | \
                 ramp:<start>,<size>[,<rate>] | none)"
            )),
        }
    }
}

/// Per-run membership under a [`ChurnProfile`] and an [`ArrivalProcess`],
/// deterministic in the rng the simulator forks for it.
///
/// ```
/// use lotus_core::population::{ArrivalProcess, ChurnSpec, Population};
/// use netsim::rng::DetRng;
///
/// let mut pop = Population::new(10, ChurnSpec::new(0.5, 0.5), DetRng::seed_from(7));
/// pop.protect(0); // e.g. an origin seed that must never leave
/// pop.set_arrival(ArrivalProcess::Burst { round: 5, size: 3, period: None });
/// assert_eq!(pop.present_count(), 7); // the crowd starts outside
/// for t in 0..20 {
///     pop.begin_round(t);
///     assert!(pop.is_present(0));
/// }
/// assert!(pop.ever_arrived(1), "the crowd landed at round 5");
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    profile: ChurnProfile,
    arrival: ArrivalProcess,
    present: BitSet,
    protected: BitSet,
    /// Flash-crowd nodes that have not arrived yet: absent, ignored by
    /// churn (they cannot "rejoin" a system they never joined), admitted
    /// by the arrival process in index order.
    pending: BitSet,
    /// Nodes [`Population::exempt_arrival`] excluded from the flash-crowd
    /// pool: they churn normally (unlike protected roles) but are present
    /// from round 0 — substrates use this to keep attacker nodes out of
    /// the held-back crowd without touching their churn stream.
    arrival_exempt: BitSet,
    /// Cohort index per node (empty for single-class profiles: everyone
    /// is class 0 and no assignment randomness is drawn).
    class: Vec<u8>,
    /// Cached `present.len()`, maintained incrementally at every
    /// membership mutation so `present_fraction` observations (the
    /// `presence-*` schedule triggers) and the flash-crowd withdrawal
    /// loop are `O(1)` instead of an `O(n/64)` popcount scan — at a
    /// million nodes the scan inside `set_arrival`'s per-withdrawal
    /// check was quadratic.
    n_present: usize,
    rng: DetRng,
}

impl Population {
    /// A population of `n` nodes, all initially present, churning under
    /// `profile` (a plain [`ChurnSpec`] converts to the uniform
    /// one-class profile). Pass a dedicated rng fork (conventionally
    /// `rng.fork("population")`) so churn draws never perturb the
    /// simulation's other streams.
    ///
    /// Multi-class profiles assign each node a cohort deterministically
    /// from the `"classes"` fork of that stream; forking never advances
    /// the parent, so the membership draw sequence is independent of the
    /// class count — and a one-class profile skips assignment entirely.
    pub fn new(n: usize, profile: impl Into<ChurnProfile>, rng: DetRng) -> Self {
        let profile = profile.into();
        let classes = profile.classes();
        let class = if classes.len() > 1 {
            let total: f64 = classes.iter().map(|c| c.weight).sum();
            let mut crng = rng.fork("classes");
            (0..n)
                .map(|_| {
                    let x = crng.f64() * total;
                    let mut acc = 0.0;
                    let mut idx = 0u8;
                    for (i, c) in classes.iter().enumerate() {
                        acc += c.weight;
                        if x < acc {
                            idx = i as u8;
                            break;
                        }
                        idx = i as u8; // fp slack: the last class absorbs
                    }
                    idx
                })
                .collect()
        } else {
            Vec::new()
        };
        Population {
            profile,
            arrival: ArrivalProcess::None,
            present: BitSet::full(n),
            protected: BitSet::new(n),
            pending: BitSet::new(n),
            arrival_exempt: BitSet::new(n),
            class,
            n_present: n,
            rng,
        }
    }

    /// A population that never churns (for legacy construction paths).
    pub fn closed(n: usize) -> Self {
        Population::new(n, ChurnProfile::none(), DetRng::seed_from(0))
    }

    /// Mark `node` as never departing (origin seeds, attacker peers,
    /// broadcasters). Also readmits it if currently absent or pending.
    pub fn protect(&mut self, node: usize) {
        self.protected.insert(node);
        self.pending.remove(node);
        if self.present.insert(node) {
            self.n_present += 1;
        }
    }

    /// Exclude `node` from ever being held back by
    /// [`Population::set_arrival`]: it still churns like any other node
    /// (unlike a [`Population::protect`]ed role, whose departure draws
    /// are skipped entirely), but it is present from round 0. Substrates
    /// mark their attacker nodes this way so a flash crowd is always an
    /// honest-node phenomenon. Draws no randomness; call before
    /// [`Population::set_arrival`].
    pub fn exempt_arrival(&mut self, node: usize) {
        self.arrival_exempt.insert(node);
    }

    /// Install a flash-crowd arrival process: the process's pool of nodes
    /// is withdrawn *now* (lowest-indexed unprotected, unexempted nodes,
    /// capped so at least one node stays present) and admitted by
    /// [`Population::begin_round`] when their round comes. Call after any
    /// [`Population::protect`] / [`Population::exempt_arrival`] calls so
    /// those roles are never held back. Draws no randomness.
    pub fn set_arrival(&mut self, arrival: ArrivalProcess) {
        self.arrival = arrival;
        let n = self.present.universe();
        let mut want = arrival.pool().min(n.saturating_sub(1));
        for i in 0..n {
            if want == 0 {
                break;
            }
            if self.protected.contains(i)
                || self.arrival_exempt.contains(i)
                || !self.present.contains(i)
            {
                continue;
            }
            if self.n_present <= 1 {
                break; // keep at least one node in the system
            }
            if self.present.remove(i) {
                self.n_present -= 1;
            }
            self.pending.insert(i);
            want -= 1;
        }
    }

    /// The churn profile in force.
    pub fn profile(&self) -> &ChurnProfile {
        &self.profile
    }

    /// The arrival process in force.
    pub fn arrival(&self) -> &ArrivalProcess {
        &self.arrival
    }

    /// The uniform churn rates in force, for single-class profiles (the
    /// common case); the first cohort's rates otherwise.
    pub fn spec(&self) -> &ChurnSpec {
        &self.profile.classes[0].spec
    }

    /// Whether membership can change at all: churn with a positive leave
    /// rate, or an arrival process. Sims use this to keep per-node
    /// presence probes out of closed-population hot paths.
    pub fn has_dynamics(&self) -> bool {
        self.profile.is_active() || self.arrival.is_some()
    }

    /// Whether `node` is currently in the system.
    #[inline]
    pub fn is_present(&self, node: usize) -> bool {
        self.present.contains(node)
    }

    /// Whether `node` has ever been in the system (false only for
    /// flash-crowd members still waiting to arrive).
    #[inline]
    pub fn ever_arrived(&self, node: usize) -> bool {
        !self.pending.contains(node)
    }

    /// The membership set.
    pub fn present(&self) -> &BitSet {
        &self.present
    }

    /// The churn rng stream, for test instrumentation: the no-draw
    /// guarantees in the module docs (inactive profiles and pure
    /// arrivals never touch the stream) are asserted by comparing
    /// snapshots before and after stepping.
    pub fn rng_snapshot(&self) -> &DetRng {
        &self.rng
    }

    /// Nodes currently present. `O(1)`: served from the incrementally
    /// maintained count, not a popcount scan.
    pub fn present_count(&self) -> usize {
        debug_assert_eq!(self.n_present, self.present.len(), "count cache drift");
        self.n_present
    }

    /// Flash-crowd nodes still waiting to arrive.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The fraction of the universe currently present — the
    /// `present_fraction` observation `presence-above`/`presence-below`
    /// schedule triggers key on. Allocation-free and `O(1)`.
    pub fn present_fraction(&self) -> f64 {
        let n = self.present.universe();
        if n == 0 {
            1.0
        } else {
            self.present_count() as f64 / n as f64
        }
    }

    /// Whether every node is present (always true without dynamics).
    /// `O(1)` via the cached count.
    pub fn all_present(&self) -> bool {
        self.present_count() == self.present.universe()
    }

    /// The cohort `node` belongs to.
    fn class_spec(&self, node: usize) -> &ChurnSpec {
        let idx = if self.class.is_empty() {
            0
        } else {
            self.class[node] as usize
        };
        &self.profile.classes[idx].spec
    }

    /// Admit up to `k` absent nodes in ascending index order: fresh
    /// (pending) arrivals first, then — unless `fresh_only` —
    /// churned-out returners. Arrival-exempt nodes never ride a wave
    /// back in: their returns stay governed by their own rejoin draws,
    /// so an attacker's comeback is never synchronized to the crowd.
    /// No randomness, no allocation.
    fn admit(&mut self, k: usize, fresh_only: bool) {
        let n = self.present.universe();
        let mut left = k;
        for i in 0..n {
            if left == 0 {
                return;
            }
            if self.pending.contains(i) {
                self.pending.remove(i);
                if self.present.insert(i) {
                    self.n_present += 1;
                }
                left -= 1;
            }
        }
        if fresh_only {
            return;
        }
        for i in 0..n {
            if left == 0 {
                return;
            }
            if !self.present.contains(i) && !self.arrival_exempt.contains(i) {
                if self.present.insert(i) {
                    self.n_present += 1;
                }
                left -= 1;
            }
        }
    }

    /// Advance membership into round `t`: the arrival process admits any
    /// wave due this round (index-ordered, no randomness), then present
    /// unprotected nodes leave with their cohort's `leave` probability
    /// and absent arrived nodes return with their cohort's `rejoin`
    /// probability. Nodes still waiting for their flash crowd draw
    /// nothing — they cannot rejoin a system they never joined.
    ///
    /// A no-op (no rng draws, no allocation) when the profile is
    /// inactive — including explicitly configured zero-rate profiles —
    /// and no arrivals are configured.
    // lint: hot-loop
    pub fn begin_round(&mut self, t: Round) {
        match self.arrival {
            ArrivalProcess::None => {}
            ArrivalProcess::Burst {
                round,
                size,
                period,
            } => {
                let due = match period {
                    None => t == round,
                    Some(p) => t >= round && (t - round).is_multiple_of(p),
                };
                if due {
                    // One-shot bursts admit fresh arrivals only (the
                    // pool never exceeds `size`); periodic waves also
                    // pull churned-out nodes back in.
                    self.admit(size as usize, period.is_none());
                }
            }
            ArrivalProcess::Ramp { start, rate, .. } => {
                if t >= start && !self.pending.is_empty() {
                    self.admit(rate as usize, true);
                }
            }
        }
        if !self.profile.is_active() {
            return;
        }
        let n = self.present.universe();
        for i in 0..n {
            if self.pending.contains(i) {
                continue; // not yet arrived: invisible to churn
            }
            let spec = *self.class_spec(i);
            if self.present.contains(i) {
                if !self.protected.contains(i)
                    && self.rng.chance(spec.leave)
                    && self.present.remove(i)
                {
                    self.n_present -= 1;
                }
            } else if self.rng.chance(spec.rejoin) && self.present.insert(i) {
                self.n_present += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_churn_is_a_noop() {
        let mut pop = Population::new(8, ChurnSpec::none(), DetRng::seed_from(1));
        let rng_before = pop.rng.clone();
        for t in 0..100 {
            pop.begin_round(t);
        }
        assert!(pop.all_present());
        assert_eq!(pop.present_count(), 8);
        assert_eq!(pop.rng, rng_before, "no churn draws no randomness");
    }

    #[test]
    fn zero_rate_profile_draws_nothing() {
        // The regression the no-draw guard covers: churn configured at an
        // explicit zero leave rate — uniform or multi-class — must not
        // touch the rng fork, so adding it cannot perturb anything
        // derived downstream of the membership stream.
        let specs = [
            ChurnProfile::uniform(ChurnSpec::new(0.0, 0.5)),
            ChurnProfile::parse("0.7:0:0.9/0.3:0:0.1").unwrap(),
        ];
        for profile in specs {
            assert!(!profile.is_active(), "{profile:?} is zero-rate");
            let mut pop = Population::new(12, profile, DetRng::seed_from(3));
            let rng_before = pop.rng.clone();
            for t in 0..200 {
                pop.begin_round(t);
            }
            assert!(pop.all_present());
            assert_eq!(
                pop.rng, rng_before,
                "zero-rate churn must not draw randomness"
            );
        }
    }

    #[test]
    fn one_class_profile_draws_the_uniform_stream() {
        // The degenerate profile must be byte-compatible with PR 3's
        // uniform ChurnSpec: same membership history, same rng positions.
        let spec = ChurnSpec::new(0.1, 0.3);
        let history = |profile: ChurnProfile| {
            let mut pop = Population::new(30, profile, DetRng::seed_from(9));
            let mut trace = Vec::new();
            for t in 0..200 {
                pop.begin_round(t);
                trace.push(pop.present().iter().collect::<Vec<_>>());
            }
            (trace, pop.rng)
        };
        assert_eq!(
            history(ChurnProfile::uniform(spec)),
            history(ChurnProfile::from(spec))
        );
        assert_eq!(
            history(ChurnProfile::uniform(spec)),
            history(ChurnProfile::parse("uniform:0.1:0.3").unwrap())
        );
    }

    #[test]
    fn churn_is_deterministic_and_replayable() {
        let run = || {
            let mut pop = Population::new(30, ChurnSpec::new(0.1, 0.3), DetRng::seed_from(9));
            let mut trace = Vec::new();
            for t in 0..200 {
                pop.begin_round(t);
                trace.push(pop.present().iter().collect::<Vec<_>>());
            }
            trace
        };
        assert_eq!(run(), run(), "same seed, same membership history");
    }

    #[test]
    fn nodes_leave_and_return() {
        let mut pop = Population::new(20, ChurnSpec::new(0.2, 0.5), DetRng::seed_from(3));
        let mut ever_absent = 0usize;
        let mut ever_returned = 0usize;
        let mut absent = [false; 20];
        for t in 0..300 {
            pop.begin_round(t);
            for (i, was_absent) in absent.iter_mut().enumerate() {
                if !pop.is_present(i) {
                    if !*was_absent {
                        ever_absent += 1;
                    }
                    *was_absent = true;
                } else if *was_absent {
                    ever_returned += 1;
                    *was_absent = false;
                }
            }
        }
        assert!(ever_absent > 0, "nodes depart under churn");
        assert!(ever_returned > 0, "nodes come back under churn");
    }

    #[test]
    fn protected_nodes_never_leave() {
        let mut pop = Population::new(10, ChurnSpec::new(0.9, 0.1), DetRng::seed_from(5));
        pop.protect(4);
        for t in 0..200 {
            pop.begin_round(t);
            assert!(pop.is_present(4));
        }
    }

    #[test]
    fn heterogeneous_classes_churn_at_their_own_rates() {
        // A stable core (never leaves) next to a maximally transient
        // fringe: only fringe members should ever be absent.
        let profile = ChurnProfile::parse("0.5:0:0/0.5:0.5:0.5").unwrap();
        let mut pop = Population::new(40, profile, DetRng::seed_from(11));
        let stable: Vec<usize> = (0..40)
            .filter(|&i| pop.class_spec(i).leave == 0.0)
            .collect();
        assert!(
            !stable.is_empty() && stable.len() < 40,
            "both cohorts populated (got {} stable)",
            stable.len()
        );
        let mut fringe_ever_absent = false;
        for t in 0..300 {
            pop.begin_round(t);
            for &i in &stable {
                assert!(pop.is_present(i), "stable node {i} left at round {t}");
            }
            fringe_ever_absent |= !pop.all_present();
        }
        assert!(fringe_ever_absent, "the transient fringe churns");
    }

    #[test]
    fn class_assignment_is_deterministic_and_weighted() {
        let profile = ChurnProfile::parse("0.8:0.01:0.5/0.2:0.3:0.3").unwrap();
        let assign = || {
            let pop = Population::new(400, profile, DetRng::seed_from(21));
            pop.class.clone()
        };
        let a = assign();
        assert_eq!(a, assign(), "same seed, same cohorts");
        let fringe = a.iter().filter(|&&c| c == 1).count();
        assert!(
            (40..160).contains(&fringe),
            "~20% of 400 nodes in the fringe, got {fringe}"
        );
    }

    #[test]
    fn burst_admits_the_crowd_at_its_round() {
        let mut pop = Population::new(20, ChurnSpec::none(), DetRng::seed_from(1));
        pop.set_arrival(ArrivalProcess::Burst {
            round: 6,
            size: 8,
            period: None,
        });
        assert_eq!(pop.present_count(), 12);
        assert_eq!(pop.pending_count(), 8);
        for t in 0..6 {
            pop.begin_round(t);
            assert_eq!(pop.present_count(), 12, "crowd still outside at {t}");
            assert!(!pop.ever_arrived(0));
        }
        pop.begin_round(6);
        assert!(pop.all_present(), "the whole crowd lands at round 6");
        assert_eq!(pop.pending_count(), 0);
        assert!(pop.ever_arrived(0));
    }

    #[test]
    fn periodic_burst_readmits_churned_out_nodes() {
        // Heavy churn with no rejoin: nodes bleed out; every wave round
        // the burst pulls up to `size` of them back in.
        let mut pop = Population::new(30, ChurnSpec::new(0.4, 0.0), DetRng::seed_from(2));
        pop.set_arrival(ArrivalProcess::Burst {
            round: 5,
            size: 10,
            period: Some(5),
        });
        let mut regained = false;
        let mut last = pop.present_count();
        for t in 0..60 {
            pop.begin_round(t);
            let now = pop.present_count();
            if t >= 5 && t % 5 == 0 && now > last {
                regained = true;
            }
            last = now;
        }
        assert!(regained, "waves re-admit churned-out nodes");
    }

    #[test]
    fn ramp_admits_at_rate() {
        let mut pop = Population::new(20, ChurnSpec::none(), DetRng::seed_from(3));
        pop.set_arrival(ArrivalProcess::Ramp {
            start: 4,
            size: 9,
            rate: 3,
        });
        assert_eq!(pop.present_count(), 11);
        let counts: Vec<usize> = (0..10)
            .map(|t| {
                pop.begin_round(t);
                pop.present_count()
            })
            .collect();
        assert_eq!(counts, vec![11, 11, 11, 11, 14, 17, 20, 20, 20, 20]);
    }

    #[test]
    fn protect_wins_over_holdback() {
        let mut pop = Population::new(6, ChurnSpec::none(), DetRng::seed_from(4));
        pop.protect(0);
        pop.protect(1);
        pop.set_arrival(ArrivalProcess::Burst {
            round: 3,
            size: 6,
            period: None,
        });
        // Protected nodes stay (and satisfy the keep-one-present floor);
        // every unprotected node joins the held-back pool.
        assert!(pop.is_present(0) && pop.is_present(1));
        assert_eq!(pop.present_count(), 2);
        pop.begin_round(0);
        pop.begin_round(1);
        pop.begin_round(2);
        assert_eq!(pop.present_count(), 2);
        pop.begin_round(3);
        assert!(pop.all_present());
    }

    #[test]
    fn arrivals_draw_no_randomness() {
        let mut pop = Population::new(16, ChurnSpec::none(), DetRng::seed_from(5));
        pop.set_arrival(ArrivalProcess::Burst {
            round: 2,
            size: 5,
            period: Some(3),
        });
        let rng_before = pop.rng.clone();
        for t in 0..50 {
            pop.begin_round(t);
        }
        assert_eq!(pop.rng, rng_before, "pure arrivals are randomness-free");
        assert!(pop.all_present());
    }

    #[test]
    fn pending_nodes_do_not_rejoin_through_churn() {
        // Churn rejoin must not leak flash-crowd members in early: until
        // their burst lands they are invisible to the churn loop.
        let mut pop = Population::new(20, ChurnSpec::new(0.05, 1.0), DetRng::seed_from(6));
        pop.set_arrival(ArrivalProcess::Burst {
            round: 30,
            size: 10,
            period: None,
        });
        for t in 0..30 {
            pop.begin_round(t);
            assert_eq!(pop.pending_count(), 10, "crowd intact at round {t}");
        }
        pop.begin_round(30);
        assert_eq!(pop.pending_count(), 0);
    }

    #[test]
    fn present_fraction_tracks_membership() {
        let mut pop = Population::new(10, ChurnSpec::none(), DetRng::seed_from(7));
        assert_eq!(pop.present_fraction(), 1.0);
        pop.set_arrival(ArrivalProcess::Burst {
            round: 1,
            size: 5,
            period: None,
        });
        assert_eq!(pop.present_fraction(), 0.5);
        pop.begin_round(0);
        pop.begin_round(1);
        assert_eq!(pop.present_fraction(), 1.0);
    }

    #[test]
    fn spec_parse_grammar() {
        assert_eq!(ChurnSpec::parse("none").unwrap(), ChurnSpec::none());
        assert_eq!(
            ChurnSpec::parse("0.02").unwrap(),
            ChurnSpec::new(0.02, 0.25)
        );
        assert_eq!(
            ChurnSpec::parse("0.02:0.5").unwrap(),
            ChurnSpec::new(0.02, 0.5)
        );
        for bad in ["", "x", "1.5", "0.1:y", "0.1:0.2:0.3", "0.1:-0.2"] {
            assert!(ChurnSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn profile_parse_grammar() {
        assert_eq!(ChurnProfile::parse("none").unwrap(), ChurnProfile::none());
        assert_eq!(
            ChurnProfile::parse("uniform:0.05").unwrap(),
            ChurnProfile::uniform(ChurnSpec::new(0.05, 0.25))
        );
        assert_eq!(
            ChurnProfile::parse("uniform:0.05:0.5").unwrap(),
            ChurnProfile::uniform(ChurnSpec::new(0.05, 0.5))
        );
        let two = ChurnProfile::parse("0.9:0.002:0.5/0.1:0.2:0.3").unwrap();
        assert_eq!(two.classes().len(), 2);
        assert_eq!(two.classes()[0].weight, 0.9);
        assert_eq!(two.classes()[1].spec, ChurnSpec::new(0.2, 0.3));
        assert!(two.is_active());
        for bad in [
            "",
            "x",
            "uniform:2",
            "0.5:0.1",
            "0.5:0.1:0.2:0.3",
            "-1:0.1:0.2",
            "0:0.1:0.2",
            "0.5:1.5:0.2",
            "a:0.1:0.2",
            "1:0:0/1:0:0/1:0:0/1:0:0/1:0:0",
        ] {
            assert!(ChurnProfile::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn arrival_parse_grammar() {
        assert_eq!(ArrivalProcess::parse("none").unwrap(), ArrivalProcess::None);
        assert_eq!(
            ArrivalProcess::parse("burst:30,12").unwrap(),
            ArrivalProcess::Burst {
                round: 30,
                size: 12,
                period: None
            }
        );
        assert_eq!(
            ArrivalProcess::parse("burst:30,12,10").unwrap(),
            ArrivalProcess::Burst {
                round: 30,
                size: 12,
                period: Some(10)
            }
        );
        assert_eq!(
            ArrivalProcess::parse("ramp:5,20").unwrap(),
            ArrivalProcess::Ramp {
                start: 5,
                size: 20,
                rate: 1
            }
        );
        assert_eq!(
            ArrivalProcess::parse("ramp:5,20,4").unwrap(),
            ArrivalProcess::Ramp {
                start: 5,
                size: 20,
                rate: 4
            }
        );
        for bad in [
            "",
            "burst",
            "burst:",
            "burst:5",
            "burst:5,x",
            "burst:5,3,0",
            "burst:5,3,2,1",
            "ramp:5",
            "ramp:5,3,0",
            "flood:5,3",
        ] {
            assert!(ArrivalProcess::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn profiles_compare_equal_across_construction_paths() {
        // uniform() repeats the spec through the padding slots while
        // new()/parse() zero-pad; equality must ignore the padding.
        let spec = ChurnSpec::new(0.1, 0.3);
        assert_eq!(
            ChurnProfile::uniform(spec),
            ChurnProfile::new(&[ChurnClass { weight: 1.0, spec }]).unwrap()
        );
        assert_eq!(
            ChurnProfile::uniform(spec),
            ChurnProfile::parse("1:0.1:0.3").unwrap()
        );
        assert_ne!(
            ChurnProfile::uniform(spec),
            ChurnProfile::parse("0.5:0.1:0.3/0.5:0.1:0.3").unwrap(),
            "different cohort counts stay unequal"
        );
    }

    #[test]
    fn arrival_parse_rejects_oversized_counts() {
        // Sizes and rates are u32; values beyond that must error, not
        // silently wrap to a tiny (or zero-size) crowd.
        let too_big = (u64::from(u32::MAX) + 1).to_string();
        for bad in [
            format!("burst:5,{too_big}"),
            format!("ramp:5,{too_big}"),
            format!("ramp:5,3,{too_big}"),
        ] {
            let err = ArrivalProcess::parse(&bad).unwrap_err();
            assert!(err.contains("exceeds"), "{bad}: {err}");
        }
        assert_eq!(
            ArrivalProcess::parse(&format!("burst:{too_big},3"))
                .unwrap()
                .pool(),
            3,
            "rounds are u64 and may exceed u32"
        );
    }

    #[test]
    fn periodic_waves_never_readmit_exempt_nodes() {
        // An arrival-exempt (attacker) node that churns out must come
        // back only through its own rejoin draws — never synchronized
        // to a burst wave. With rejoin = 0 it stays out forever.
        let mut pop = Population::new(10, ChurnSpec::new(1.0, 0.0), DetRng::seed_from(9));
        pop.exempt_arrival(0);
        pop.set_arrival(ArrivalProcess::Burst {
            round: 2,
            size: 10,
            period: Some(2),
        });
        for t in 0..30 {
            pop.begin_round(t);
            if t >= 1 {
                assert!(
                    !pop.is_present(0),
                    "wave at round {t} re-admitted the exempt node"
                );
            }
        }
    }

    #[test]
    fn arrival_parse_accepts_colon_separators() {
        // The --curve channel splits on commas, so the colon form must
        // parse identically (as the adaptive grammar's does).
        assert_eq!(
            ArrivalProcess::parse("burst:30:12:10").unwrap(),
            ArrivalProcess::parse("burst:30,12,10").unwrap()
        );
        assert_eq!(
            ArrivalProcess::parse("ramp:5:20:4").unwrap(),
            ArrivalProcess::parse("ramp:5,20,4").unwrap()
        );
    }

    #[test]
    fn exempt_nodes_are_never_held_back_but_still_churn() {
        let mut pop = Population::new(10, ChurnSpec::new(0.9, 0.0), DetRng::seed_from(8));
        pop.exempt_arrival(0);
        pop.exempt_arrival(1);
        pop.set_arrival(ArrivalProcess::Burst {
            round: 50,
            size: 10,
            period: None,
        });
        // The exempt pair stays in; everyone else (bar the keep-one floor,
        // already satisfied) is held back.
        assert!(pop.is_present(0) && pop.is_present(1));
        assert_eq!(pop.present_count(), 2);
        // Unlike protected roles, exempt nodes draw departure randomness
        // and can leave: at leave=0.9 with no rejoin, both are gone fast.
        for t in 0..20 {
            pop.begin_round(t);
        }
        assert!(
            !pop.is_present(0) && !pop.is_present(1),
            "exempt != protected"
        );
    }

    #[test]
    fn arrival_with_size_override() {
        let p = ArrivalProcess::parse("burst:30,12,10")
            .unwrap()
            .with_size(3);
        assert_eq!(p.pool(), 3);
        assert_eq!(ArrivalProcess::None.with_size(9), ArrivalProcess::None);
    }

    #[test]
    fn clamping_and_activity() {
        let c = ChurnSpec::new(2.0, -1.0);
        assert_eq!(c.leave, 1.0);
        assert_eq!(c.rejoin, 0.0);
        assert!(c.is_active());
        assert!(!ChurnSpec::none().is_active());
        assert!(!ChurnSpec::default().is_active());
        assert!(!ChurnProfile::default().is_active());
        assert!(ArrivalProcess::default() == ArrivalProcess::None);
    }
}
