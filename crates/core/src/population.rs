//! Population churn: *who is even present*, as a first-class,
//! cross-substrate dimension.
//!
//! Real deployments are never the closed populations the paper's figures
//! assume — peers arrive, crash and come back. Churn interacts with the
//! lotus-eater attack in both directions: departures shrink the honest
//! service pool the isolated nodes depend on, while arrivals dilute the
//! attacker's satiated set. This module gives every substrate the same
//! deterministic arrival/departure process:
//!
//! * [`ChurnSpec`] — per-round leave/rejoin probabilities, `Copy`,
//!   parseable from the `lotus-bench --churn` grammar;
//! * [`Population`] — the per-run membership tracker: a
//!   [`BitSet`](crate::bitset::BitSet) of present nodes advanced once per
//!   round by [`Population::begin_round`], driven by a dedicated
//!   [`DetRng`] fork so enabling churn never perturbs any other
//!   randomness stream.
//!
//! Nodes keep their state while absent (windows go stale, balances and
//! piece maps persist) and resume participating on return — a crash,
//! not an identity change. Roles a substrate cannot lose (origin seeds,
//! attacker peers) are marked [`Population::protect`]ed and never leave.
//!
//! # Hot-loop allocation invariants
//!
//! [`Population::begin_round`] never allocates: it flips bits in the
//! membership set in place. With [`ChurnSpec::none`] (the default) it
//! returns immediately without drawing randomness, so churn-free runs are
//! bit-identical to pre-churn behaviour per seed (the golden tests in
//! `crates/bench/tests/schedule_golden.rs` are the guardrail), and
//! membership checks compile down to one bit probe.

use crate::bitset::BitSet;
use netsim::rng::DetRng;
use netsim::Round;

/// Deterministic arrival/departure rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Per-round probability a present (unprotected) node departs.
    pub leave: f64,
    /// Per-round probability an absent node rejoins.
    pub rejoin: f64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec::none()
    }
}

impl ChurnSpec {
    /// No churn: everyone present for the whole run (the default).
    pub fn none() -> Self {
        ChurnSpec {
            leave: 0.0,
            rejoin: 0.0,
        }
    }

    /// Churn with the given per-round leave/rejoin probabilities
    /// (clamped to `[0, 1]`).
    pub fn new(leave: f64, rejoin: f64) -> Self {
        ChurnSpec {
            leave: leave.clamp(0.0, 1.0),
            rejoin: rejoin.clamp(0.0, 1.0),
        }
    }

    /// Whether any churn can happen at all.
    pub fn is_active(&self) -> bool {
        self.leave > 0.0
    }

    /// Parse the `lotus-bench --churn` grammar: `none`, `<leave>` (rejoin
    /// defaults to `0.25`) or `<leave>:<rejoin>`.
    ///
    /// # Errors
    ///
    /// Returns a message on non-numeric or out-of-range fields.
    pub fn parse(spec: &str) -> Result<ChurnSpec, String> {
        if spec == "none" {
            return Ok(ChurnSpec::none());
        }
        let mut parts = spec.split(':');
        let mut prob = |what: &str| -> Result<Option<f64>, String> {
            match parts.next() {
                None => Ok(None),
                Some(v) => {
                    let p = v
                        .parse::<f64>()
                        .map_err(|_| format!("churn {spec:?}: {what} is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("churn {spec:?}: {what} {p} outside [0, 1]"));
                    }
                    Ok(Some(p))
                }
            }
        };
        let leave = prob("leave probability")?
            .ok_or_else(|| format!("churn {spec:?}: missing leave probability"))?;
        let rejoin = prob("rejoin probability")?.unwrap_or(0.25);
        if parts.next().is_some() {
            return Err(format!("churn {spec:?}: trailing fields"));
        }
        Ok(ChurnSpec::new(leave, rejoin))
    }
}

/// Per-run membership under a [`ChurnSpec`], deterministic in the rng the
/// simulator forks for it.
///
/// ```
/// use lotus_core::population::{ChurnSpec, Population};
/// use netsim::rng::DetRng;
///
/// let mut pop = Population::new(10, ChurnSpec::new(0.5, 0.5), DetRng::seed_from(7));
/// pop.protect(0); // e.g. an origin seed that must never leave
/// for t in 0..20 {
///     pop.begin_round(t);
///     assert!(pop.is_present(0));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    spec: ChurnSpec,
    present: BitSet,
    protected: BitSet,
    rng: DetRng,
}

impl Population {
    /// A population of `n` nodes, all initially present. Pass a dedicated
    /// rng fork (conventionally `rng.fork("population")`) so churn draws
    /// never perturb the simulation's other streams.
    pub fn new(n: usize, spec: ChurnSpec, rng: DetRng) -> Self {
        Population {
            spec,
            present: BitSet::full(n),
            protected: BitSet::new(n),
            rng,
        }
    }

    /// A population that never churns (for legacy construction paths).
    pub fn closed(n: usize) -> Self {
        Population::new(n, ChurnSpec::none(), DetRng::seed_from(0))
    }

    /// Mark `node` as never departing (origin seeds, attacker peers,
    /// broadcasters). Also readmits it if currently absent.
    pub fn protect(&mut self, node: usize) {
        self.protected.insert(node);
        self.present.insert(node);
    }

    /// The churn rates in force.
    pub fn spec(&self) -> &ChurnSpec {
        &self.spec
    }

    /// Whether `node` is currently in the system.
    #[inline]
    pub fn is_present(&self, node: usize) -> bool {
        self.present.contains(node)
    }

    /// The membership set.
    pub fn present(&self) -> &BitSet {
        &self.present
    }

    /// Nodes currently present.
    pub fn present_count(&self) -> usize {
        self.present.len()
    }

    /// Whether every node is present (always true without churn).
    pub fn all_present(&self) -> bool {
        self.present.is_full()
    }

    /// Advance membership into round `t`: present unprotected nodes leave
    /// with probability `leave`, absent nodes return with probability
    /// `rejoin`. A no-op (no rng draws, no allocation) without churn.
    pub fn begin_round(&mut self, t: Round) {
        let _ = t; // membership depends only on the rng stream position
        if !self.spec.is_active() {
            return;
        }
        let n = self.present.universe();
        for i in 0..n {
            if self.present.contains(i) {
                if !self.protected.contains(i) && self.rng.chance(self.spec.leave) {
                    self.present.remove(i);
                }
            } else if self.rng.chance(self.spec.rejoin) {
                self.present.insert(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_churn_is_a_noop() {
        let mut pop = Population::new(8, ChurnSpec::none(), DetRng::seed_from(1));
        let rng_before = pop.rng.clone();
        for t in 0..100 {
            pop.begin_round(t);
        }
        assert!(pop.all_present());
        assert_eq!(pop.present_count(), 8);
        assert_eq!(pop.rng, rng_before, "no churn draws no randomness");
    }

    #[test]
    fn churn_is_deterministic_and_replayable() {
        let run = || {
            let mut pop = Population::new(30, ChurnSpec::new(0.1, 0.3), DetRng::seed_from(9));
            let mut trace = Vec::new();
            for t in 0..200 {
                pop.begin_round(t);
                trace.push(pop.present().iter().collect::<Vec<_>>());
            }
            trace
        };
        assert_eq!(run(), run(), "same seed, same membership history");
    }

    #[test]
    fn nodes_leave_and_return() {
        let mut pop = Population::new(20, ChurnSpec::new(0.2, 0.5), DetRng::seed_from(3));
        let mut ever_absent = 0usize;
        let mut ever_returned = 0usize;
        let mut absent = [false; 20];
        for t in 0..300 {
            pop.begin_round(t);
            for (i, was_absent) in absent.iter_mut().enumerate() {
                if !pop.is_present(i) {
                    if !*was_absent {
                        ever_absent += 1;
                    }
                    *was_absent = true;
                } else if *was_absent {
                    ever_returned += 1;
                    *was_absent = false;
                }
            }
        }
        assert!(ever_absent > 0, "nodes depart under churn");
        assert!(ever_returned > 0, "nodes come back under churn");
    }

    #[test]
    fn protected_nodes_never_leave() {
        let mut pop = Population::new(10, ChurnSpec::new(0.9, 0.1), DetRng::seed_from(5));
        pop.protect(4);
        for t in 0..200 {
            pop.begin_round(t);
            assert!(pop.is_present(4));
        }
    }

    #[test]
    fn spec_parse_grammar() {
        assert_eq!(ChurnSpec::parse("none").unwrap(), ChurnSpec::none());
        assert_eq!(
            ChurnSpec::parse("0.02").unwrap(),
            ChurnSpec::new(0.02, 0.25)
        );
        assert_eq!(
            ChurnSpec::parse("0.02:0.5").unwrap(),
            ChurnSpec::new(0.02, 0.5)
        );
        for bad in ["", "x", "1.5", "0.1:y", "0.1:0.2:0.3", "0.1:-0.2"] {
            assert!(ChurnSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn clamping_and_activity() {
        let c = ChurnSpec::new(2.0, -1.0);
        assert_eq!(c.leave, 1.0);
        assert_eq!(c.rejoin, 0.0);
        assert!(c.is_active());
        assert!(!ChurnSpec::none().is_active());
        assert!(!ChurnSpec::default().is_active());
    }
}
