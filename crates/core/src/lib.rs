//! `lotus-core` — the lotus-eater attack model.
//!
//! This crate holds the paper's primary intellectual contribution in
//! executable form:
//!
//! * [`token`] — the §3 abstract token-collecting system
//!   `(G, T, sat, f, c, a)`: graph, token set, satiation function, initial
//!   allocation, contact budget and altruism probability;
//! * [`satiation`] — the [`Satiable`](satiation::Satiable) interface every
//!   protocol simulator implements, and an executable
//!   [Observation 3.1](satiation::observation_3_1): *in a
//!   satiation-compatible system, an attacker that can provide tokens
//!   sufficiently rapidly prevents a node from ever providing service*;
//! * [`attack`] — the attacker strategies §3 analyses (graph cuts, rare
//!   tokens, mass satiation, rotation, budgets);
//! * [`schedule`] — attack *timing*: the cross-substrate
//!   [`AttackSchedule`](schedule::AttackSchedule) (dormant → cooperate →
//!   defect phases, oscillation, metric-threshold triggers, rotation)
//!   every simulator steps deterministically;
//! * [`adaptive`] — *closed-loop* attack timing: the
//!   [`AdaptivePolicy`](adaptive::AdaptivePolicy) bandit that treats
//!   {dormant, cooperate, defect, rotate} as arms and re-plans each
//!   phase from the damage it observes;
//! * [`population`] — population dynamics: heterogeneous churn
//!   ([`ChurnProfile`](population::ChurnProfile)) and flash-crowd
//!   arrivals ([`ArrivalProcess`](population::ArrivalProcess)) driving a
//!   deterministic membership tracker
//!   ([`Population`](population::Population)) every simulator runs under;
//! * [`faults`] — fault injection: lossy links, state-losing crashes and
//!   epoch partitions ([`FaultPlan`](faults::FaultPlan) /
//!   [`FaultState`](faults::FaultState)), the realistic-network
//!   dimension that lets defection hide inside the background fault
//!   rate;
//! * [`digest`] — the digest-exchange substrate primitives: a
//!   fixed-size bloom filter over update ids
//!   ([`BloomDigest`](digest::BloomDigest)) and an exact per-region
//!   summary hash ([`region_hash`](digest::region_hash)), the two
//!   summaries a digest-first gossip round trades before transferring
//!   only the diff — the surface the advertise-then-withhold attack
//!   poisons;
//! * [`soa`] — the sharded struct-of-arrays activity index
//!   ([`ShardMap`](soa::ShardMap)): fixed-size shards over the node
//!   index space with cached activity popcounts, so round loops cost
//!   `O(active)` instead of `O(population)` at million-node scale;
//! * [`proptest_lite`] — the dependency-free property-test harness
//!   (seeded case generation + shrink-by-halving) the population
//!   invariant suites run on;
//! * [`alloc_guard`] — the counting test allocator behind the
//!   zero-allocations-per-steady-state-step regression suite (the
//!   dynamic twin of `lotus-lint`'s static hot-loop rule);
//! * [`defense`] — the four §4 defense principles and their mechanisms;
//! * [`scenario`] — the unified experiment API: the
//!   [`Scenario`](scenario::Scenario) trait every substrate implements,
//!   the common [`ScenarioReport`](scenario::ScenarioReport) metric
//!   vocabulary and the type-erased
//!   [`DynScenario`](scenario::DynScenario) layer that registries and
//!   CLIs drive;
//! * [`sweep`] — the multi-seed parameter-sweep harness behind every
//!   figure, generic over any [`Scenario`](scenario::Scenario);
//! * [`report`] — usability thresholds (the 93 % rule) and
//!   paper-vs-measured crossover records;
//! * [`bitset`] — the dense set representation all simulators share.
//!
//! Protocol-specific machinery lives in sibling crates (`bar-gossip`,
//! `scrip-economy`, `torrent-sim`), all built on [`netsim`].
//!
//! # Example: a cut attack on a grid
//!
//! ```
//! use lotus_core::attack::SatiateCut;
//! use lotus_core::token::{TokenSystem, TokenSystemConfig};
//! use netsim::graph::Graph;
//!
//! let cfg = TokenSystemConfig::builder(Graph::grid(4, 8, false))
//!     .tokens(6)
//!     .build()?;
//! let mut sys = TokenSystem::new(cfg, 42);
//! let mut attack = SatiateCut::grid_column(4, 8, 4);
//! let report = sys.run(&mut attack, 100);
//! // Satiating one grid column (4 of 32 nodes) can starve a whole side.
//! assert!(report.mean_coverage() <= 1.0);
//! # Ok::<(), lotus_core::token::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod alloc_guard;
pub mod attack;
pub mod bitset;
pub mod defense;
pub mod digest;
pub mod faults;
pub mod pool;
pub mod population;
pub mod proptest_lite;
pub mod report;
pub mod satiation;
pub mod scenario;
pub mod schedule;
pub mod soa;
pub mod sweep;
pub mod token;
