//! The paper's §3 abstract token-collecting model `(G, T, sat, f, c, a)`.
//!
//! A system is a connected graph `G` of nodes, a finite token set `T`, a
//! satiation function `sat`, an initial allocation `f` of tokens to nodes,
//! a per-round contact budget `c`, and an altruism probability `a`. Each
//! round every *unsatiated* node contacts up to `c` random neighbours and
//! the pair exchange copies of everything they hold; a *satiated* node
//! stops initiating and responds to requests only with probability `a`.
//! The attacker may, at the start of every round, hand a chosen subset of
//! nodes *all* the tokens (deliberately over-approximating attacker power,
//! as the paper does).
//!
//! This model deliberately strips away protocol detail so the structural
//! questions stand out: which graphs admit cheap cuts, what rare tokens
//! cost to deny, and how much a little altruism `a > 0` buys.

use crate::bitset::BitSet;
use crate::satiation::Satiable;
use netsim::graph::Graph;
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::{NodeId, Round};

/// The satiation function `sat` — when does a node stop wanting tokens?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatFunction {
    /// Satiated only with every token (`sat(i, t, T') = true` iff `T' = T`);
    /// the paper's baseline.
    CollectAll,
    /// Satiated with any `k` distinct tokens — models network-coding-style
    /// designs (Avalanche) where any `k` of `n` coded blocks reconstruct
    /// the content. Used by the X10 coding-defense experiment.
    AnyK(usize),
}

impl SatFunction {
    /// Evaluate the satiation function on a holding set.
    pub fn is_satiated(&self, holdings: &BitSet) -> bool {
        match *self {
            SatFunction::CollectAll => holdings.is_full(),
            SatFunction::AnyK(k) => holdings.len() >= k,
        }
    }

    /// The number of tokens a node still benefits from acquiring.
    pub fn deficit(&self, holdings: &BitSet) -> usize {
        match *self {
            SatFunction::CollectAll => holdings.universe() - holdings.len(),
            SatFunction::AnyK(k) => k.saturating_sub(holdings.len()),
        }
    }
}

/// The initial allocation `f` of tokens to nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Allocation {
    /// Each token starts at `copies` uniformly chosen distinct nodes.
    UniformCopies {
        /// Number of initial holders per token.
        copies: usize,
    },
    /// Token 0 starts at exactly one designated holder; every other token
    /// starts at `copies` uniform nodes. The rare-token attack scenario.
    RareToken {
        /// The unique initial holder of token 0.
        holder: NodeId,
        /// Copies for every other token.
        copies: usize,
    },
    /// Explicit per-token holder lists (index = token id).
    Explicit(Vec<Vec<NodeId>>),
}

/// Configuration of a token-collecting system.
///
/// Use [`TokenSystemConfig::builder`] unless constructing directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenSystemConfig {
    /// The communication graph `G`.
    pub graph: Graph,
    /// `|T|` — number of distinct tokens.
    pub tokens: usize,
    /// The satiation function `sat`.
    pub sat: SatFunction,
    /// The initial allocation `f`.
    pub allocation: Allocation,
    /// `c` — max partners an unsatiated node contacts per round.
    pub contacts_per_round: usize,
    /// `a` — probability a satiated node still responds to a request.
    pub altruism: f64,
}

/// Errors from [`TokenSystemConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The graph has fewer than two nodes.
    GraphTooSmall,
    /// The graph must be connected for the model's guarantees to apply.
    GraphDisconnected,
    /// `tokens` was zero.
    NoTokens,
    /// `contacts_per_round` was zero.
    NoContacts,
    /// The altruism probability was outside `[0, 1]`.
    BadAltruism(f64),
    /// An allocation referenced a token or node out of range.
    BadAllocation(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::GraphTooSmall => write!(f, "graph needs at least two nodes"),
            ConfigError::GraphDisconnected => write!(f, "graph must be connected"),
            ConfigError::NoTokens => write!(f, "token set must be non-empty"),
            ConfigError::NoContacts => write!(f, "contacts per round must be at least 1"),
            ConfigError::BadAltruism(a) => write!(f, "altruism {a} outside [0, 1]"),
            ConfigError::BadAllocation(why) => write!(f, "bad allocation: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl TokenSystemConfig {
    /// Start building a config on the given graph.
    pub fn builder(graph: Graph) -> TokenSystemConfigBuilder {
        TokenSystemConfigBuilder {
            graph,
            tokens: 16,
            sat: SatFunction::CollectAll,
            allocation: Allocation::UniformCopies { copies: 3 },
            contacts_per_round: 1,
            altruism: 0.0,
        }
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.graph.len() < 2 {
            return Err(ConfigError::GraphTooSmall);
        }
        if !self.graph.is_connected() {
            return Err(ConfigError::GraphDisconnected);
        }
        if self.tokens == 0 {
            return Err(ConfigError::NoTokens);
        }
        if self.contacts_per_round == 0 {
            return Err(ConfigError::NoContacts);
        }
        if !(0.0..=1.0).contains(&self.altruism) {
            return Err(ConfigError::BadAltruism(self.altruism));
        }
        let n = self.graph.len();
        match &self.allocation {
            Allocation::UniformCopies { copies } => {
                if *copies == 0 || *copies > n as usize {
                    return Err(ConfigError::BadAllocation(format!(
                        "copies {copies} not in 1..={n}"
                    )));
                }
            }
            Allocation::RareToken { holder, copies } => {
                if holder.0 >= n {
                    return Err(ConfigError::BadAllocation(format!(
                        "holder {holder} out of range"
                    )));
                }
                if *copies == 0 || *copies > n as usize {
                    return Err(ConfigError::BadAllocation(format!(
                        "copies {copies} not in 1..={n}"
                    )));
                }
            }
            Allocation::Explicit(lists) => {
                if lists.len() != self.tokens {
                    return Err(ConfigError::BadAllocation(format!(
                        "expected {} holder lists, got {}",
                        self.tokens,
                        lists.len()
                    )));
                }
                for (tok, holders) in lists.iter().enumerate() {
                    if holders.is_empty() {
                        return Err(ConfigError::BadAllocation(format!(
                            "token {tok} has no initial holder"
                        )));
                    }
                    if holders.iter().any(|h| h.0 >= n) {
                        return Err(ConfigError::BadAllocation(format!(
                            "token {tok} has an out-of-range holder"
                        )));
                    }
                }
            }
        }
        if let SatFunction::AnyK(k) = self.sat {
            if k == 0 || k > self.tokens {
                return Err(ConfigError::BadAllocation(format!(
                    "AnyK({k}) not in 1..={}",
                    self.tokens
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`TokenSystemConfig`].
#[derive(Debug, Clone)]
pub struct TokenSystemConfigBuilder {
    graph: Graph,
    tokens: usize,
    sat: SatFunction,
    allocation: Allocation,
    contacts_per_round: usize,
    altruism: f64,
}

impl TokenSystemConfigBuilder {
    /// Set `|T|`.
    pub fn tokens(mut self, tokens: usize) -> Self {
        self.tokens = tokens;
        self
    }

    /// Set the satiation function.
    pub fn sat(mut self, sat: SatFunction) -> Self {
        self.sat = sat;
        self
    }

    /// Set the initial allocation.
    pub fn allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Set `c`, the per-round contact budget.
    pub fn contacts_per_round(mut self, c: usize) -> Self {
        self.contacts_per_round = c;
        self
    }

    /// Set `a`, the altruism probability.
    pub fn altruism(mut self, a: f64) -> Self {
        self.altruism = a;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Propagates [`TokenSystemConfig::validate`] failures.
    pub fn build(self) -> Result<TokenSystemConfig, ConfigError> {
        let cfg = TokenSystemConfig {
            graph: self.graph,
            tokens: self.tokens,
            sat: self.sat,
            allocation: self.allocation,
            contacts_per_round: self.contacts_per_round,
            altruism: self.altruism,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// A read-only view of the running system handed to attackers.
#[derive(Debug)]
pub struct SystemView<'a> {
    /// Current round (the one about to execute).
    pub round: Round,
    /// Per-node holdings.
    pub holdings: &'a [BitSet],
    /// The communication graph.
    pub graph: &'a Graph,
    /// The satiation function in force.
    pub sat: SatFunction,
}

impl SystemView<'_> {
    /// Whether `node` is satiated under the system's satiation function.
    pub fn is_satiated(&self, node: NodeId) -> bool {
        self.sat.is_satiated(&self.holdings[node.index()])
    }

    /// All current holders of `token`.
    pub fn holders_of(&self, token: usize) -> Vec<NodeId> {
        self.holdings
            .iter()
            .enumerate()
            .filter(|(_, h)| h.contains(token))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Fraction of the token universe held by `node`.
    pub fn coverage(&self, node: NodeId) -> f64 {
        let h = &self.holdings[node.index()];
        if h.universe() == 0 {
            1.0
        } else {
            h.len() as f64 / h.universe() as f64
        }
    }
}

/// Final report of a token-system run.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenReport {
    /// Rounds executed.
    pub rounds: Round,
    /// `(round, satiated fraction)` samples, one per executed round.
    pub satiated_series: Vec<(Round, f64)>,
    /// First round at the *end* of which every node was satiated.
    pub all_satiated_at: Option<Round>,
    /// Final per-node coverage (fraction of tokens held).
    pub coverage: Vec<f64>,
    /// Total tokens served (copies provided to others) per node.
    pub served: Vec<u64>,
    /// Nodes the attacker satiated at least once.
    pub attacked_nodes: Vec<NodeId>,
    /// Per-token reach: the fraction of nodes holding each token at the
    /// end of the run (`token_reach[0]` is the rare-token-denial metric).
    pub token_reach: Vec<f64>,
    /// Fraction of never-attacked nodes that ended the run satiated under
    /// the configured satiation function (the coding-defense metric:
    /// "did the untouched population get the content?").
    pub untouched_satisfied: f64,
    /// Fault-injection counters, present only when the plan was active
    /// (so fault-free reports stay byte-identical to pre-fault ones).
    pub fault_counters: Option<crate::faults::FaultCounters>,
}

impl TokenReport {
    /// Mean final coverage over all nodes.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        self.coverage.iter().sum::<f64>() / self.coverage.len() as f64
    }

    /// Mean final coverage over nodes the attacker never touched.
    pub fn untouched_mean_coverage(&self) -> f64 {
        let attacked: std::collections::BTreeSet<NodeId> =
            self.attacked_nodes.iter().copied().collect();
        let vals: Vec<f64> = self
            .coverage
            .iter()
            .enumerate()
            .filter(|(i, _)| !attacked.contains(&NodeId(*i as u32)))
            .map(|(_, &c)| c)
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Lowest final coverage over all nodes.
    pub fn min_coverage(&self) -> f64 {
        self.coverage.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// The running token-collecting system.
///
/// ```
/// use lotus_core::token::{SatFunction, TokenSystemConfig};
/// use lotus_core::attack::NoAttack;
/// use netsim::graph::Graph;
///
/// let cfg = TokenSystemConfig::builder(Graph::complete(20))
///     .tokens(8)
///     .contacts_per_round(1)
///     .altruism(0.5) // a > 0 guarantees eventual global satiation (§3)
///     .build()?;
/// let mut sys = lotus_core::token::TokenSystem::new(cfg, 7);
/// let report = sys.run(&mut NoAttack, 200);
/// assert!(report.all_satiated_at.is_some(), "gossip completes unattacked");
/// # Ok::<(), lotus_core::token::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TokenSystem {
    cfg: TokenSystemConfig,
    holdings: Vec<BitSet>,
    /// Start-of-round copy of `holdings`, overwritten in place each round
    /// so the gossip loop never clones the holdings vector.
    snapshot: Vec<BitSet>,
    /// Per-node "satiated at start of round" flags, refilled in place.
    satiated_scratch: Vec<bool>,
    /// Reused buffer for per-node partner picks.
    picks_scratch: Vec<usize>,
    /// Reused buffer for the attacker's per-round target list.
    targets_scratch: Vec<NodeId>,
    served: Vec<u64>,
    round: Round,
    rng: DetRng,
    satiated_series: Vec<(Round, f64)>,
    all_satiated_at: Option<Round>,
    attacked: std::collections::BTreeSet<NodeId>,
    /// Attack driven by the [`Scenario`](crate::scenario::Scenario) path;
    /// the legacy [`TokenSystem::run`] entry point takes its attacker as
    /// an argument instead and ignores this field.
    attack: crate::attack::TokenAttack,
    /// Horizon for the scenario path (0 until `Scenario::build` sets it).
    horizon: Round,
    /// Attacker randomness for the scenario path; forked exactly like
    /// [`TokenSystem::run`] forks so both paths see the same stream.
    attack_rng: DetRng,
    /// Attack timing for the scenario path (always-on by default, so the
    /// legacy entry points are unaffected).
    schedule: crate::schedule::ScheduleState,
    /// Membership under churn; closed (everyone always present) unless
    /// the scenario config asks for churn.
    population: crate::population::Population,
    /// Fault injection for the scenario path (inactive by default, so
    /// the legacy entry points are unaffected).
    faults: crate::faults::FaultState,
}

impl TokenSystem {
    /// Create a system in its initial allocation.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`TokenSystemConfig::validate`]; prefer
    /// building configs through the builder, which validates.
    pub fn new(cfg: TokenSystemConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid TokenSystemConfig");
        let n = cfg.graph.len() as usize;
        let mut rng = DetRng::seed_from(seed).fork("token-system");
        let mut holdings = vec![BitSet::new(cfg.tokens); n];
        let mut alloc_rng = rng.fork("allocation");
        match &cfg.allocation {
            Allocation::UniformCopies { copies } => {
                for tok in 0..cfg.tokens {
                    for i in alloc_rng.sample_indices(n, *copies) {
                        holdings[i].insert(tok);
                    }
                }
            }
            Allocation::RareToken { holder, copies } => {
                holdings[holder.index()].insert(0);
                for tok in 1..cfg.tokens {
                    for i in alloc_rng.sample_indices(n, *copies) {
                        holdings[i].insert(tok);
                    }
                }
            }
            Allocation::Explicit(lists) => {
                for (tok, holders) in lists.iter().enumerate() {
                    for h in holders {
                        holdings[h.index()].insert(tok);
                    }
                }
            }
        }
        let _ = rng.next_u64(); // decouple run stream from allocation stream
        let snapshot = holdings.clone();
        TokenSystem {
            cfg,
            holdings,
            snapshot,
            satiated_scratch: vec![false; n],
            picks_scratch: Vec::new(),
            targets_scratch: Vec::new(),
            served: vec![0; n],
            round: 0,
            attack: crate::attack::TokenAttack::none(),
            horizon: 0,
            attack_rng: rng.fork("attacker"),
            schedule: crate::schedule::ScheduleState::new(crate::schedule::AttackSchedule::always()),
            population: crate::population::Population::new(
                n,
                crate::population::ChurnSpec::none(),
                rng.fork("population"),
            ),
            faults: crate::faults::FaultState::new(n, crate::faults::FaultPlan::none(), &rng),
            rng,
            satiated_series: Vec::new(),
            all_satiated_at: None,
            attacked: std::collections::BTreeSet::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TokenSystemConfig {
        &self.cfg
    }

    /// Read-only view for attackers and assertions.
    pub fn view(&self) -> SystemView<'_> {
        SystemView {
            round: self.round,
            holdings: &self.holdings,
            graph: &self.cfg.graph,
            sat: self.cfg.sat,
        }
    }

    /// Grant `node` the full token set (the attacker's power).
    pub fn satiate(&mut self, node: NodeId) {
        // In-place fill: re-satiating an already-attacked node each round
        // (the common steady-state case) must not allocate.
        self.holdings[node.index()].fill();
        self.attacked.insert(node);
    }

    /// Current holdings of `node`.
    pub fn holdings(&self, node: NodeId) -> &BitSet {
        &self.holdings[node.index()]
    }

    /// Cumulative tokens `node` has provided to others.
    pub fn served(&self, node: NodeId) -> u64 {
        self.served[node.index()]
    }

    /// Fraction of nodes currently satiated.
    pub fn satiated_fraction(&self) -> f64 {
        let n = self.holdings.len();
        let sat = self
            .holdings
            .iter()
            .filter(|h| self.cfg.sat.is_satiated(h))
            .count();
        sat as f64 / n as f64
    }

    /// Execute one gossip round (without any attacker action).
    // lint: hot-loop
    fn gossip_round(&mut self) {
        let n = self.holdings.len();
        // Start-of-round state into the persistent scratch buffers: the
        // steady-state round touches no allocator.
        for (snap, h) in self.snapshot.iter_mut().zip(&self.holdings) {
            snap.copy_from(h);
        }
        for (s, h) in self.satiated_scratch.iter_mut().zip(&self.snapshot) {
            *s = self.cfg.sat.is_satiated(h);
        }
        let mut round_rng = self.rng.fork_idx("round", self.round);
        for i in 0..n {
            if self.satiated_scratch[i] || !self.population.is_present(i) || self.faults.is_down(i)
            {
                continue; // satiated nodes stop initiating; absent/crashed can't
            }
            let degree = self.cfg.graph.degree(NodeId(i as u32));
            if degree == 0 {
                continue;
            }
            let c = self.cfg.contacts_per_round.min(degree);
            round_rng.sample_indices_into(degree, c, &mut self.picks_scratch);
            for p in 0..c {
                let j = self.cfg.graph.neighbors(NodeId(i as u32))[self.picks_scratch[p]] as usize;
                if !self.population.is_present(j) || self.faults.is_down(j) {
                    continue; // absent or crashed partner: the contact is wasted
                }
                if !self.faults.link_ok(i, j) {
                    continue; // the partition separates the pair
                }
                if self.satiated_scratch[j] && !round_rng.chance(self.cfg.altruism) {
                    continue; // satiated partner declined (insufficient altruism)
                }
                // Bidirectional copy of start-of-round holdings; each
                // direction draws its own fate (a lost half leaves a
                // one-way exchange — under an inactive plan both always
                // deliver without drawing).
                if self.faults.fate(j, i) != crate::faults::Fate::Drop {
                    self.served[j] += self.snapshot[j].difference_count(&self.snapshot[i]) as u64;
                    self.holdings[i].union_with(&self.snapshot[j]);
                }
                if self.faults.fate(i, j) != crate::faults::Fate::Drop {
                    self.served[i] += self.snapshot[i].difference_count(&self.snapshot[j]) as u64;
                    self.holdings[j].union_with(&self.snapshot[i]);
                }
            }
        }
        self.round += 1;
        let frac = self.satiated_fraction();
        self.satiated_series.push((self.round, frac));
        if self.all_satiated_at.is_none() && frac >= 1.0 {
            self.all_satiated_at = Some(self.round);
        }
    }

    /// Run `rounds` rounds under `attacker`, returning the report.
    ///
    /// Each round the attacker is consulted first (it sees the
    /// start-of-round state) and its chosen targets are satiated before any
    /// gossip happens, exactly as in the paper's model. The attacker rides
    /// the generic pre-round hook seam ([`netsim::round::run_with`]) over
    /// the [`RoundSim`] gossip rounds — the same seam population churn and
    /// schedule stepping use in the scenario path.
    pub fn run(
        &mut self,
        attacker: &mut dyn crate::attack::Attacker,
        rounds: Round,
    ) -> TokenReport {
        let mut attack_rng = self.rng.fork("attacker");
        self.satiated_series.reserve(rounds as usize);
        netsim::round::run_with(self, rounds, |sys, _t| {
            let mut targets = std::mem::take(&mut sys.targets_scratch);
            targets.clear();
            attacker.targets_into(&sys.view(), &mut attack_rng, &mut targets);
            for &t in &targets {
                sys.satiate(t);
            }
            sys.targets_scratch = targets;
        });
        self.report()
    }

    /// Snapshot the report without running further.
    pub fn report(&self) -> TokenReport {
        let n = self.holdings.len();
        let token_reach = (0..self.cfg.tokens)
            .map(|tok| {
                if n == 0 {
                    0.0
                } else {
                    self.holdings.iter().filter(|h| h.contains(tok)).count() as f64 / n as f64
                }
            })
            .collect();
        let untouched: Vec<&BitSet> = self
            .holdings
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.attacked.contains(&NodeId(*i as u32)))
            .map(|(_, h)| h)
            .collect();
        let untouched_satisfied = if untouched.is_empty() {
            0.0
        } else {
            untouched
                .iter()
                .filter(|h| self.cfg.sat.is_satiated(h))
                .count() as f64
                / untouched.len() as f64
        };
        TokenReport {
            rounds: self.round,
            satiated_series: self.satiated_series.clone(),
            all_satiated_at: self.all_satiated_at,
            coverage: self
                .holdings
                .iter()
                .map(|h| {
                    if h.universe() == 0 {
                        1.0
                    } else {
                        h.len() as f64 / h.universe() as f64
                    }
                })
                .collect(),
            served: self.served.clone(),
            attacked_nodes: self.attacked.iter().copied().collect(),
            token_reach,
            untouched_satisfied,
            fault_counters: if self.faults.is_active() {
                Some(self.faults.counters())
            } else {
                None
            },
        }
    }
}

impl RoundSim for TokenSystem {
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "TokenSystem rounds must be sequential");
        self.gossip_round();
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl Satiable for TokenSystem {
    fn node_count(&self) -> u32 {
        self.cfg.graph.len()
    }

    fn is_satiated(&self, node: NodeId) -> bool {
        self.cfg.sat.is_satiated(&self.holdings[node.index()])
    }

    fn service_provided(&self, node: NodeId) -> u64 {
        self.served[node.index()]
    }
}

/// Scenario configuration for the token model: a [`TokenSystemConfig`]
/// plus the horizon the legacy [`TokenSystem::run`] took as an argument,
/// plus the cross-substrate attack-timing and population dimensions.
#[derive(Debug, Clone)]
pub struct TokenScenarioConfig {
    /// The underlying system configuration.
    pub system: TokenSystemConfig,
    /// Rounds to run.
    pub rounds: Round,
    /// When the attacker strikes (default: always on, the pre-schedule
    /// behaviour).
    pub schedule: crate::schedule::AttackSchedule,
    /// Arrival/departure churn (default: none; a uniform
    /// [`ChurnSpec`](crate::population::ChurnSpec) converts to the
    /// degenerate one-class profile).
    pub churn: crate::population::ChurnProfile,
    /// Flash-crowd arrival process (default: none — everyone present
    /// from round 0).
    pub arrival: crate::population::ArrivalProcess,
    /// Fault plan (default: none). A crashed node loses its *holdings*
    /// (unlike a churned-out node, which keeps them while away); the
    /// rare-token holder of [`Allocation::RareToken`] is crash-exempt so
    /// injected faults cannot destroy the content outright.
    pub faults: crate::faults::FaultPlan,
}

impl TokenScenarioConfig {
    /// Pair a system configuration with a horizon (always-on attack, no
    /// churn).
    pub fn new(system: TokenSystemConfig, rounds: Round) -> Self {
        TokenScenarioConfig {
            system,
            rounds,
            schedule: crate::schedule::AttackSchedule::always(),
            churn: crate::population::ChurnProfile::none(),
            arrival: crate::population::ArrivalProcess::None,
            faults: crate::faults::FaultPlan::none(),
        }
    }

    /// Set the attack schedule (builder style).
    pub fn with_schedule(mut self, schedule: crate::schedule::AttackSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Set the churn profile (builder style; a uniform
    /// [`ChurnSpec`](crate::population::ChurnSpec) converts).
    pub fn with_churn(mut self, churn: impl Into<crate::population::ChurnProfile>) -> Self {
        self.churn = churn.into();
        self
    }

    /// Set the flash-crowd arrival process (builder style).
    pub fn with_arrival(mut self, arrival: crate::population::ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Set the fault plan (builder style).
    pub fn with_faults(mut self, faults: crate::faults::FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl TokenSystem {
    /// The canonical-metric observation for metric-threshold schedules:
    /// computed directly from holdings (no report allocation). Coverage
    /// is genuine data from round 0 (the initial allocation), so this
    /// always observes.
    fn observe(&self, key: crate::schedule::MetricKey) -> Option<f64> {
        let mut untouched_sum = 0.0;
        let mut untouched_n = 0usize;
        let mut attacked_sum = 0.0;
        let mut attacked_n = 0usize;
        for (i, h) in self.holdings.iter().enumerate() {
            let cov = if h.universe() == 0 {
                1.0
            } else {
                h.len() as f64 / h.universe() as f64
            };
            if self.attacked.contains(&NodeId(i as u32)) {
                attacked_sum += cov;
                attacked_n += 1;
            } else {
                untouched_sum += cov;
                untouched_n += 1;
            }
        }
        let overall = if untouched_n == 0 {
            0.0
        } else {
            untouched_sum / untouched_n as f64
        };
        Some(match key {
            crate::schedule::MetricKey::OverallDelivery => overall,
            crate::schedule::MetricKey::TargetedService => {
                if attacked_n == 0 {
                    overall
                } else {
                    attacked_sum / attacked_n as f64
                }
            }
            // Live membership state, not a holdings metric.
            crate::schedule::MetricKey::PresentFraction => self.population.present_fraction(),
            // The token substrate has no cut defense to report on.
            crate::schedule::MetricKey::FalseCutRate => return None,
        })
    }
}

impl crate::scenario::Scenario for TokenSystem {
    type Config = TokenScenarioConfig;
    type Attack = crate::attack::TokenAttack;
    type Report = TokenReport;
    const NAME: &'static str = "token";

    fn build(cfg: TokenScenarioConfig, attack: crate::attack::TokenAttack, seed: u64) -> Self {
        let mut sys = TokenSystem::new(cfg.system, seed);
        sys.attack = attack;
        sys.horizon = cfg.rounds;
        // Pre-size the per-round series so steady-state pushes never
        // reallocate mid-run.
        sys.satiated_series.reserve(cfg.rounds as usize);
        // Seed the adaptive policy (if any) from a dedicated fork;
        // forking never advances `sys.rng`, so non-adaptive runs stay
        // bit-identical to the legacy path.
        sys.schedule =
            crate::schedule::ScheduleState::seeded(cfg.schedule, sys.rng.fork("adaptive"));
        // Re-fork the population stream with the configured churn; forking
        // never advances `sys.rng`, so churn-free runs stay bit-identical
        // to the legacy path.
        sys.population = crate::population::Population::new(
            sys.holdings.len(),
            cfg.churn,
            sys.rng.fork("population"),
        );
        // Flash-crowd members are withdrawn now (index-ordered, no
        // randomness) and re-enter with whatever their initial allocation
        // gave them — they have never gossiped.
        sys.population.set_arrival(cfg.arrival);
        // Re-fork the fault layer with the configured plan; forking never
        // advances `sys.rng`, so fault-free runs stay bit-identical. The
        // rare-token holder is crash-exempt: faults degrade dissemination,
        // they must not destroy the content outright.
        sys.faults = crate::faults::FaultState::new(sys.holdings.len(), cfg.faults, &sys.rng);
        if let Allocation::RareToken { holder, .. } = sys.cfg.allocation {
            sys.faults.exempt(holder.index());
        }
        sys
    }

    /// One round, exactly as [`TokenSystem::run`] executes it: the
    /// attacker is consulted on the start-of-round state (when the
    /// schedule says the attack is on), its present targets are satiated,
    /// then gossip happens among present nodes.
    // lint: hot-loop
    fn step(&mut self) -> crate::scenario::StepOutcome {
        use crate::attack::Attacker;
        if self.round >= self.horizon {
            return crate::scenario::StepOutcome::Done;
        }
        self.population.begin_round(self.round);
        self.faults.begin_round(self.round);
        if !self.faults.just_crashed().is_empty() {
            // State-losing crash: unlike a churned-out node, which keeps
            // its holdings while away, a crashed node re-enters with
            // nothing and must regather tokens from its neighbors.
            for i in 0..self.holdings.len() {
                if self.faults.just_crashed().contains(i) {
                    self.holdings[i].clear();
                }
            }
        }
        let observed = self
            .schedule
            .needs_observation()
            .and_then(|k| self.observe(k));
        if self.schedule.is_active(self.round, observed) {
            // The attack, its rng and the target buffer move out during
            // the round so the borrow checker lets the attacker inspect
            // `self.view()`; DetRng clone and Vec take are heap-free.
            let mut attack =
                std::mem::replace(&mut self.attack, crate::attack::TokenAttack::none());
            let mut attack_rng = self.attack_rng.clone();
            let mut targets = std::mem::take(&mut self.targets_scratch);
            targets.clear();
            attack.targets_into(&self.view(), &mut attack_rng, &mut targets);
            self.attack = attack;
            self.attack_rng = attack_rng;
            for &t in &targets {
                if self.population.is_present(t.index()) {
                    self.satiate(t);
                }
            }
            self.targets_scratch = targets;
        }
        self.gossip_round();
        if self.round >= self.horizon {
            crate::scenario::StepOutcome::Done
        } else {
            crate::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> TokenReport {
        TokenSystem::report(self)
    }

    fn arm_trace(&self) -> Option<&[crate::adaptive::TraceEntry]> {
        self.schedule.arm_trace()
    }
}

impl crate::scenario::Summarize for TokenReport {
    /// Common vocabulary for the token model:
    ///
    /// * `overall_delivery` — mean final coverage of never-attacked nodes
    ///   (the population the attack tries to starve);
    /// * `targeted_service` — mean final coverage of attacked nodes
    ///   (satiated nodes hold everything, so this is normally 1.0);
    /// * `usable` — untouched coverage clears
    ///   [`UsabilityThreshold::BAR_GOSSIP`](crate::report::UsabilityThreshold),
    ///   the 93 % bar the workspace uses everywhere.
    fn summarize(&self) -> crate::scenario::ScenarioReport {
        let attacked: std::collections::BTreeSet<NodeId> =
            self.attacked_nodes.iter().copied().collect();
        let targeted: Vec<f64> = self
            .coverage
            .iter()
            .enumerate()
            .filter(|(i, _)| attacked.contains(&NodeId(*i as u32)))
            .map(|(_, &c)| c)
            .collect();
        let overall = self.untouched_mean_coverage();
        let targeted_service = if targeted.is_empty() {
            overall
        } else {
            targeted.iter().sum::<f64>() / targeted.len() as f64
        };
        let mut report = crate::scenario::ScenarioReport::new(
            "token",
            self.rounds,
            overall,
            targeted_service,
            crate::report::UsabilityThreshold::BAR_GOSSIP.usable(overall),
        )
        .with_metric("mean_coverage", self.mean_coverage())
        .with_metric("min_coverage", self.min_coverage())
        .with_metric("untouched_mean_coverage", self.untouched_mean_coverage())
        .with_metric("untouched_satisfied", self.untouched_satisfied)
        .with_metric("attacked_nodes", self.attacked_nodes.len() as f64)
        .with_metric(
            "final_satiated_fraction",
            self.satiated_series.last().map_or(0.0, |&(_, f)| f),
        );
        // -1 when global satiation was never reached, so the metric is
        // total across sweep points.
        report.set_metric(
            "all_satiated_at",
            self.all_satiated_at.map_or(-1.0, |r| r as f64),
        );
        if let Some(&reach) = self.token_reach.first() {
            report.set_metric("token0_reach", reach);
        }
        // Fault metrics appear only under an active plan, keeping
        // fault-free report output byte-identical to pre-fault runs.
        if let Some(fc) = self.fault_counters {
            report = report
                .with_metric("faults_dropped", fc.dropped as f64)
                .with_metric("faults_duplicated", fc.duplicated as f64)
                .with_metric("faults_delayed", fc.delayed as f64)
                .with_metric("faults_crashes", fc.crashes as f64)
                .with_metric("faults_partition_blocked", fc.partition_blocked as f64);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{NoAttack, SatiateRandomFraction};

    fn small_cfg(n: u32, tokens: usize) -> TokenSystemConfig {
        TokenSystemConfig::builder(Graph::complete(n))
            .tokens(tokens)
            .allocation(Allocation::UniformCopies { copies: 2 })
            .build()
            .unwrap()
    }

    #[test]
    fn zero_rate_fault_plan_is_report_invisible() {
        let plan = crate::faults::FaultPlan::parse("loss:0/crash:0:0.5/partition:5:5:0").unwrap();
        let base = TokenScenarioConfig::new(small_cfg(20, 6), 40);
        let zeroed = base.clone().with_faults(plan);
        let a = crate::scenario::run::<TokenSystem>(base, crate::attack::TokenAttack::none(), 41);
        let b = crate::scenario::run::<TokenSystem>(zeroed, crate::attack::TokenAttack::none(), 41);
        assert_eq!(a, b, "zero-rate plans must be byte-invisible");
        assert!(b.fault_counters.is_none());
    }

    #[test]
    fn loss_slows_global_satiation() {
        // a > 0 guarantees eventual global satiation on a fault-free
        // network (§3); loss should visibly delay it.
        let cfg = || {
            TokenSystemConfig::builder(Graph::complete(20))
                .tokens(6)
                .allocation(Allocation::UniformCopies { copies: 2 })
                .altruism(0.5)
                .build()
                .unwrap()
        };
        let clean = crate::scenario::run::<TokenSystem>(
            TokenScenarioConfig::new(cfg(), 200),
            crate::attack::TokenAttack::none(),
            42,
        );
        let lossy = crate::scenario::run::<TokenSystem>(
            TokenScenarioConfig::new(cfg(), 200)
                .with_faults(crate::faults::FaultPlan::parse("loss:0.5").unwrap()),
            crate::attack::TokenAttack::none(),
            42,
        );
        let fc = lossy.fault_counters.expect("plan was active");
        assert!(fc.dropped > 0);
        let done = clean.all_satiated_at.expect("clean run satiates");
        assert!(
            lossy.all_satiated_at.is_none_or(|r| r > done),
            "50% loss slows satiation: clean {done}, lossy {:?}",
            lossy.all_satiated_at
        );
    }

    #[test]
    fn crashes_wipe_holdings_but_spare_the_rare_holder() {
        let cfg = TokenSystemConfig::builder(Graph::complete(16))
            .tokens(4)
            .allocation(Allocation::RareToken {
                holder: NodeId(3),
                copies: 3,
            })
            .build()
            .unwrap();
        let scenario = TokenScenarioConfig::new(cfg, 300)
            .with_faults(crate::faults::FaultPlan::parse("crash:0.05:0.2").unwrap());
        let report =
            crate::scenario::run::<TokenSystem>(scenario, crate::attack::TokenAttack::none(), 43);
        let fc = report.fault_counters.expect("plan was active");
        assert!(fc.crashes > 0, "crashes happened");
        assert!(
            report.token_reach[0] > 0.0,
            "the exempt rare holder keeps token 0 alive"
        );
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            TokenSystemConfig::builder(Graph::complete(1)).build(),
            Err(ConfigError::GraphTooSmall)
        ));
        assert!(matches!(
            TokenSystemConfig::builder(Graph::from_edges(4, &[(0, 1), (2, 3)])).build(),
            Err(ConfigError::GraphDisconnected)
        ));
        assert!(matches!(
            TokenSystemConfig::builder(Graph::complete(4))
                .tokens(0)
                .build(),
            Err(ConfigError::NoTokens)
        ));
        assert!(matches!(
            TokenSystemConfig::builder(Graph::complete(4))
                .contacts_per_round(0)
                .build(),
            Err(ConfigError::NoContacts)
        ));
        assert!(matches!(
            TokenSystemConfig::builder(Graph::complete(4))
                .altruism(1.5)
                .build(),
            Err(ConfigError::BadAltruism(_))
        ));
    }

    #[test]
    fn explicit_allocation_validated() {
        let r = TokenSystemConfig::builder(Graph::complete(4))
            .tokens(2)
            .allocation(Allocation::Explicit(vec![vec![NodeId(0)]]))
            .build();
        assert!(matches!(r, Err(ConfigError::BadAllocation(_))));

        let r = TokenSystemConfig::builder(Graph::complete(4))
            .tokens(1)
            .allocation(Allocation::Explicit(vec![vec![]]))
            .build();
        assert!(matches!(r, Err(ConfigError::BadAllocation(_))));

        let r = TokenSystemConfig::builder(Graph::complete(4))
            .tokens(1)
            .allocation(Allocation::Explicit(vec![vec![NodeId(9)]]))
            .build();
        assert!(matches!(r, Err(ConfigError::BadAllocation(_))));
    }

    #[test]
    fn any_k_validated() {
        let r = TokenSystemConfig::builder(Graph::complete(4))
            .tokens(4)
            .sat(SatFunction::AnyK(5))
            .build();
        assert!(matches!(r, Err(ConfigError::BadAllocation(_))));
    }

    #[test]
    fn config_error_display_nonempty() {
        for e in [
            ConfigError::GraphTooSmall,
            ConfigError::GraphDisconnected,
            ConfigError::NoTokens,
            ConfigError::NoContacts,
            ConfigError::BadAltruism(2.0),
            ConfigError::BadAllocation("x".into()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn unattacked_system_converges_with_altruism() {
        // §3: "any system with a > 0 will eventually end up with all nodes
        // satiated".
        let cfg = TokenSystemConfig::builder(Graph::complete(20))
            .tokens(10)
            .allocation(Allocation::UniformCopies { copies: 2 })
            .altruism(0.25)
            .build()
            .unwrap();
        let mut sys = TokenSystem::new(cfg, 1);
        let report = sys.run(&mut NoAttack, 300);
        assert!(report.all_satiated_at.is_some());
        assert!(report.mean_coverage() >= 1.0 - 1e-12);
    }

    #[test]
    fn zero_altruism_can_strand_stragglers() {
        // With a = 0 the system is satiation-compatible, and the paper
        // notes such systems "may experience difficulties even without an
        // attack if key nodes happen to become satiated": the last
        // collectors can be stranded by unresponsive satiated peers. The
        // run still reaches high coverage.
        let mut sys = TokenSystem::new(small_cfg(20, 10), 1);
        let report = sys.run(&mut NoAttack, 100);
        assert!(report.mean_coverage() > 0.9);
        if report.all_satiated_at.is_none() {
            let stranded = report.coverage.iter().filter(|&&c| c < 1.0).count();
            assert!(stranded > 0);
        }
    }

    #[test]
    fn holdings_are_monotone() {
        let mut sys = TokenSystem::new(small_cfg(12, 8), 3);
        let mut prev: Vec<BitSet> = (0..12).map(|i| sys.holdings(NodeId(i)).clone()).collect();
        for _ in 0..10 {
            sys.gossip_round();
            for i in 0..12u32 {
                let cur = sys.holdings(NodeId(i));
                assert!(prev[i as usize].is_subset(cur), "holdings of {i} shrank");
                prev[i as usize] = cur.clone();
            }
        }
    }

    #[test]
    fn satiated_nodes_stop_serving_without_altruism() {
        // Complete graph, one node pre-satiated, a = 0: that node's served
        // count only grows while *it* was being contacted... with a = 0 it
        // never responds, and it never initiates, so served stays 0.
        let cfg = small_cfg(10, 4);
        let mut sys = TokenSystem::new(cfg, 5);
        sys.satiate(NodeId(0));
        let before = sys.served(NodeId(0));
        for _ in 0..20 {
            sys.gossip_round();
        }
        assert_eq!(sys.served(NodeId(0)), before, "satiated node served others");
    }

    #[test]
    fn altruistic_satiated_nodes_do_serve() {
        let cfg = TokenSystemConfig::builder(Graph::complete(10))
            .tokens(4)
            .allocation(Allocation::Explicit(vec![
                vec![NodeId(0)],
                vec![NodeId(0)],
                vec![NodeId(0)],
                vec![NodeId(0)],
            ]))
            .altruism(1.0)
            .build()
            .unwrap();
        let mut sys = TokenSystem::new(cfg, 5);
        // Node 0 holds everything => satiated. With a = 1 it still responds.
        assert!(sys.is_satiated(NodeId(0)));
        for _ in 0..30 {
            sys.gossip_round();
        }
        assert!(sys.served(NodeId(0)) > 0);
        assert!(
            sys.satiated_fraction() > 0.9,
            "everyone eventually satiated"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = TokenSystem::new(small_cfg(15, 6), 9).run(&mut NoAttack, 30);
        let r2 = TokenSystem::new(small_cfg(15, 6), 9).run(&mut NoAttack, 30);
        assert_eq!(r1, r2);
        let r3 = TokenSystem::new(small_cfg(15, 6), 10).run(&mut NoAttack, 30);
        assert!(r1.satiated_series != r3.satiated_series || r1.coverage != r3.coverage);
    }

    #[test]
    fn attack_marks_attacked_nodes() {
        let mut sys = TokenSystem::new(small_cfg(10, 6), 2);
        let mut att = SatiateRandomFraction::new(0.3);
        let report = sys.run(&mut att, 5);
        assert_eq!(report.attacked_nodes.len(), 3);
        for n in &report.attacked_nodes {
            assert!((report.coverage[n.index()] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rare_token_allocation() {
        let cfg = TokenSystemConfig::builder(Graph::complete(10))
            .tokens(5)
            .allocation(Allocation::RareToken {
                holder: NodeId(3),
                copies: 4,
            })
            .build()
            .unwrap();
        let sys = TokenSystem::new(cfg, 1);
        let holders = sys.view().holders_of(0);
        assert_eq!(holders, vec![NodeId(3)]);
        for tok in 1..5 {
            assert_eq!(sys.view().holders_of(tok).len(), 4);
        }
    }

    #[test]
    fn view_coverage_and_satiated() {
        let mut sys = TokenSystem::new(small_cfg(6, 4), 0);
        sys.satiate(NodeId(2));
        let v = sys.view();
        assert!(v.is_satiated(NodeId(2)));
        assert!((v.coverage(NodeId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn any_k_satiation() {
        let mut h = BitSet::new(10);
        let f = SatFunction::AnyK(3);
        assert!(!f.is_satiated(&h));
        assert_eq!(f.deficit(&h), 3);
        h.insert(0);
        h.insert(5);
        h.insert(9);
        assert!(f.is_satiated(&h));
        assert_eq!(f.deficit(&h), 0);
    }

    #[test]
    fn round_sim_trait_drives_system() {
        let mut sys = TokenSystem::new(small_cfg(8, 4), 4);
        netsim::round::run(&mut sys, 5);
        assert_eq!(sys.rounds_run(), 5);
    }
}
