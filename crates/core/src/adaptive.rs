//! Adaptive bandit attackers: lotus-eaters that *learn* when to defect.
//!
//! PR 3 made attack timing a cross-substrate axis
//! ([`schedule`](crate::schedule)); every schedule there is still
//! *open-loop* — the attacker commits to a phase pattern before the run
//! starts. This module closes the loop the paper leaves open (§2: "By
//! changing who is satiated over time, the attacker could even make the
//! service intermittently unusable for all nodes"): the attacker treats
//! its phase behaviours as **bandit arms** and re-plans each phase from
//! the damage it observes, exactly the template of "Adversarial Attacks
//! on Stochastic Bandits" (Jun et al.) and "Action-Manipulation Attacks
//! Against Stochastic Bandits" (Liu & Lai) — except here the *attacker*
//! is the bandit player and the victim system is the environment.
//!
//! * [`AttackMode`] — the four arms: stay dormant, cooperate while
//!   re-aiming, defect, or defect while rotating the target set;
//! * [`AdaptiveSpec`] — policy + phase length + exploration parameter,
//!   `Copy`, parseable from the `lotus-bench --adaptive` grammar;
//! * [`AdaptivePolicy`] — the deterministic per-run bandit stepper
//!   [`ScheduleState`](crate::schedule::ScheduleState) embeds: epsilon-
//!   greedy or UCB1 arm selection over per-arm
//!   [`Running`](netsim::metrics::Running) reward statistics, fed from
//!   the same `Option<f64>` metric observations the schedule layer
//!   already consumes;
//! * [`TraceEntry`] — the per-phase arm trace experiments export to show
//!   *which* schedule the bandit converges to per substrate.
//!
//! # Reward model
//!
//! The bandit maximizes observed **damage**: each round the simulator
//! reports the canonical metric the spec names (default
//! `overall_delivery`) and the policy credits `1 − metric` to the arm
//! currently played. An absent observation (`None` — the metric has no
//! measured samples yet) credits nothing, mirroring the metric-trigger
//! convention that unmeasured is *absent*, not zero.
//!
//! # Determinism and hot-loop invariants
//!
//! The policy draws exploration randomness from a **dedicated
//! [`DetRng`] fork** (`rng.fork("adaptive")` in every simulator), so
//! honest-path streams stay bit-identical whether or not an adaptive
//! attacker is configured, and `--adaptive` off reproduces the PR 3
//! golden fixtures exactly. The per-round path
//! ([`AdaptivePolicy::step`]) never allocates; the only allocation is
//! one arm-trace entry per *phase* (amortized by the pre-reserved trace
//! buffer), so simulator round loops stay allocation-free in steady
//! state.

use netsim::metrics::Running;
use netsim::rng::DetRng;
use netsim::Round;

use crate::schedule::MetricKey;

/// One bandit arm: what the attacker's nodes do for a whole phase.
///
/// The arms map exactly onto the two switches the PR 3 timing layer
/// installed in every substrate — the attack-active flag and the
/// target-rotation phase — so an adaptive attacker drives the same
/// cooperate/defect/rotation machinery without any new hot-loop logic:
///
/// | arm | attack active | target window |
/// |-----------------|-----|----------------------------------|
/// | `Dormant`       | off | frozen                           |
/// | `Cooperate`     | off | slides (re-aim while lying low)  |
/// | `Defect`        | on  | frozen                           |
/// | `RotateDefect`  | on  | slides (the §2 rotating striker) |
///
/// Substrates without a target-rotation switch (scrip, bittorrent,
/// token) see `Dormant` ≡ `Cooperate` and `Defect` ≡ `RotateDefect`;
/// the bandit simply learns that those arms tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackMode {
    /// Attack off, target window frozen.
    Dormant,
    /// Attack off, target window slides: run the honest protocol while
    /// re-aiming at a fresh slice of the population.
    Cooperate,
    /// Attack on, fixed targets (the classic lotus-eater).
    Defect,
    /// Attack on, target window slides each phase (intermittent
    /// unusability for everyone).
    RotateDefect,
}

impl AttackMode {
    /// Every arm, in canonical (initialization-sweep) order.
    pub const ALL: [AttackMode; 4] = [
        AttackMode::Dormant,
        AttackMode::Cooperate,
        AttackMode::Defect,
        AttackMode::RotateDefect,
    ];

    /// Canonical index into per-arm arrays.
    pub fn index(self) -> usize {
        match self {
            AttackMode::Dormant => 0,
            AttackMode::Cooperate => 1,
            AttackMode::Defect => 2,
            AttackMode::RotateDefect => 3,
        }
    }

    /// Stable name used by the CLI grammar and the arm-trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            AttackMode::Dormant => "dormant",
            AttackMode::Cooperate => "cooperate",
            AttackMode::Defect => "defect",
            AttackMode::RotateDefect => "rotate",
        }
    }

    /// Parse an arm name (the `fixed-<arm>` policy suffix).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<AttackMode, String> {
        AttackMode::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| format!("unknown arm {name:?} (dormant | cooperate | defect | rotate)"))
    }

    /// Whether the attack is on while this arm is played.
    pub fn is_active(self) -> bool {
        matches!(self, AttackMode::Defect | AttackMode::RotateDefect)
    }

    /// Whether selecting this arm slides the target window by one step.
    pub fn rotates(self) -> bool {
        matches!(self, AttackMode::Cooperate | AttackMode::RotateDefect)
    }
}

impl std::fmt::Display for AttackMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the next arm is chosen at each phase boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Epsilon-greedy: explore a uniform arm with probability `epsilon`,
    /// otherwise exploit the best observed mean damage. Untried arms are
    /// played first, in canonical order. `epsilon = 0` is pure greedy
    /// and draws no randomness at all.
    EpsilonGreedy,
    /// UCB1: maximize `mean + c * sqrt(ln N / n)` over phase-level play
    /// counts, with `c` the spec's exploration parameter (`sqrt(2)` is
    /// the textbook choice; `0` disables the bonus). Untried arms are
    /// played first, in canonical order. Draws no randomness.
    Ucb1,
    /// Always play one arm — the degenerate bandit used to pin
    /// equivalence with static schedules (e.g. `fixed-defect` must
    /// reproduce `--schedule always` bit-identically).
    Fixed(AttackMode),
}

/// A complete adaptive-attacker specification: policy, phase length and
/// exploration parameter. `Copy`, and carried inside
/// [`AttackSchedule`](crate::schedule::AttackSchedule) so every substrate
/// config that already takes a schedule takes an adaptive attacker for
/// free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSpec {
    /// Arm-selection policy.
    pub policy: PolicyKind,
    /// Rounds per phase: the arm is committed for this long before the
    /// bandit re-plans (must be positive).
    pub phase_len: Round,
    /// Exploration parameter: epsilon for
    /// [`PolicyKind::EpsilonGreedy`] (in `[0, 1]`), the confidence
    /// weight `c` for [`PolicyKind::Ucb1`] (non-negative); ignored by
    /// fixed policies.
    pub epsilon: f64,
    /// The canonical metric observed as the reward signal; the arm's
    /// reward each round is `1 − metric` (damage).
    pub metric: MetricKey,
}

impl AdaptiveSpec {
    /// Default phase length (two BAR Gossip update lifetimes — long
    /// enough for a defection to register in the delivery counters).
    pub const DEFAULT_PHASE_LEN: Round = 20;
    /// Default exploration rate for epsilon-greedy.
    pub const DEFAULT_EPSILON: f64 = 0.1;

    /// An epsilon-greedy attacker.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len == 0` or `epsilon` is outside `[0, 1]`.
    pub fn epsilon_greedy(phase_len: Round, epsilon: f64) -> Self {
        assert!(phase_len > 0, "adaptive phase length must be positive");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        AdaptiveSpec {
            policy: PolicyKind::EpsilonGreedy,
            phase_len,
            epsilon,
            metric: MetricKey::OverallDelivery,
        }
    }

    /// A UCB1 attacker with exploration weight `c`.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len == 0` or `c < 0`.
    pub fn ucb1(phase_len: Round, c: f64) -> Self {
        assert!(phase_len > 0, "adaptive phase length must be positive");
        assert!(c >= 0.0, "UCB exploration weight must be non-negative");
        AdaptiveSpec {
            policy: PolicyKind::Ucb1,
            phase_len,
            epsilon: c,
            metric: MetricKey::OverallDelivery,
        }
    }

    /// The degenerate always-`arm` policy.
    ///
    /// # Panics
    ///
    /// Panics if `phase_len == 0`.
    pub fn fixed(arm: AttackMode, phase_len: Round) -> Self {
        assert!(phase_len > 0, "adaptive phase length must be positive");
        AdaptiveSpec {
            policy: PolicyKind::Fixed(arm),
            phase_len,
            epsilon: 0.0,
            metric: MetricKey::OverallDelivery,
        }
    }

    /// Observe `metric` as the reward signal instead of
    /// `overall_delivery` (builder style).
    pub fn with_metric(mut self, metric: MetricKey) -> Self {
        self.metric = metric;
        self
    }

    /// Whether this policy can ever play a window-sliding arm — i.e.
    /// whether the embedding schedule needs a rotation period at all.
    pub fn can_rotate(&self) -> bool {
        match self.policy {
            PolicyKind::EpsilonGreedy | PolicyKind::Ucb1 => true,
            PolicyKind::Fixed(arm) => arm.rotates(),
        }
    }

    /// Whether the policy learns from observations (fixed policies do
    /// not, so they require no per-round metric computation).
    pub fn needs_observation(&self) -> bool {
        !matches!(self.policy, PolicyKind::Fixed(_))
    }

    /// Parse the `lotus-bench --adaptive` grammar:
    ///
    /// ```text
    /// <policy>,<phase-len>,<epsilon>[,<metric>]
    /// ```
    ///
    /// with `:` accepted wherever `,` is (so the spec survives the
    /// comma-splitting `--curve` grammar as `adaptive=ucb:20:1.4`), and
    ///
    /// * `policy` — `epsilon-greedy` | `ucb` | `fixed-dormant` |
    ///   `fixed-cooperate` | `fixed-defect` | `fixed-rotate`;
    /// * `phase-len` — positive integer rounds per phase;
    /// * `epsilon` — exploration rate (epsilon-greedy, in `[0, 1]`) or
    ///   confidence weight (ucb, `>= 0`); must be given, even for fixed
    ///   policies (where it is ignored — keep `0`);
    /// * `metric` — optional reward observation, `delivery` (default) or
    ///   `targeted`.
    ///
    /// ```
    /// use lotus_core::adaptive::{AdaptiveSpec, AttackMode, PolicyKind};
    /// let spec = AdaptiveSpec::parse("epsilon-greedy,20,0.1").unwrap();
    /// assert_eq!(spec.policy, PolicyKind::EpsilonGreedy);
    /// assert_eq!(spec.phase_len, 20);
    /// let fixed = AdaptiveSpec::parse("fixed-defect:10:0").unwrap();
    /// assert_eq!(fixed.policy, PolicyKind::Fixed(AttackMode::Defect));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn parse(spec: &str) -> Result<AdaptiveSpec, String> {
        let mut parts = spec.split([',', ':']).map(str::trim);
        let policy = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("adaptive {spec:?}: missing policy"))?;
        let phase_len = parts
            .next()
            .ok_or_else(|| format!("adaptive {spec:?}: missing phase length"))?
            .parse::<Round>()
            .map_err(|_| format!("adaptive {spec:?}: phase length is not an integer"))?;
        if phase_len == 0 {
            return Err(format!("adaptive {spec:?}: phase length must be positive"));
        }
        let epsilon = parts
            .next()
            .ok_or_else(|| format!("adaptive {spec:?}: missing exploration parameter"))?
            .parse::<f64>()
            .map_err(|_| format!("adaptive {spec:?}: exploration parameter is not a number"))?;
        let metric = match parts.next() {
            None | Some("delivery") => MetricKey::OverallDelivery,
            Some("targeted") => MetricKey::TargetedService,
            Some(other) => {
                return Err(format!(
                    "adaptive {spec:?}: unknown reward metric {other:?} (delivery | targeted)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("adaptive {spec:?}: trailing fields"));
        }
        let parsed = match policy {
            "epsilon-greedy" => {
                if !(0.0..=1.0).contains(&epsilon) {
                    return Err(format!("adaptive {spec:?}: epsilon outside [0, 1]"));
                }
                AdaptiveSpec::epsilon_greedy(phase_len, epsilon)
            }
            "ucb" => {
                if epsilon < 0.0 {
                    return Err(format!(
                        "adaptive {spec:?}: UCB exploration weight must be non-negative"
                    ));
                }
                AdaptiveSpec::ucb1(phase_len, epsilon)
            }
            fixed if fixed.starts_with("fixed-") => {
                let arm = AttackMode::parse(&fixed["fixed-".len()..])
                    .map_err(|e| format!("adaptive {spec:?}: {e}"))?;
                AdaptiveSpec::fixed(arm, phase_len)
            }
            other => {
                return Err(format!(
                    "unknown adaptive policy {other:?} (epsilon-greedy | ucb | fixed-<arm>)"
                ))
            }
        };
        Ok(parsed.with_metric(metric))
    }
}

/// One completed-or-in-flight phase of the arm trace: which arm the
/// bandit played and what damage it observed while playing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Phase index (`round / phase_len`).
    pub phase: u64,
    /// The arm played for this phase.
    pub arm: AttackMode,
    /// Rounds of this phase that produced a reward observation.
    pub observations: u64,
    /// Mean observed damage (`1 − metric`) over those rounds.
    pub mean_damage: f64,
}

impl TraceEntry {
    fn observe(&mut self, damage: f64) {
        self.observations += 1;
        self.mean_damage += (damage - self.mean_damage) / self.observations as f64;
    }
}

/// Render an arm trace as a JSON array (stable keys, no dependencies) —
/// the payload behind `lotus-bench --arm-trace`.
pub fn trace_to_json(trace: &[TraceEntry]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, e) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":{},\"arm\":\"{}\",\"observations\":{},\"mean_damage\":{}}}",
            e.phase,
            e.arm.name(),
            e.observations,
            crate::scenario::json_number(e.mean_damage)
        );
    }
    out.push(']');
    out
}

/// The deterministic per-run bandit stepper.
///
/// Embedded by [`ScheduleState`](crate::schedule::ScheduleState); one
/// [`AdaptivePolicy::step`] call per round credits the current arm with
/// the round's observed damage and, at phase boundaries, selects the
/// next arm. Cloning a policy clones its learning state exactly
/// (replay-safe), and two runs with the same `(spec, rng, observation
/// stream)` produce identical arm traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    spec: AdaptiveSpec,
    rng: DetRng,
    /// Per-arm reward statistics (canonical arm order), fed per round.
    arms: [Running; 4],
    /// Per-arm phase-level play counts (the UCB1 `n_i`).
    plays: [u64; 4],
    /// The arm currently committed (meaningless before the first phase).
    current: AttackMode,
    /// Whether the first phase has started.
    started: bool,
    /// How often a window-sliding arm has been selected: the rotation
    /// phase fed to
    /// [`rotating_window`](crate::schedule::rotating_window).
    rotation_phase: u64,
    trace: Vec<TraceEntry>,
}

impl AdaptivePolicy {
    /// Build a policy from its spec and a dedicated rng fork.
    pub fn new(spec: AdaptiveSpec, rng: DetRng) -> Self {
        AdaptivePolicy {
            spec,
            rng,
            arms: [Running::new(); 4],
            plays: [0; 4],
            current: AttackMode::Dormant,
            started: false,
            rotation_phase: 0,
            // One entry per phase: pre-reserve a typical run's worth so
            // steady-state pushes rarely reallocate.
            trace: Vec::with_capacity(32),
        }
    }

    /// The specification in force.
    pub fn spec(&self) -> &AdaptiveSpec {
        &self.spec
    }

    /// The arm committed for the current phase.
    pub fn current_arm(&self) -> AttackMode {
        self.current
    }

    /// The per-phase arm trace so far (last entry is the in-flight
    /// phase).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Current rotation phase (how often a sliding arm has been played).
    pub fn rotation_phase(&self) -> u64 {
        self.rotation_phase
    }

    /// Advance one round: credit the arm played *up to* round `t` with
    /// the damage observed at the top of round `t` (the observation
    /// reflects the state the previous rounds produced), then — on a
    /// phase boundary — select the arm for the phase starting at `t`.
    /// Returns whether the attack is on for round `t`. Never allocates
    /// except the one trace entry per phase boundary.
    pub fn step(&mut self, t: Round, observed: Option<f64>) -> bool {
        if self.started {
            if let Some(obs) = observed {
                let damage = 1.0 - obs;
                self.arms[self.current.index()].push(damage);
                if let Some(entry) = self.trace.last_mut() {
                    entry.observe(damage);
                }
            }
        }
        if t.is_multiple_of(self.spec.phase_len) {
            self.select_arm();
            self.started = true;
            let phase = t / self.spec.phase_len;
            if phase > 0 && self.current.rotates() {
                self.rotation_phase += 1;
            }
            self.trace.push(TraceEntry {
                phase,
                arm: self.current,
                observations: 0,
                mean_damage: 0.0,
            });
        }
        self.current.is_active()
    }

    /// Pick the arm for the next phase and bump its play count.
    fn select_arm(&mut self) {
        let chosen = match self.spec.policy {
            PolicyKind::Fixed(arm) => arm,
            PolicyKind::EpsilonGreedy => {
                if let Some(untried) = self.first_untried() {
                    untried
                } else if self.spec.epsilon > 0.0 && self.rng.chance(self.spec.epsilon) {
                    AttackMode::ALL[self.rng.range(4) as usize]
                } else {
                    self.best_mean_arm()
                }
            }
            PolicyKind::Ucb1 => {
                if let Some(untried) = self.first_untried() {
                    untried
                } else {
                    let total: u64 = self.plays.iter().sum();
                    let ln_total = (total as f64).ln();
                    let mut best = AttackMode::Dormant;
                    let mut best_score = f64::NEG_INFINITY;
                    for arm in AttackMode::ALL {
                        let i = arm.index();
                        let bonus = self.spec.epsilon * (ln_total / self.plays[i] as f64).sqrt();
                        let score = self.arms[i].mean() + bonus;
                        if score > best_score {
                            best = arm;
                            best_score = score;
                        }
                    }
                    best
                }
            }
        };
        self.plays[chosen.index()] += 1;
        self.current = chosen;
    }

    /// The first never-played arm in canonical order (the deterministic
    /// initialization sweep both learning policies share).
    fn first_untried(&self) -> Option<AttackMode> {
        AttackMode::ALL
            .into_iter()
            .find(|a| self.plays[a.index()] == 0)
    }

    /// The arm with the best observed mean damage (ties break toward the
    /// canonical order).
    fn best_mean_arm(&self) -> AttackMode {
        let mut best = AttackMode::Dormant;
        let mut best_mean = f64::NEG_INFINITY;
        for arm in AttackMode::ALL {
            let mean = self.arms[arm.index()].mean();
            if mean > best_mean {
                best = arm;
                best_mean = mean;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from(42).fork("adaptive")
    }

    #[test]
    fn arm_names_round_trip() {
        for arm in AttackMode::ALL {
            assert_eq!(AttackMode::parse(arm.name()).unwrap(), arm);
            assert_eq!(format!("{arm}"), arm.name());
        }
        assert!(AttackMode::parse("bogus").is_err());
        assert_eq!(AttackMode::Defect.index(), 2);
    }

    #[test]
    fn arm_switches_match_the_table() {
        assert!(!AttackMode::Dormant.is_active());
        assert!(!AttackMode::Cooperate.is_active());
        assert!(AttackMode::Defect.is_active());
        assert!(AttackMode::RotateDefect.is_active());
        assert!(!AttackMode::Dormant.rotates());
        assert!(AttackMode::Cooperate.rotates());
        assert!(!AttackMode::Defect.rotates());
        assert!(AttackMode::RotateDefect.rotates());
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let spec = AdaptiveSpec::parse("epsilon-greedy,40,0.25").unwrap();
        assert_eq!(spec, AdaptiveSpec::epsilon_greedy(40, 0.25));
        let spec = AdaptiveSpec::parse("ucb:15:1.4").unwrap();
        assert_eq!(spec, AdaptiveSpec::ucb1(15, 1.4));
        let spec = AdaptiveSpec::parse("fixed-rotate,8,0").unwrap();
        assert_eq!(spec, AdaptiveSpec::fixed(AttackMode::RotateDefect, 8));
        let spec = AdaptiveSpec::parse("epsilon-greedy,20,0.1,targeted").unwrap();
        assert_eq!(spec.metric, MetricKey::TargetedService);
        assert!(spec.needs_observation());
        assert!(!AdaptiveSpec::parse("fixed-defect,20,0")
            .unwrap()
            .needs_observation());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "epsilon-greedy",
            "epsilon-greedy,20",
            "epsilon-greedy,0,0.1",
            "epsilon-greedy,20,1.5",
            "epsilon-greedy,x,0.1",
            "ucb,20,-1",
            "fixed-bogus,20,0",
            "softmax,20,0.1",
            "epsilon-greedy,20,0.1,damage",
            "epsilon-greedy,20,0.1,delivery,extra",
        ] {
            assert!(AdaptiveSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rotation_capability_tracks_policy() {
        assert!(AdaptiveSpec::epsilon_greedy(20, 0.1).can_rotate());
        assert!(AdaptiveSpec::ucb1(20, 1.0).can_rotate());
        assert!(AdaptiveSpec::fixed(AttackMode::RotateDefect, 20).can_rotate());
        assert!(AdaptiveSpec::fixed(AttackMode::Cooperate, 20).can_rotate());
        assert!(!AdaptiveSpec::fixed(AttackMode::Defect, 20).can_rotate());
        assert!(!AdaptiveSpec::fixed(AttackMode::Dormant, 20).can_rotate());
    }

    #[test]
    fn fixed_policy_is_the_degenerate_bandit() {
        let mut p = AdaptivePolicy::new(AdaptiveSpec::fixed(AttackMode::Defect, 5), rng());
        for t in 0..20 {
            assert!(p.step(t, None), "fixed-defect is always on");
        }
        assert_eq!(p.trace().len(), 4, "one entry per phase");
        assert!(p.trace().iter().all(|e| e.arm == AttackMode::Defect));
        assert_eq!(p.rotation_phase(), 0, "defect never slides the window");
    }

    #[test]
    fn learning_policies_sweep_every_arm_first() {
        for spec in [
            AdaptiveSpec::epsilon_greedy(2, 0.0),
            AdaptiveSpec::ucb1(2, 1.0),
        ] {
            let mut p = AdaptivePolicy::new(spec, rng());
            for t in 0..8 {
                p.step(t, Some(0.5));
            }
            let arms: Vec<AttackMode> = p.trace().iter().map(|e| e.arm).collect();
            assert_eq!(
                arms,
                AttackMode::ALL.to_vec(),
                "first four phases are the canonical initialization sweep"
            );
        }
    }

    #[test]
    fn greedy_converges_to_the_most_damaging_arm() {
        // Simulated environment: defecting depresses delivery to 0.2
        // (damage 0.8), rotating wastes part of the strike (0.5), lying
        // low keeps the system healthy (0.95). After the initialization
        // sweep a zero-epsilon greedy policy must lock onto defect.
        let mut p = AdaptivePolicy::new(AdaptiveSpec::epsilon_greedy(3, 0.0), rng());
        let mut delivery = 0.95;
        for t in 0..60 {
            let active = p.step(t, Some(delivery));
            delivery = if active {
                if p.current_arm() == AttackMode::Defect {
                    0.2
                } else {
                    0.5
                }
            } else {
                0.95
            };
        }
        let last = p.trace().last().unwrap();
        assert_eq!(
            last.arm,
            AttackMode::Defect,
            "greedy must converge to the highest-damage arm; trace: {:?}",
            p.trace()
                .iter()
                .map(|e| (e.phase, e.arm.name()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ucb_keeps_exploring_with_a_large_bonus() {
        // A huge exploration weight forces UCB to keep cycling arms
        // regardless of their means.
        let mut p = AdaptivePolicy::new(AdaptiveSpec::ucb1(1, 1e6), rng());
        for t in 0..40 {
            p.step(t, Some(0.5));
        }
        for arm in AttackMode::ALL {
            let played = p.trace().iter().filter(|e| e.arm == arm).count();
            assert!(
                played >= 8,
                "arm {arm} played only {played} of 40 phases under a huge bonus"
            );
        }
    }

    #[test]
    fn rotation_counter_advances_only_on_sliding_arms() {
        let mut p = AdaptivePolicy::new(AdaptiveSpec::fixed(AttackMode::RotateDefect, 4), rng());
        for t in 0..16 {
            assert!(p.step(t, None));
        }
        // Phase 0 starts at window 0; each later phase slides once.
        assert_eq!(p.rotation_phase(), 3);
    }

    #[test]
    fn replays_are_bit_identical() {
        let drive = || {
            let mut p = AdaptivePolicy::new(AdaptiveSpec::epsilon_greedy(3, 0.5), rng());
            let mut active_pattern = Vec::new();
            let mut delivery = 0.9;
            for t in 0..45 {
                let active = p.step(t, Some(delivery));
                active_pattern.push(active);
                delivery = if active { 0.4 } else { 0.9 };
            }
            (active_pattern, p.trace().to_vec())
        };
        let (a1, t1) = drive();
        let (a2, t2) = drive();
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn none_observations_credit_nothing() {
        let mut p = AdaptivePolicy::new(AdaptiveSpec::epsilon_greedy(5, 0.0), rng());
        for t in 0..10 {
            p.step(t, None);
        }
        assert!(p.trace().iter().all(|e| e.observations == 0));
        assert!(p.arms.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn trace_json_is_stable() {
        let trace = [
            TraceEntry {
                phase: 0,
                arm: AttackMode::Defect,
                observations: 5,
                mean_damage: 0.25,
            },
            TraceEntry {
                phase: 1,
                arm: AttackMode::Cooperate,
                observations: 0,
                mean_damage: 0.0,
            },
        ];
        assert_eq!(
            trace_to_json(&trace),
            "[{\"phase\":0,\"arm\":\"defect\",\"observations\":5,\"mean_damage\":0.25},\
             {\"phase\":1,\"arm\":\"cooperate\",\"observations\":0,\"mean_damage\":0}]"
        );
    }
}
