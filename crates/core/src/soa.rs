//! Sharded activity index for struct-of-arrays populations.
//!
//! The million-node engine keeps per-node state in parallel `Vec`s and
//! [`BitSet`](crate::bitset::BitSet)s keyed by node index (struct of
//! arrays), and partitions the index space into fixed-size shards, each
//! carrying a cached popcount of an *activity mask* (typically
//! present ∧ not-crashed ∧ not-evicted, folded from
//! [`Population`](crate::population::Population) membership and
//! [`FaultState`](crate::faults::FaultState) crash bits). Round loops
//! then iterate shards, skip fully-inactive shards with one counter
//! test, and within a shard touch only set bits — so per-step cost
//! scales with *active* nodes, not total population.
//!
//! The iteration order is strictly ascending node index, which is what
//! makes a sharded walk a drop-in replacement for the dense
//! `(0..n).filter(alive)` loops: both visit exactly the set bits in the
//! same order, so every downstream rng draw sequence is unchanged and
//! golden fixtures stay byte-identical.
//!
//! Rebuilding the mask is word-parallel (`O(n/64)`): copy the
//! membership mask in, subtract the crash/eviction masks, and
//! [`commit`](ShardMap::commit) the per-shard counts. At one million
//! nodes that is ~16k word operations per round — noise next to the
//! per-active-node work.

use crate::bitset::BitSet;
use core::ops::Range;

/// Default shard width in node indices.
///
/// A power of two and a multiple of 64, so shards align to whole
/// `BitSet` words. It is also the single-shard cutoff: populations at
/// paper scale (hundreds of nodes) fit in one shard, where callers can
/// keep legacy full-population code paths bit-for-bit intact.
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// A fixed-width sharding of `0..n` with a per-shard activity popcount.
///
/// ```
/// use lotus_core::bitset::BitSet;
/// use lotus_core::soa::ShardMap;
///
/// let mut mask = BitSet::new(5000);
/// mask.insert(3);
/// mask.insert(4097);
/// let mut shards = ShardMap::new(5000);
/// shards.load(&mask);
/// assert_eq!(shards.active_count(), 2);
/// let mut seen = Vec::new();
/// shards.for_each_active(|i| seen.push(i));
/// assert_eq!(seen, vec![3, 4097]);
/// // Shards 1..=3 (indices 1024..4096) are skipped with one test each.
/// assert!(!shards.is_shard_active(1));
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Shard width in indices; multiple of 64.
    shard_size: usize,
    /// The universe size `n` (indices run `0..n`).
    n: usize,
    /// The activity mask, owned so rebuilds are word-parallel copies.
    active: BitSet,
    /// Cached popcount per shard; a shard with count 0 is skipped.
    counts: Vec<u32>,
    /// Cached total popcount across shards.
    total: usize,
}

impl ShardMap {
    /// A shard map over `0..n` with the default shard size; all
    /// indices start inactive.
    pub fn new(n: usize) -> Self {
        Self::with_shard_size(n, DEFAULT_SHARD_SIZE)
    }

    /// A shard map with an explicit shard size (testing seam).
    ///
    /// # Panics
    ///
    /// Panics unless `shard_size` is a nonzero multiple of 64 (shards
    /// must align to `BitSet` words).
    pub fn with_shard_size(n: usize, shard_size: usize) -> Self {
        assert!(
            shard_size > 0 && shard_size.is_multiple_of(64),
            "shard size must be a nonzero multiple of 64"
        );
        let shards = n.div_ceil(shard_size).max(1);
        ShardMap {
            shard_size,
            n,
            active: BitSet::new(n),
            counts: vec![0; shards],
            total: 0,
        }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Shard width in indices.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards (`ceil(n / shard_size)`, at least 1).
    pub fn shard_count(&self) -> usize {
        self.counts.len()
    }

    /// The index range shard `s` covers, clamped to the universe.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        let start = s * self.shard_size;
        start..((start + self.shard_size).min(self.n))
    }

    /// Whether shard `s` has any active index.
    pub fn is_shard_active(&self, s: usize) -> bool {
        self.counts[s] > 0
    }

    /// Active indices in shard `s`.
    pub fn shard_active_count(&self, s: usize) -> u32 {
        self.counts[s]
    }

    /// Total active indices (cached; `O(1)`).
    pub fn active_count(&self) -> usize {
        self.total
    }

    /// Whether index `i` is active.
    pub fn contains(&self, i: usize) -> bool {
        self.active.contains(i)
    }

    /// The activity mask itself.
    pub fn active_mask(&self) -> &BitSet {
        &self.active
    }

    /// Replace the activity mask with `mask` and recompute the shard
    /// counts. Word-parallel: `O(n/64)`.
    // lint: hot-loop
    pub fn load(&mut self, mask: &BitSet) {
        self.active.copy_from(mask);
        self.commit();
    }

    /// Remove `mask`'s members from the activity mask and recompute
    /// the shard counts. Word-parallel: `O(n/64)`.
    // lint: hot-loop
    pub fn subtract(&mut self, mask: &BitSet) {
        self.active.subtract(mask);
        self.commit();
    }

    /// Deactivate index `i`, maintaining the counts incrementally.
    pub fn deactivate(&mut self, i: usize) {
        if self.active.remove(i) {
            self.counts[i / self.shard_size] -= 1;
            self.total -= 1;
        }
    }

    /// Activate index `i`, maintaining the counts incrementally.
    pub fn activate(&mut self, i: usize) {
        if self.active.insert(i) {
            self.counts[i / self.shard_size] += 1;
            self.total += 1;
        }
    }

    /// Recompute every shard count (and the total) from the mask
    /// words. Word-parallel: `O(n/64)`.
    // lint: hot-loop
    pub fn commit(&mut self) {
        let words = self.active.words();
        let wps = self.shard_size / 64;
        let mut total = 0usize;
        for (s, count) in self.counts.iter_mut().enumerate() {
            let start = (s * wps).min(words.len());
            let end = (start + wps).min(words.len());
            let mut c = 0u32;
            for w in &words[start..end] {
                c += w.count_ones();
            }
            *count = c;
            total += c as usize;
        }
        self.total = total;
    }

    /// Visit every active index in ascending order, skipping inactive
    /// shards with one counter test each. This is the engine's core
    /// primitive: cost is `O(active + shards)`, not `O(n)`.
    // lint: hot-loop
    pub fn for_each_active(&self, f: impl FnMut(usize)) {
        self.for_each_active_in(0..self.shard_count(), f);
    }

    /// Visit the active indices of shards `shards.start..shards.end`
    /// only, in ascending order — the seam that lets a worker pool walk
    /// disjoint shard ranges concurrently while each range's visit
    /// order (and hence any per-range output) stays identical to the
    /// corresponding stretch of a full [`for_each_active`] walk.
    // lint: hot-loop
    pub fn for_each_active_in(&self, shards: Range<usize>, mut f: impl FnMut(usize)) {
        let words = self.active.words();
        let wps = self.shard_size / 64;
        let hi = shards.end.min(self.counts.len());
        for s in shards.start..hi {
            let count = self.counts[s];
            if count == 0 {
                continue;
            }
            let start = (s * wps).min(words.len());
            let end = (start + wps).min(words.len());
            for (wi, &word) in words[start..end].iter().enumerate() {
                let mut w = word;
                let base = (start + wi) * 64;
                while w != 0 {
                    f(base + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
    }

    /// Active indices in the shard range `shards.start..shards.end`
    /// (the sum of their cached popcounts; `O(shards)`). This is the
    /// pre-sizing half of the partitioned-walk seam: a caller can size
    /// per-range output slices exactly before any worker runs.
    pub fn active_count_in(&self, shards: Range<usize>) -> usize {
        let hi = shards.end.min(self.counts.len());
        self.counts[shards.start.min(hi)..hi]
            .iter()
            .map(|&c| c as usize)
            .sum()
    }

    /// Clear `out` and fill it with the active indices in ascending
    /// order — the sharded stand-in for `(0..n).filter(active)` list
    /// builds. Allocation-free once `out` has capacity.
    // lint: hot-loop
    pub fn collect_active_into(&self, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_active(|i| out.push(i));
    }

    /// Index ranges covering the active shards (adjacent active shards
    /// merged), clamped to the universe — the seam for batched range
    /// operations like zeroing per-node counters.
    pub fn active_ranges(&self) -> ActiveRanges<'_> {
        ActiveRanges { map: self, s: 0 }
    }
}

/// Iterator over merged index ranges of active shards.
///
/// Yielded ranges are disjoint, ascending, and cover exactly the
/// shards with a nonzero activity count.
#[derive(Debug)]
pub struct ActiveRanges<'a> {
    map: &'a ShardMap,
    s: usize,
}

impl Iterator for ActiveRanges<'_> {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        while self.s < self.map.shard_count() {
            if self.map.counts[self.s] == 0 {
                self.s += 1;
                continue;
            }
            let first = self.s;
            while self.s < self.map.shard_count() && self.map.counts[self.s] > 0 {
                self.s += 1;
            }
            let start = first * self.map.shard_size;
            let end = (self.s * self.map.shard_size).min(self.map.n);
            return Some(start..end);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(n: usize, bits: &[usize]) -> BitSet {
        let mut m = BitSet::new(n);
        for &b in bits {
            m.insert(b);
        }
        m
    }

    #[test]
    fn empty_map_visits_nothing() {
        let shards = ShardMap::new(5000);
        let mut seen = Vec::new();
        shards.for_each_active(|i| seen.push(i));
        assert!(seen.is_empty());
        assert_eq!(shards.active_count(), 0);
        assert_eq!(shards.active_ranges().count(), 0);
    }

    #[test]
    fn zero_universe_is_fine() {
        let mut shards = ShardMap::new(0);
        assert_eq!(shards.shard_count(), 1);
        shards.commit();
        assert_eq!(shards.active_count(), 0);
    }

    #[test]
    fn load_visits_exactly_the_set_bits_in_order() {
        let bits = [0, 63, 64, 1023, 1024, 4095, 4999];
        let mask = mask_of(5000, &bits);
        let mut shards = ShardMap::new(5000);
        shards.load(&mask);
        let mut seen = Vec::new();
        shards.for_each_active(|i| seen.push(i));
        assert_eq!(seen, bits.to_vec());
        assert_eq!(shards.active_count(), bits.len());
        assert!(shards.is_shard_active(0));
        assert!(!shards.is_shard_active(2));
        assert!(shards.contains(1024));
        assert!(!shards.contains(1025));
    }

    #[test]
    fn incremental_updates_match_commit() {
        let mut shards = ShardMap::new(3000);
        shards.activate(10);
        shards.activate(2048);
        shards.activate(2048); // idempotent
        assert_eq!(shards.active_count(), 2);
        shards.deactivate(10);
        shards.deactivate(10); // idempotent
        assert_eq!(shards.active_count(), 1);
        let mut recount = shards.clone();
        recount.commit();
        assert_eq!(recount.active_count(), shards.active_count());
        assert_eq!(recount.shard_active_count(2), shards.shard_active_count(2));
    }

    #[test]
    fn subtract_removes_members() {
        let mut shards = ShardMap::new(2000);
        shards.load(&mask_of(2000, &[5, 700, 1500]));
        shards.subtract(&mask_of(2000, &[700, 1999]));
        let mut seen = Vec::new();
        shards.for_each_active(|i| seen.push(i));
        assert_eq!(seen, vec![5, 1500]);
    }

    #[test]
    fn active_ranges_merge_adjacent_shards_and_clamp() {
        let mut shards = ShardMap::with_shard_size(300, 64);
        shards.load(&mask_of(300, &[0, 70, 299]));
        // Shards 0 and 1 are adjacent-active; shard 4 (256..300) clamps.
        let ranges: Vec<Range<usize>> = shards.active_ranges().collect();
        assert_eq!(ranges, vec![0..128, 256..300]);
    }

    #[test]
    fn ranged_walk_partitions_the_full_walk() {
        let bits = [0, 63, 64, 1023, 1024, 4095, 4999];
        let mut shards = ShardMap::new(5000);
        shards.load(&mask_of(5000, &bits));
        let mut full = Vec::new();
        shards.for_each_active(|i| full.push(i));
        // Any split along shard boundaries concatenates back to the
        // full walk, and the counts pre-size each piece exactly.
        for split in 0..=shards.shard_count() {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            shards.for_each_active_in(0..split, |i| lo.push(i));
            shards.for_each_active_in(split..shards.shard_count(), |i| hi.push(i));
            assert_eq!(lo.len(), shards.active_count_in(0..split));
            assert_eq!(
                hi.len(),
                shards.active_count_in(split..shards.shard_count())
            );
            lo.extend_from_slice(&hi);
            assert_eq!(lo, full, "split at shard {split}");
        }
        // Out-of-range ends clamp instead of panicking.
        let mut all = Vec::new();
        shards.for_each_active_in(0..usize::MAX, |i| all.push(i));
        assert_eq!(all, full);
        assert_eq!(shards.active_count_in(0..usize::MAX), full.len());
    }

    #[test]
    fn collect_matches_bitset_iter() {
        let mask = mask_of(4097, &[1, 64, 4096]);
        let mut shards = ShardMap::new(4097);
        shards.load(&mask);
        let mut out = Vec::new();
        shards.collect_active_into(&mut out);
        let dense: Vec<usize> = mask.iter().collect();
        assert_eq!(out, dense);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn misaligned_shard_size_panics() {
        let _ = ShardMap::with_shard_size(100, 100);
    }
}
