//! A counting test allocator: the *dynamic* twin of `lotus-lint`'s
//! static alloc-free-region rule.
//!
//! PR 2 made every simulator's steady-state hot loop allocation-free and
//! measured the win; `lotus-lint` scans `// lint: hot-loop` functions for
//! allocating constructs at the token level. Both are approximations — a
//! textual scan cannot see through helper calls, and a benchmark only
//! notices allocations when they cost enough to move the needle. This
//! module closes the loop with ground truth: a [`GlobalAlloc`] shim that
//! counts every heap allocation on the current thread, so a test can
//! assert **zero allocations per steady-state step** and fail the moment
//! a stray `clone` or `collect` sneaks back into a hot path.
//!
//! # Usage
//!
//! The workspace crates all carry `#![forbid(unsafe_code)]`, and a
//! `GlobalAlloc` impl is necessarily unsafe — so the allocator itself is
//! *not* compiled into this crate. Instead,
//! [`install_counting_allocator!`] expands the shim into the calling test
//! crate (integration tests are separate crates without the `forbid`),
//! and the shim reports into the thread-local counters defined here:
//!
//! ```ignore
//! // tests/alloc_steady.rs
//! lotus_core::install_counting_allocator!();
//!
//! #[test]
//! fn steady_state_step_is_alloc_free() {
//!     let mut sim = build_and_warm_up();
//!     let stats = lotus_core::alloc_guard::measure(|| {
//!         sim.step();
//!     });
//!     assert_eq!(stats.allocations, 0, "{stats:?}");
//! }
//! ```
//!
//! Counters are per-thread, so parallel test threads never perturb each
//! other's measurements. If the macro was never invoked in the final
//! binary the counters simply stay at zero — which would make every
//! zero-alloc assertion pass vacuously — so any suite using this module
//! **must** include a canary test proving a deliberate allocation trips
//! the guard (see [`measure`]).
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Record one heap allocation of `size` bytes on this thread.
///
/// Called by the [`install_counting_allocator!`]-generated shim on every
/// `alloc`/`realloc`; not meant to be called by hand, but harmless if it
/// is (it only bumps counters).
#[inline]
pub fn record_alloc(size: usize) {
    ALLOCATIONS.with(|c| c.set(c.get().wrapping_add(1)));
    BYTES.with(|c| c.set(c.get().wrapping_add(size as u64)));
}

/// Cumulative heap allocations recorded on this thread.
pub fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Cumulative heap bytes requested on this thread.
pub fn bytes_allocated() -> u64 {
    BYTES.with(Cell::get)
}

/// What a [`measure`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc`/`realloc` calls during the measured closure.
    pub allocations: u64,
    /// Total bytes those calls requested.
    pub bytes: u64,
}

impl AllocStats {
    /// `true` if the measured region performed no heap allocation.
    pub fn is_zero(&self) -> bool {
        self.allocations == 0
    }
}

/// Run `f` and report how many heap allocations it performed on this
/// thread.
///
/// Requires [`install_counting_allocator!`] in the enclosing binary;
/// without it the result is always zero, so pair every zero-assertion
/// suite with a canary:
///
/// ```ignore
/// let canary = lotus_core::alloc_guard::measure(|| {
///     std::hint::black_box(Vec::<u8>::with_capacity(64));
/// });
/// assert!(canary.allocations > 0, "counting allocator not installed");
/// ```
pub fn measure<R>(f: impl FnOnce() -> R) -> AllocStats {
    let a0 = allocations();
    let b0 = bytes_allocated();
    let result = f();
    std::hint::black_box(&result);
    drop(result);
    AllocStats {
        allocations: allocations().wrapping_sub(a0),
        bytes: bytes_allocated().wrapping_sub(b0),
    }
}

/// Expand the counting [`GlobalAlloc`](std::alloc::GlobalAlloc) shim and
/// register it as the `#[global_allocator]` of the calling crate.
///
/// Invoke exactly once, at the top level of a test crate (a crate can
/// have only one global allocator). The shim forwards every call to
/// [`std::alloc::System`] and reports `alloc`/`realloc` into
/// [`alloc_guard`](crate::alloc_guard)'s thread-local counters.
/// Deallocations are not counted: a steady-state step that frees memory
/// it did not allocate is already a bug the allocation count of the
/// *previous* step catches.
///
/// The expansion contains the `unsafe impl` this crate's
/// `#![forbid(unsafe_code)]` disallows; that is the point — the unsafe
/// code is compiled into the invoking crate, keeping every workspace
/// library crate forbid-clean (and `lotus-lint`'s crate-root rule green).
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        /// Counting allocator shim (see `lotus_core::alloc_guard`).
        struct LotusCountingAllocator;

        unsafe impl ::std::alloc::GlobalAlloc for LotusCountingAllocator {
            unsafe fn alloc(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                $crate::alloc_guard::record_alloc(layout.size());
                unsafe { ::std::alloc::System.alloc(layout) }
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: ::std::alloc::Layout) {
                unsafe { ::std::alloc::System.dealloc(ptr, layout) }
            }

            unsafe fn realloc(
                &self,
                ptr: *mut u8,
                layout: ::std::alloc::Layout,
                new_size: usize,
            ) -> *mut u8 {
                $crate::alloc_guard::record_alloc(new_size);
                unsafe { ::std::alloc::System.realloc(ptr, layout, new_size) }
            }
        }

        #[global_allocator]
        static LOTUS_COUNTING_ALLOCATOR: LotusCountingAllocator = LotusCountingAllocator;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit tests run without the macro installed (this crate forbids
    // unsafe code), so they can only exercise the counter plumbing; the
    // end-to-end proof that the shim trips lives in the bench crate's
    // `alloc_steady` suite, canary included.

    #[test]
    fn record_alloc_bumps_both_counters() {
        let a0 = allocations();
        let b0 = bytes_allocated();
        record_alloc(48);
        record_alloc(16);
        assert_eq!(allocations() - a0, 2);
        assert_eq!(bytes_allocated() - b0, 64);
    }

    #[test]
    fn measure_reports_the_delta() {
        let stats = measure(|| record_alloc(10));
        assert_eq!(
            stats,
            AllocStats {
                allocations: 1,
                bytes: 10
            }
        );
        assert!(!stats.is_zero());
        assert!(measure(|| ()).is_zero());
    }
}
