//! Attacker strategies for the token-collecting model.
//!
//! §3 of the paper assumes an attacker that, at the start of every round,
//! chooses a subset of nodes and hands each all the tokens. Which subset to
//! choose is the strategic question, and the paper walks through the
//! options parameter by parameter: cuts exploiting the graph `G`, rare
//! tokens exploiting the allocation `f`, and mass satiation to depress the
//! effective trade-opportunity budget `c`. Each of those is a strategy
//! here; the bench binaries sweep them (experiments X1–X3, X10).

use crate::token::SystemView;
use netsim::rng::DetRng;
use netsim::NodeId;

/// A strategy choosing which nodes to satiate each round.
///
/// Implementations are consulted at the start of every round with a
/// read-only [`SystemView`]; every returned node receives the full token
/// set before gossip begins.
pub trait Attacker {
    /// Append this round's targets to `out`.
    ///
    /// The caller owns (and clears) the buffer, so a per-round consult
    /// costs no allocation once the buffer has grown to its steady-state
    /// size — the contract the zero-alloc-per-step regression suite
    /// holds every simulator to.
    fn targets_into(&mut self, view: &SystemView<'_>, rng: &mut DetRng, out: &mut Vec<NodeId>);

    /// Nodes to satiate at the start of this round, as a fresh vector.
    ///
    /// Allocating convenience over [`Attacker::targets_into`] for tests
    /// and one-shot call sites; hot loops keep a scratch buffer instead.
    fn targets(&mut self, view: &SystemView<'_>, rng: &mut DetRng) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.targets_into(view, rng, &mut out);
        out
    }

    /// Human-readable strategy name for reports.
    fn label(&self) -> &'static str {
        "attack"
    }
}

/// The null attacker: never satiates anyone. The baseline for every sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoAttack;

impl Attacker for NoAttack {
    fn targets_into(&mut self, _view: &SystemView<'_>, _rng: &mut DetRng, _out: &mut Vec<NodeId>) {}

    fn label(&self) -> &'static str {
        "no attack"
    }
}

/// Satiate a fixed random fraction of all nodes, chosen once in round 0
/// and re-satiated every round (the paper's mass-satiation attack on the
/// trade-opportunity budget `c`).
#[derive(Debug, Clone, PartialEq)]
pub struct SatiateRandomFraction {
    fraction: f64,
    chosen: Option<Vec<NodeId>>,
}

impl SatiateRandomFraction {
    /// Target `fraction` (clamped to `[0, 1]`) of all nodes.
    pub fn new(fraction: f64) -> Self {
        SatiateRandomFraction {
            fraction: fraction.clamp(0.0, 1.0),
            chosen: None,
        }
    }

    /// The chosen target set (after the first round).
    pub fn chosen(&self) -> Option<&[NodeId]> {
        self.chosen.as_deref()
    }
}

impl Attacker for SatiateRandomFraction {
    fn targets_into(&mut self, view: &SystemView<'_>, rng: &mut DetRng, out: &mut Vec<NodeId>) {
        if self.chosen.is_none() {
            let n = view.graph.len() as usize;
            let k = ((n as f64) * self.fraction).round() as usize;
            let picks = rng
                .sample_indices(n, k.min(n))
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            self.chosen = Some(picks);
        }
        out.extend_from_slice(self.chosen.as_deref().unwrap_or_default());
    }

    fn label(&self) -> &'static str {
        "satiate random fraction"
    }
}

/// Satiate an explicit node set every round — used for graph-cut attacks
/// where the set is a vertex cut of `G` (paper §3: "the attacker can
/// partition the graph with relatively little cost by removing any set of
/// nodes that constitutes a cut").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatiateCut {
    cut: Vec<NodeId>,
}

impl SatiateCut {
    /// Satiate exactly `cut` every round.
    pub fn new(cut: Vec<NodeId>) -> Self {
        SatiateCut { cut }
    }

    /// The vertical column `col` of a `rows × cols` grid — the canonical
    /// cheap cut of a grid graph (cost `rows` nodes splits the system).
    pub fn grid_column(rows: u32, cols: u32, col: u32) -> Self {
        assert!(col < cols, "column {col} out of range for {cols} columns");
        let cut = (0..rows).map(|r| NodeId(r * cols + col)).collect();
        SatiateCut { cut }
    }

    /// Plan a cut on an arbitrary graph with the BFS-layer heuristic
    /// ([`netsim::graph::Graph::layered_cut`]), as an attacker exploring
    /// the topology from `src` would. Returns `None` where no cheap
    /// layered cut exists (e.g. dense random graphs — which is exactly why
    /// they resist this attack, §3).
    pub fn plan(graph: &netsim::graph::Graph, src: NodeId) -> Option<Self> {
        graph.layered_cut(src).map(SatiateCut::new)
    }

    /// The satiated node set.
    pub fn cut(&self) -> &[NodeId] {
        &self.cut
    }

    /// Whether this set actually cuts `graph` (sanity check for
    /// experiments).
    pub fn is_cut_of(&self, graph: &netsim::graph::Graph) -> bool {
        let mut removed = vec![false; graph.len() as usize];
        for n in &self.cut {
            removed[n.index()] = true;
        }
        graph.is_vertex_cut(&removed)
    }
}

impl Attacker for SatiateCut {
    fn targets_into(&mut self, _view: &SystemView<'_>, _rng: &mut DetRng, out: &mut Vec<NodeId>) {
        out.extend_from_slice(&self.cut);
    }

    fn label(&self) -> &'static str {
        "satiate cut"
    }
}

/// Satiate every current holder of one token, every round — the
/// rare-token denial attack (paper §3: "an attacker can deny the entire
/// system access to that token for the cost of satiating one node").
///
/// Satiating a holder does not *remove* the token, but with `a = 0` a
/// satiated holder never responds, so the token stops spreading; if all
/// holders are satiated before they pass it on, the rest of the system
/// never completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatiateRareHolders {
    token: usize,
}

impl SatiateRareHolders {
    /// Target the holders of `token` (conventionally token 0 under
    /// [`crate::token::Allocation::RareToken`]).
    pub fn new(token: usize) -> Self {
        SatiateRareHolders { token }
    }
}

impl Attacker for SatiateRareHolders {
    fn targets_into(&mut self, view: &SystemView<'_>, _rng: &mut DetRng, out: &mut Vec<NodeId>) {
        for (i, h) in view.holdings.iter().enumerate() {
            if h.contains(self.token) {
                out.push(NodeId(i as u32));
            }
        }
    }

    fn label(&self) -> &'static str {
        "satiate rare-token holders"
    }
}

/// Rotate satiation across the population: each `period` rounds a
/// different `fraction`-sized slice is satiated. The paper: "By changing
/// who is satiated over time, the attacker could even make the service
/// intermittently unusable for all nodes."
///
/// This is now a thin alias over the shared timing layer: the rotation
/// arithmetic lives in [`crate::schedule::rotating_window`] and the
/// period in an [`AttackSchedule`](crate::schedule::AttackSchedule) — the
/// same machinery every substrate's scheduled attacks step.
#[derive(Debug, Clone, PartialEq)]
pub struct RotatingSatiation {
    fraction: f64,
    schedule: crate::schedule::ScheduleState,
}

impl RotatingSatiation {
    /// Satiate a rotating `fraction` of nodes, advancing every `period`
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(fraction: f64, period: u64) -> Self {
        assert!(period > 0, "rotation period must be positive");
        RotatingSatiation {
            fraction: fraction.clamp(0.0, 1.0),
            schedule: crate::schedule::ScheduleState::new(
                crate::schedule::AttackSchedule::always().with_rotation(period),
            ),
        }
    }
}

impl Attacker for RotatingSatiation {
    fn targets_into(&mut self, view: &SystemView<'_>, _rng: &mut DetRng, out: &mut Vec<NodeId>) {
        let n = view.graph.len() as usize;
        let k = ((n as f64) * self.fraction).round() as usize;
        if k == 0 {
            return;
        }
        let phase = self
            .schedule
            .rotation_phase(view.round)
            .expect("rotating satiation always has a rotation period");
        out.extend(crate::schedule::rotating_window(phase, k, n).map(|i| NodeId(i as u32)));
    }

    fn label(&self) -> &'static str {
        "rotating satiation"
    }
}

/// Wrap any strategy with a per-round budget: at most `budget` nodes get
/// satiated per round (attackers in real systems have finite bandwidth —
/// the paper's "sufficiently rapidly" qualifier made scarce).
#[derive(Debug, Clone)]
pub struct BudgetedAttacker<A> {
    inner: A,
    budget: usize,
    /// Total satiations actually performed.
    spent: u64,
}

impl<A: Attacker> BudgetedAttacker<A> {
    /// Limit `inner` to `budget` satiations per round.
    pub fn new(inner: A, budget: usize) -> Self {
        BudgetedAttacker {
            inner,
            budget,
            spent: 0,
        }
    }

    /// Total satiations performed so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Attacker> Attacker for BudgetedAttacker<A> {
    fn targets_into(&mut self, view: &SystemView<'_>, rng: &mut DetRng, out: &mut Vec<NodeId>) {
        // Truncate only what the inner strategy appended this round: the
        // buffer may already carry another attacker's targets.
        let start = out.len();
        self.inner.targets_into(view, rng, out);
        out.truncate(start + self.budget);
        self.spent += (out.len() - start) as u64;
    }

    fn label(&self) -> &'static str {
        "budgeted attacker"
    }
}

/// A cloneable, data-carrying attacker specification for the unified
/// [`Scenario`](crate::scenario::Scenario) API.
///
/// The concrete strategies above are what analyses use directly; scenario
/// configs need an attack value that is `Clone` (sweeps re-build the
/// scenario per seed) and nameable without generics. `TokenAttack` wraps
/// each strategy — including its mutable state — behind one enum and
/// delegates [`Attacker`].
///
/// ```
/// use lotus_core::attack::{Attacker, TokenAttack};
/// let mut a = TokenAttack::random_fraction(0.5);
/// assert_eq!(a.label(), "satiate random fraction");
/// let b = a.clone(); // specs clone freely, state and all
/// assert_eq!(format!("{b:?}"), format!("{a:?}"));
/// ```
#[derive(Debug, Clone)]
pub enum TokenAttack {
    /// No attack ([`NoAttack`]).
    None(NoAttack),
    /// Mass satiation of a random fraction ([`SatiateRandomFraction`]).
    RandomFraction(SatiateRandomFraction),
    /// Satiate a vertex cut ([`SatiateCut`]).
    Cut(SatiateCut),
    /// Satiate the holders of one token ([`SatiateRareHolders`]).
    RareHolders(SatiateRareHolders),
    /// Rotate the satiated set over time ([`RotatingSatiation`]).
    Rotating(RotatingSatiation),
    /// Budget-limit any of the above ([`BudgetedAttacker`]).
    Budgeted(Box<BudgetedAttacker<TokenAttack>>),
}

impl TokenAttack {
    /// The null attack.
    pub fn none() -> Self {
        TokenAttack::None(NoAttack)
    }

    /// Satiate a random `fraction` of all nodes, fixed at first use.
    pub fn random_fraction(fraction: f64) -> Self {
        TokenAttack::RandomFraction(SatiateRandomFraction::new(fraction))
    }

    /// Satiate an explicit cut.
    pub fn cut(cut: SatiateCut) -> Self {
        TokenAttack::Cut(cut)
    }

    /// Satiate every current holder of `token`.
    pub fn rare_holders(token: usize) -> Self {
        TokenAttack::RareHolders(SatiateRareHolders::new(token))
    }

    /// Rotate a satiated `fraction` every `period` rounds.
    pub fn rotating(fraction: f64, period: u64) -> Self {
        TokenAttack::Rotating(RotatingSatiation::new(fraction, period))
    }

    /// Limit `self` to `budget` satiations per round.
    pub fn budgeted(self, budget: usize) -> Self {
        TokenAttack::Budgeted(Box::new(BudgetedAttacker::new(self, budget)))
    }
}

impl Attacker for TokenAttack {
    fn targets_into(&mut self, view: &SystemView<'_>, rng: &mut DetRng, out: &mut Vec<NodeId>) {
        match self {
            TokenAttack::None(a) => a.targets_into(view, rng, out),
            TokenAttack::RandomFraction(a) => a.targets_into(view, rng, out),
            TokenAttack::Cut(a) => a.targets_into(view, rng, out),
            TokenAttack::RareHolders(a) => a.targets_into(view, rng, out),
            TokenAttack::Rotating(a) => a.targets_into(view, rng, out),
            TokenAttack::Budgeted(a) => a.targets_into(view, rng, out),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            TokenAttack::None(a) => a.label(),
            TokenAttack::RandomFraction(a) => a.label(),
            TokenAttack::Cut(a) => a.label(),
            TokenAttack::RareHolders(a) => a.label(),
            TokenAttack::Rotating(a) => a.label(),
            TokenAttack::Budgeted(a) => a.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Allocation, SatFunction, TokenSystem, TokenSystemConfig};
    use netsim::graph::Graph;

    fn complete_system(n: u32, tokens: usize, seed: u64) -> TokenSystem {
        let cfg = TokenSystemConfig::builder(Graph::complete(n))
            .tokens(tokens)
            .allocation(Allocation::UniformCopies { copies: 2 })
            .build()
            .unwrap();
        TokenSystem::new(cfg, seed)
    }

    #[test]
    fn no_attack_is_empty() {
        let sys = complete_system(8, 4, 0);
        let mut rng = DetRng::seed_from(0);
        assert!(NoAttack.targets(&sys.view(), &mut rng).is_empty());
        assert_eq!(NoAttack.label(), "no attack");
    }

    #[test]
    fn random_fraction_is_stable_across_rounds() {
        let sys = complete_system(20, 4, 1);
        let mut rng = DetRng::seed_from(5);
        let mut a = SatiateRandomFraction::new(0.25);
        let t1 = a.targets(&sys.view(), &mut rng);
        let t2 = a.targets(&sys.view(), &mut rng);
        assert_eq!(t1.len(), 5);
        assert_eq!(t1, t2, "target set chosen once");
        assert_eq!(a.chosen().unwrap(), &t1[..]);
    }

    #[test]
    fn random_fraction_clamps() {
        let sys = complete_system(10, 4, 1);
        let mut rng = DetRng::seed_from(5);
        assert!(SatiateRandomFraction::new(-0.5)
            .targets(&sys.view(), &mut rng)
            .is_empty());
        assert_eq!(
            SatiateRandomFraction::new(7.0)
                .targets(&sys.view(), &mut rng)
                .len(),
            10
        );
    }

    #[test]
    fn grid_column_is_a_cut() {
        let g = Graph::grid(5, 7, false);
        let cut = SatiateCut::grid_column(5, 7, 3);
        assert_eq!(cut.cut().len(), 5);
        assert!(cut.is_cut_of(&g));
        // Column 0 removes the border; survivors remain connected.
        let border = SatiateCut::grid_column(5, 7, 0);
        assert!(!border.is_cut_of(&g));
    }

    #[test]
    fn planned_cut_works_on_grids_not_on_dense_graphs() {
        let grid = Graph::grid(6, 10, false);
        let cut = SatiateCut::plan(&grid, NodeId(0)).expect("grid has a cheap cut");
        assert!(cut.is_cut_of(&grid));
        assert!(cut.cut().len() <= 10);
        let dense = Graph::complete(12);
        assert!(SatiateCut::plan(&dense, NodeId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grid_column_bounds_checked() {
        SatiateCut::grid_column(5, 7, 7);
    }

    #[test]
    fn rare_holders_tracks_spread() {
        let cfg = TokenSystemConfig::builder(Graph::complete(10))
            .tokens(3)
            .allocation(Allocation::RareToken {
                holder: NodeId(4),
                copies: 3,
            })
            .build()
            .unwrap();
        let sys = TokenSystem::new(cfg, 2);
        let mut rng = DetRng::seed_from(0);
        let mut a = SatiateRareHolders::new(0);
        assert_eq!(a.targets(&sys.view(), &mut rng), vec![NodeId(4)]);
    }

    #[test]
    fn rotating_satiation_rotates() {
        let sys = complete_system(10, 4, 3);
        let mut rng = DetRng::seed_from(0);
        let mut a = RotatingSatiation::new(0.3, 1);
        let t0 = a.targets(&sys.view(), &mut rng);
        assert_eq!(t0, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Advance the system's round counter by running gossip.
        let mut sys = sys;
        use netsim::round::RoundSim;
        sys.round(0);
        let t1 = a.targets(&sys.view(), &mut rng);
        assert_eq!(t1, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn rotating_zero_fraction_empty() {
        let sys = complete_system(10, 4, 3);
        let mut rng = DetRng::seed_from(0);
        let mut a = RotatingSatiation::new(0.0, 2);
        assert!(a.targets(&sys.view(), &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rotating_zero_period_panics() {
        RotatingSatiation::new(0.5, 0);
    }

    #[test]
    fn budgeted_attacker_truncates_and_counts() {
        let sys = complete_system(20, 4, 1);
        let mut rng = DetRng::seed_from(5);
        let mut a = BudgetedAttacker::new(SatiateRandomFraction::new(0.5), 3);
        let t = a.targets(&sys.view(), &mut rng);
        assert_eq!(t.len(), 3);
        assert_eq!(a.spent(), 3);
        let _ = a.targets(&sys.view(), &mut rng);
        assert_eq!(a.spent(), 6);
        assert_eq!(a.inner().chosen().unwrap().len(), 10);
    }

    #[test]
    fn cut_attack_starves_far_side() {
        // 4x8 grid; cut column 4; token 0 lives only on the left side.
        let g = Graph::grid(4, 8, false);
        let mut lists: Vec<Vec<NodeId>> = Vec::new();
        // token 0: only at node (0,0); tokens 1..4: spread on both sides.
        lists.push(vec![NodeId(0)]);
        for t in 1..4u32 {
            lists.push(vec![NodeId(t), NodeId(31 - t)]);
        }
        let cfg = TokenSystemConfig::builder(g)
            .tokens(4)
            .allocation(Allocation::Explicit(lists))
            .sat(SatFunction::CollectAll)
            .build()
            .unwrap();
        let mut sys = TokenSystem::new(cfg, 7);
        let mut attack = SatiateCut::grid_column(4, 8, 4);
        let report = sys.run(&mut attack, 200);
        // Right side of the cut (columns 5..8) never gets token 0.
        let mut right_missing = 0;
        for r in 0..4u32 {
            for c in 5..8u32 {
                let v = NodeId(r * 8 + c);
                if !sys.holdings(v).contains(0) {
                    right_missing += 1;
                }
            }
        }
        assert_eq!(right_missing, 12, "no right-side node can obtain token 0");
        assert!(report.all_satiated_at.is_none());
    }
}
