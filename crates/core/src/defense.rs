//! Defense principles from §4 of the paper, as typed descriptors.
//!
//! The paper examines four design principles for tolerating lotus-eater
//! attacks. Each principle maps to concrete mechanisms implemented by the
//! protocol simulators in this workspace; this module gives the principles
//! and mechanisms a shared vocabulary so experiments can be labelled,
//! composed and reported uniformly (the `defense_playbook` example walks
//! through all four).

/// The four defense principles of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Principle {
    /// Choose `G` and `f` so no cheap cut or rare holder exists — the
    /// traditional, best-studied principle.
    NonRandomFailureResilience,
    /// Make satiation hard: scrip/reputation indirection, rarest-first,
    /// network coding.
    MakeSatiationHard,
    /// Leverage obedient nodes: report-and-evict excessive service,
    /// slightly unbalanced exchanges.
    LeverageObedience,
    /// Encourage altruism: bigger optimistic pushes, optimistic unchokes,
    /// seeding, responding while satiated.
    EncourageAltruism,
}

impl Principle {
    /// Short human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Principle::NonRandomFailureResilience => "resilience to non-random failures",
            Principle::MakeSatiationHard => "making satiation hard",
            Principle::LeverageObedience => "leveraging obedience",
            Principle::EncourageAltruism => "encouraging altruism",
        }
    }

    /// All four principles in paper order.
    pub fn all() -> [Principle; 4] {
        [
            Principle::NonRandomFailureResilience,
            Principle::MakeSatiationHard,
            Principle::LeverageObedience,
            Principle::EncourageAltruism,
        ]
    }
}

impl std::fmt::Display for Principle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete defense mechanism, each implementing one principle.
///
/// The numeric payloads are the knobs the experiments sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Respond to requests while satiated with this probability (token
    /// model `a`; BitTorrent seeding is its protocol-level cousin).
    Altruism(f64),
    /// Raise the optimistic push size (BAR Gossip; Figure 2).
    PushSize(u32),
    /// Obedient nodes give one extra update in balanced exchanges
    /// (BAR Gossip; Figure 3).
    UnbalancedExchange,
    /// Cap the number of useful updates any single peer may hand a node
    /// per round; prevents "sufficiently rapid" satiation (§5 open
    /// problem).
    RateLimit(u32),
    /// Obedient nodes report peers that provide excessive service; a
    /// quorum of distinct reports evicts the peer.
    ReportAndEvict {
        /// Fraction of honest nodes that are obedient reporters.
        obedient_fraction: f64,
        /// Distinct reports needed to evict.
        quorum: u32,
    },
    /// Satiation requires any `k` of the `n` coded tokens (Avalanche-style
    /// network coding).
    Coding {
        /// Tokens needed to reconstruct.
        need: usize,
    },
    /// Indirect reciprocity through a fixed money supply (scrip): satiating
    /// many nodes needs more money than exists.
    ScripIndirection {
        /// Average money per agent.
        money_per_agent: f64,
    },
}

impl Mechanism {
    /// The §4 principle this mechanism implements.
    pub fn principle(self) -> Principle {
        match self {
            Mechanism::Altruism(_) | Mechanism::PushSize(_) => Principle::EncourageAltruism,
            Mechanism::UnbalancedExchange | Mechanism::ReportAndEvict { .. } => {
                Principle::LeverageObedience
            }
            Mechanism::RateLimit(_) => Principle::LeverageObedience,
            Mechanism::Coding { .. } | Mechanism::ScripIndirection { .. } => {
                Principle::MakeSatiationHard
            }
        }
    }

    /// Short label for tables and figure legends.
    pub fn label(self) -> String {
        match self {
            Mechanism::Altruism(a) => format!("altruism a={a}"),
            Mechanism::PushSize(s) => format!("push size {s}"),
            Mechanism::UnbalancedExchange => "unbalanced exchanges".to_string(),
            Mechanism::RateLimit(cap) => format!("rate limit {cap}/exchange"),
            Mechanism::ReportAndEvict {
                obedient_fraction,
                quorum,
            } => format!("report-and-evict (obedient {obedient_fraction}, quorum {quorum})"),
            Mechanism::Coding { need } => format!("coding (need {need})"),
            Mechanism::ScripIndirection { money_per_agent } => {
                format!("scrip (m={money_per_agent})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_principles_in_order() {
        let all = Principle::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], Principle::NonRandomFailureResilience);
        assert_eq!(all[3], Principle::EncourageAltruism);
    }

    #[test]
    fn display_matches_name() {
        for p in Principle::all() {
            assert_eq!(format!("{p}"), p.name());
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn mechanisms_map_to_principles() {
        assert_eq!(
            Mechanism::Altruism(0.1).principle(),
            Principle::EncourageAltruism
        );
        assert_eq!(
            Mechanism::PushSize(10).principle(),
            Principle::EncourageAltruism
        );
        assert_eq!(
            Mechanism::UnbalancedExchange.principle(),
            Principle::LeverageObedience
        );
        assert_eq!(
            Mechanism::RateLimit(2).principle(),
            Principle::LeverageObedience
        );
        assert_eq!(
            Mechanism::Coding { need: 8 }.principle(),
            Principle::MakeSatiationHard
        );
        assert_eq!(
            Mechanism::ScripIndirection {
                money_per_agent: 2.0
            }
            .principle(),
            Principle::MakeSatiationHard
        );
    }

    #[test]
    fn labels_are_informative() {
        assert!(Mechanism::PushSize(10).label().contains("10"));
        assert!(Mechanism::RateLimit(3).label().contains('3'));
        assert!(Mechanism::ReportAndEvict {
            obedient_fraction: 0.5,
            quorum: 3
        }
        .label()
        .contains("quorum 3"));
    }
}
