//! A dynamic bitset over `u64` words.
//!
//! Token sets (§3 model), live-update windows (BAR Gossip) and piece maps
//! (BitTorrent) are all dense sets of small integers; this bitset is the
//! shared representation. Set algebra (union, difference, intersection
//! counts) is word-parallel, which keeps full parameter sweeps fast enough
//! to run hundreds of simulations per figure.

/// A fixed-universe dynamic bitset.
///
/// The universe size is fixed at construction; all operations between two
/// sets require equal universe sizes.
///
/// ```
/// use lotus_core::bitset::BitSet;
/// let mut a = BitSet::new(10);
/// a.insert(3);
/// a.insert(7);
/// assert_eq!(a.len(), 2);
/// assert!(a.contains(3));
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    universe: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitSet")
            .field("universe", &self.universe)
            .field("len", &self.len())
            .field("items", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

impl BitSet {
    /// An empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The full set over `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = BitSet::new(universe);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Build from an iterator of elements.
    ///
    /// # Panics
    ///
    /// Panics if an element is `>= universe`.
    pub fn from_iter_with(universe: usize, items: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(universe);
        for i in items {
            s.insert(i);
        }
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.universe;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Universe size (maximum element + 1 allowed).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if the set contains every universe element.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "element {i} outside universe {}",
            self.universe
        );
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove `i`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "element {i} outside universe {}",
            self.universe
        );
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "element {i} outside universe {}",
            self.universe
        );
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn check_compat(&self, other: &BitSet) {
        assert_eq!(
            self.universe, other.universe,
            "bitset universes differ ({} vs {})",
            self.universe, other.universe
        );
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self \= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.check_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        self.check_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// The backing words in index order (bit `i` lives at
    /// `words()[i / 64] & (1 << (i % 64))`). Read-only seam for
    /// word-parallel consumers — the sharded activity index
    /// ([`crate::soa::ShardMap`]) popcounts per-shard word slices
    /// through this. Bits at or above the universe are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Elements of `self \ other` in increasing order, up to `limit`.
    ///
    /// The exchange protocols use this to pick "which updates to hand over"
    /// deterministically (lowest id = oldest release first).
    pub fn difference_first_n(&self, other: &BitSet, limit: usize) -> Vec<usize> {
        self.check_compat(other);
        let mut out = Vec::with_capacity(limit.min(16));
        'outer: for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut w = a & !b;
            while w != 0 {
                if out.len() == limit {
                    break 'outer;
                }
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Remove all elements.
    ///
    /// Together with [`BitSet::copy_from`] this is the scratch-buffer
    /// idiom the simulators' hot loops rely on: one set owned by the sim
    /// struct, cleared or overwritten per round, never reallocated.
    #[inline]
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Overwrite `self` with the contents of `other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        self.check_compat(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Insert every universe element in place — the allocation-free
    /// counterpart of [`BitSet::full`], used where a hot loop would
    /// otherwise construct a fresh full set (e.g. satiating a node).
    #[inline]
    pub fn fill(&mut self) {
        for w in self.words.iter_mut() {
            *w = u64::MAX;
        }
        self.trim();
    }
}

/// Iterator over the elements of a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
    }

    #[test]
    fn word_boundaries() {
        let mut s = BitSet::new(130);
        for i in [0, 63, 64, 127, 128, 129] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 129]);
        assert_eq!(s.len(), 6);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universe_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn full_is_trimmed() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.is_full());
        assert!(s.contains(69));
        let e = BitSet::full(0);
        assert!(e.is_empty());
        assert!(e.is_full()); // vacuously: 0 of 0
    }

    #[test]
    fn fill_matches_full_across_word_boundaries() {
        for n in [0, 1, 63, 64, 65, 70, 128, 129] {
            let mut s = BitSet::new(n);
            if n > 0 {
                s.insert(n / 2); // fill must absorb prior contents
            }
            s.fill();
            assert_eq!(s, BitSet::full(n), "universe {n}");
            assert!(s.is_full(), "universe {n}");
            assert_eq!(s.len(), n, "universe {n}");
        }
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with(20, [1, 3, 5, 7]);
        let b = BitSet::from_iter_with(20, [3, 4, 5, 6]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 6, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 5]);

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 7]);

        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.difference_count(&b), 2);
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn difference_first_n_is_sorted_and_limited() {
        let a = BitSet::from_iter_with(200, [10, 70, 130, 190]);
        let b = BitSet::from_iter_with(200, [70]);
        assert_eq!(a.difference_first_n(&b, 2), vec![10, 130]);
        assert_eq!(a.difference_first_n(&b, 10), vec![10, 130, 190]);
        assert_eq!(a.difference_first_n(&b, 0), Vec::<usize>::new());
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_iter_with(10, [1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 10);
    }

    #[test]
    fn clear_and_copy_from_at_word_boundaries() {
        // Universes straddling a word boundary: 63 (one partial word),
        // 64 (exactly one word), 65 (one word + one bit).
        for universe in [63usize, 64, 65] {
            let top = universe - 1;
            let src = BitSet::from_iter_with(universe, [0, top / 2, top]);
            let mut dst = BitSet::full(universe);
            dst.copy_from(&src);
            assert_eq!(dst, src, "universe {universe}: copy_from overwrites");
            assert_eq!(dst.iter().collect::<Vec<_>>(), vec![0, top / 2, top]);
            dst.clear();
            assert!(dst.is_empty(), "universe {universe}: clear empties");
            assert_eq!(dst.universe(), universe);
            // A cleared set is reusable as a scratch buffer.
            assert!(dst.insert(top));
            assert!(dst.contains(top));
            assert!(dst.remove(top));
            assert_eq!(dst.intersection_count(&src), 0);
        }
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn copy_from_mismatched_universe_panics() {
        let mut a = BitSet::new(64);
        let b = BitSet::new(65);
        a.copy_from(&b);
    }

    #[test]
    fn debug_shows_items() {
        let s = BitSet::from_iter_with(10, [2, 4]);
        let d = format!("{s:?}");
        assert!(d.contains("[2, 4]"), "debug was {d}");
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    const UNIVERSE: usize = 257; // deliberately not a multiple of 64

    fn model_pair(items: &[usize]) -> (BitSet, BTreeSet<usize>) {
        let set = BitSet::from_iter_with(UNIVERSE, items.iter().map(|&i| i % UNIVERSE));
        let model: BTreeSet<usize> = items.iter().map(|&i| i % UNIVERSE).collect();
        (set, model)
    }

    proptest! {
        #[test]
        fn matches_btreeset_iteration(items in proptest::collection::vec(0usize..UNIVERSE, 0..100)) {
            let (set, model) = model_pair(&items);
            prop_assert_eq!(set.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(set.len(), model.len());
        }

        #[test]
        fn union_matches_model(a in proptest::collection::vec(0usize..UNIVERSE, 0..80),
                               b in proptest::collection::vec(0usize..UNIVERSE, 0..80)) {
            let (mut sa, ma) = model_pair(&a);
            let (sb, mb) = model_pair(&b);
            sa.union_with(&sb);
            let mu: BTreeSet<usize> = ma.union(&mb).copied().collect();
            prop_assert_eq!(sa.iter().collect::<BTreeSet<_>>(), mu);
        }

        #[test]
        fn subtract_matches_model(a in proptest::collection::vec(0usize..UNIVERSE, 0..80),
                                  b in proptest::collection::vec(0usize..UNIVERSE, 0..80)) {
            let (mut sa, ma) = model_pair(&a);
            let (sb, mb) = model_pair(&b);
            sa.subtract(&sb);
            let md: BTreeSet<usize> = ma.difference(&mb).copied().collect();
            prop_assert_eq!(sa.iter().collect::<BTreeSet<_>>(), md);
        }

        #[test]
        fn counts_match_model(a in proptest::collection::vec(0usize..UNIVERSE, 0..80),
                              b in proptest::collection::vec(0usize..UNIVERSE, 0..80)) {
            let (sa, ma) = model_pair(&a);
            let (sb, mb) = model_pair(&b);
            prop_assert_eq!(sa.intersection_count(&sb), ma.intersection(&mb).count());
            prop_assert_eq!(sa.difference_count(&sb), ma.difference(&mb).count());
            prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        }

        #[test]
        fn difference_first_n_prefix(a in proptest::collection::vec(0usize..UNIVERSE, 0..80),
                                     b in proptest::collection::vec(0usize..UNIVERSE, 0..80),
                                     limit in 0usize..20) {
            let (sa, ma) = model_pair(&a);
            let (sb, mb) = model_pair(&b);
            let expected: Vec<usize> = ma.difference(&mb).take(limit).copied().collect();
            prop_assert_eq!(sa.difference_first_n(&sb, limit), expected);
        }

        #[test]
        fn insert_then_remove_roundtrip(items in proptest::collection::vec(0usize..UNIVERSE, 0..50)) {
            let mut s = BitSet::new(UNIVERSE);
            for &i in &items { s.insert(i); }
            for &i in &items { s.remove(i); }
            prop_assert!(s.is_empty());
        }
    }
}
