//! Scoped worker pool for deterministic *intra-run* parallelism.
//!
//! [`sweep`](crate::sweep) parallelizes across independent `(x, seed)`
//! jobs; this module parallelizes *inside* one run. The unit of work is
//! a contiguous chunk of a pre-sized output slice (in practice: the
//! pair entries of one exchange plan, partitioned along shard
//! boundaries — see `netsim::plan`). Because every chunk's extent is
//! fixed before any worker starts, and chunk `k` always covers the same
//! indices whether it runs on the calling thread or a spawned one, the
//! assembled output is byte-identical for any worker count — the same
//! job-ordered-fold argument `sweep` relies on, with the fold replaced
//! by in-place writes to disjoint subslices.
//!
//! The pool itself is just a thread-count policy wrapped around
//! `std::thread::scope` (zero dependencies, no persistent threads, no
//! channels). A `threads == 1` pool never spawns and never allocates,
//! so steady-state round loops stay allocation-free (the alloc-guard
//! suite pins this); callers gate engagement on a work-size floor so
//! small populations take that path even when more threads are
//! available.

/// Default intra-run worker count: the `LOTUS_RUN_THREADS` environment
/// variable when set to a positive integer (the CI determinism matrix
/// pins runs to 1 and 8 workers with it), otherwise the machine's
/// parallelism. Results are bit-identical for any worker count; the
/// knob only trades wall-clock for cores. Independent from
/// `LOTUS_SWEEP_THREADS`, which governs the *across-run* sweep pool.
pub fn default_run_threads() -> usize {
    if let Some(n) = std::env::var("LOTUS_RUN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scoped worker pool with a fixed thread budget.
///
/// ```
/// use lotus_core::pool::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut data = [0u64; 6];
/// // Two chunks: [0..4) and [4..6); chunk k writes k+1 everywhere.
/// pool.run_partitioned(&mut data, &[4, 2], |k, chunk| {
///     for slot in chunk {
///         *slot = k as u64 + 1;
///     }
/// });
/// assert_eq!(data, [1, 1, 1, 1, 2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool with `requested` worker threads; `0` means "auto"
    /// ([`default_run_threads`]).
    pub fn new(requested: usize) -> Self {
        WorkerPool {
            threads: if requested == 0 {
                default_run_threads()
            } else {
                requested
            },
        }
    }

    /// A pool that never spawns (the sequential, allocation-free path).
    pub fn sequential() -> Self {
        WorkerPool { threads: 1 }
    }

    /// The worker budget (at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Split `data` into `sizes.len()` consecutive chunks (chunk `k` is
    /// `sizes[k]` elements long) and run `fill(k, chunk)` on each.
    ///
    /// With one thread or one chunk this degenerates to a plain loop on
    /// the calling thread — no spawn, no allocation. Otherwise each
    /// chunk runs on its own scoped thread (the first chunk on the
    /// calling thread), and the scope joins them all before returning.
    /// Chunk extents depend only on `sizes`, never on the thread
    /// budget, so `data` ends up byte-identical either way.
    ///
    /// # Panics
    ///
    /// Panics when `sizes` does not sum to `data.len()`, and propagates
    /// worker panics.
    // lint: hot-loop
    pub fn run_partitioned<T, F>(&self, data: &mut [T], sizes: &[usize], fill: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let total: usize = sizes.iter().sum();
        assert_eq!(total, data.len(), "chunk sizes must cover the data");
        if self.threads <= 1 || sizes.len() <= 1 {
            let mut rest = data;
            for (k, &size) in sizes.iter().enumerate() {
                let (chunk, tail) = rest.split_at_mut(size);
                fill(k, chunk);
                rest = tail;
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut first = None;
            for (k, &size) in sizes.iter().enumerate() {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                if k == 0 {
                    first = Some(chunk);
                } else {
                    let fill = &fill;
                    scope.spawn(move || fill(k, chunk));
                }
            }
            if let Some(chunk) = first {
                fill(0, chunk);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_auto_and_is_at_least_one() {
        assert!(WorkerPool::new(0).threads() >= 1);
        assert_eq!(WorkerPool::new(3).threads(), 3);
        assert_eq!(WorkerPool::sequential().threads(), 1);
    }

    fn checkered(pool: &WorkerPool, sizes: &[usize]) -> Vec<u64> {
        let n: usize = sizes.iter().sum();
        let mut data = vec![0u64; n];
        pool.run_partitioned(&mut data, sizes, |k, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (k as u64) << 32 | i as u64;
            }
        });
        data
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        let sizes = [7usize, 0, 13, 1, 64];
        let want = checkered(&WorkerPool::sequential(), &sizes);
        for threads in [2, 3, 8] {
            assert_eq!(
                checkered(&WorkerPool::new(threads), &sizes),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_work_is_fine() {
        let pool = WorkerPool::new(4);
        let mut data: [u8; 0] = [];
        pool.run_partitioned(&mut data, &[], |_, _| unreachable!());
        pool.run_partitioned(&mut data, &[0, 0], |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    #[should_panic(expected = "chunk sizes must cover the data")]
    fn mismatched_sizes_panic() {
        let mut data = [0u8; 3];
        WorkerPool::sequential().run_partitioned(&mut data, &[2], |_, _| {});
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let mut data = [0u8; 4];
            WorkerPool::new(2).run_partitioned(&mut data, &[2, 2], |k, _| {
                assert_ne!(k, 1, "boom");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_default_parses_positive_integers_only() {
        // Can't set the process env here (other tests run concurrently);
        // just pin that the default is sane.
        assert!(default_run_threads() >= 1);
    }
}
