//! Digest-exchange primitives: the summaries a digest-first gossip
//! round trades before transferring only the diff.
//!
//! Full-window exchange ships every update a peer holds, so a
//! lotus-eater's silent withholding is visible the moment a transfer
//! round comes up short. The realistic protocol shape at scale is
//! *advertise-then-transfer*: peers first swap a cheap summary of what
//! they hold, then request and ship only the difference. Bandwidth
//! scales with the diff — and withholding becomes undetectable until
//! the transfer leg, which is exactly the surface the
//! advertise-then-withhold (`poison`) attack exploits: advertise a
//! truthful digest, then selectively fail to deliver what was asked.
//!
//! Two summary shapes are provided:
//!
//! * [`BloomDigest`] — a fixed-size bloom filter over packed update
//!   ids. Probabilistic: never a false negative, false positives at a
//!   rate set by the bits/hashes/load trade-off
//!   ([`BloomDigest::expected_fp_rate`]). False positives read as
//!   *advertised-but-undelivered* on the wire, which is what gives a
//!   low-rate poisoner plausible deniability.
//! * [`region_hash`] — an exact order-free hash of one region's
//!   membership mask. Peers compare per-region hashes and exchange the
//!   raw masks only for regions that differ: zero false positives, so
//!   an audit of undelivered ids has perfect precision.
//!
//! Hashing is deterministic splitmix ([`netsim::rng::split_mix64`])
//! with fixed internal seeds — the same ids produce the same digest on
//! every machine and thread count, which the determinism gate relies
//! on. Probe and insert are allocation-free; the only allocation is the
//! word vector at construction.

use netsim::rng::split_mix64;

/// Domain-separation seed for the first bloom probe stream.
const BLOOM_SEED_A: u64 = 0x6c6f_7475_735f_6469; // "lotus_di"
/// Domain-separation seed for the second bloom probe stream.
const BLOOM_SEED_B: u64 = 0x6765_7374_5f62_6c6f; // "gest_blo"
/// Domain-separation seed for [`region_hash`].
const REGION_SEED: u64 = 0x7265_6769_6f6e_5f68; // "region_h"

/// A fixed-size bloom filter over packed `u64` update ids.
///
/// Double hashing (Kirsch–Mitzenmacher): two splitmix streams `h1`,
/// `h2 | 1` generate the `k` probe positions `h1 + i·h2 mod m`, so a
/// probe costs two mixes regardless of `hashes`. Membership never
/// false-negatives; [`BloomDigest::expected_fp_rate`] estimates the
/// false-positive rate from the realized fill ratio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomDigest {
    words: Vec<u64>,
    bits: u32,
    hashes: u32,
    inserted: u32,
}

impl BloomDigest {
    /// An empty digest of `bits` filter bits probed `hashes` times per
    /// key.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `hashes` is zero (configs are validated
    /// upstream; this is the last line of defense).
    pub fn new(bits: u32, hashes: u32) -> Self {
        assert!(bits > 0, "bloom digest wants at least one bit");
        assert!(hashes > 0, "bloom digest wants at least one hash");
        BloomDigest {
            words: vec![0; (bits as usize).div_ceil(64)],
            bits,
            hashes,
            inserted: 0,
        }
    }

    /// Filter width in bits (the `digest_bits` knob).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Probes per key (the `digest_hashes` knob).
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Keys inserted since the last [`BloomDigest::clear`].
    pub fn inserted(&self) -> u32 {
        self.inserted
    }

    /// Size of this digest on the wire, in bytes.
    pub fn size_bytes(&self) -> u64 {
        u64::from(self.bits).div_ceil(8)
    }

    /// Reset to empty without releasing the word storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }

    /// The two probe-stream bases for `key`.
    #[inline]
    fn probe_bases(key: u64) -> (u64, u64) {
        let h1 = split_mix64(key ^ BLOOM_SEED_A);
        let h2 = split_mix64(key ^ BLOOM_SEED_B) | 1;
        (h1, h2)
    }

    /// Insert a packed update id.
    // lint: hot-loop
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = Self::probe_bases(key);
        for i in 0..u64::from(self.hashes) {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % u64::from(self.bits)) as usize;
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether `key` may be in the set. `true` for every inserted key
    /// (no false negatives); spuriously `true` for an absent key at the
    /// false-positive rate.
    // lint: hot-loop
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = Self::probe_bases(key);
        for i in 0..u64::from(self.hashes) {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % u64::from(self.bits)) as usize;
            if self.words[bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Fraction of filter bits currently set.
    pub fn fill_ratio(&self) -> f64 {
        // Tail bits beyond `bits` in the last word are never set, so a
        // straight popcount over the words is exact.
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / f64::from(self.bits)
    }

    /// Expected false-positive rate at the current fill: a probe of an
    /// absent key hits `hashes` independent set bits with probability
    /// `fill_ratio ^ hashes`.
    pub fn expected_fp_rate(&self) -> f64 {
        self.fill_ratio().powi(self.hashes as i32)
    }
}

/// Exact order-free summary of one region's membership mask: equal
/// masks hash equal, different masks hash different (up to a 64-bit
/// splitmix collision). Peers compare per-region hashes and exchange
/// raw masks only for regions whose hashes differ — the exact
/// (zero-false-positive) alternative to [`BloomDigest`].
#[inline]
pub fn region_hash(region: u64, mask: u64) -> u64 {
    split_mix64(split_mix64(region ^ REGION_SEED) ^ mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let mut d = BloomDigest::new(256, 4);
        for key in 0..64u64 {
            d.insert(key * 977);
        }
        for key in 0..64u64 {
            assert!(d.contains(key * 977));
        }
        assert_eq!(d.inserted(), 64);
    }

    #[test]
    fn clear_resets_to_empty_without_reallocating() {
        let mut d = BloomDigest::new(128, 3);
        d.insert(7);
        assert!(d.contains(7));
        d.clear();
        assert!(!d.contains(7));
        assert_eq!(d.inserted(), 0);
        assert_eq!(d.fill_ratio(), 0.0);
    }

    #[test]
    fn digests_are_deterministic_and_order_free() {
        let mut a = BloomDigest::new(512, 5);
        let mut b = BloomDigest::new(512, 5);
        for key in 0..40u64 {
            a.insert(key);
        }
        for key in (0..40u64).rev() {
            b.insert(key);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn fill_and_fp_estimates_behave() {
        let mut d = BloomDigest::new(1024, 4);
        assert_eq!(d.expected_fp_rate(), 0.0);
        for key in 0..100u64 {
            d.insert(key);
        }
        assert!(d.fill_ratio() > 0.0 && d.fill_ratio() < 1.0);
        assert!(d.expected_fp_rate() < d.fill_ratio());
        assert_eq!(d.size_bytes(), 128);
        assert_eq!(BloomDigest::new(100, 2).size_bytes(), 13);
    }

    #[test]
    fn non_multiple_of_64_widths_stay_in_range() {
        let mut d = BloomDigest::new(67, 8);
        for key in 0..200u64 {
            d.insert(key);
            assert!(d.contains(key));
        }
        assert!(d.fill_ratio() <= 1.0);
    }

    #[test]
    fn region_hash_separates_masks_and_regions() {
        assert_eq!(region_hash(3, 0b1011), region_hash(3, 0b1011));
        assert_ne!(region_hash(3, 0b1011), region_hash(3, 0b1010));
        assert_ne!(region_hash(3, 0b1011), region_hash(4, 0b1011));
        assert_ne!(region_hash(0, 0), region_hash(1, 0));
    }
}
