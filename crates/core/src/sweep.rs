//! Parameter sweeps with multi-seed replication.
//!
//! Every figure in the paper is a sweep: "fraction of nodes controlled by
//! the attacker" on the x-axis, a delivered-service metric on the y-axis.
//! [`sweep_fraction`] evaluates a measurement closure over a grid of x
//! values, replicated across seeds, in parallel across OS threads
//! (`std::thread::scope` — no external dependency), and returns a
//! [`Series`] ready for crossover extraction and plotting.
//!
//! [`sweep_scenario`] is the [`Scenario`](crate::scenario::Scenario)-
//! generic form: instead of a closure that hides the substrate, the
//! caller supplies a `(config, attack)` factory and a metric projection,
//! and the harness drives the scenario API — the same path the
//! `lotus-bench` registry runner uses, so ad-hoc sweeps and the CLI agree
//! bit-for-bit.

use crate::scenario::{Scenario, Summarize};
use netsim::metrics::{Running, Series};

/// Replication and parallelism settings for a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Seeds to average over (one simulation per seed per x value).
    pub seeds: Vec<u64>,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: vec![1, 2, 3],
            threads: default_threads(),
        }
    }
}

impl SweepConfig {
    /// `n` consecutive seeds starting at 1, default parallelism.
    pub fn with_seeds(n: usize) -> Self {
        SweepConfig {
            seeds: (1..=n as u64).collect(),
            threads: default_threads(),
        }
    }

    /// Override the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Default worker count: the `LOTUS_SWEEP_THREADS` environment variable
/// when set to a positive integer (the CI determinism matrix pins sweeps
/// to 1 and 8 workers with it), otherwise the machine's parallelism.
/// Results are bit-identical for any worker count — each `(x, seed)` job
/// is independent and accumulation order per x is the job order.
fn default_threads() -> usize {
    if let Some(n) = std::env::var("LOTUS_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Evaluate `measure(x, seed)` over every `(x, seed)` pair and average the
/// results per x value into a labelled [`Series`].
///
/// `measure` must be pure given its arguments (it runs concurrently on
/// multiple threads). Points are returned in the input x order.
///
/// ```
/// use lotus_core::sweep::{sweep_fraction, SweepConfig};
///
/// let cfg = SweepConfig { seeds: vec![1, 2], threads: 2 };
/// let s = sweep_fraction("line", &[0.0, 0.5, 1.0], &cfg, |x, _seed| 1.0 - x);
/// assert_eq!(s.points, vec![(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)]);
/// ```
pub fn sweep_fraction<F>(
    label: impl Into<String>,
    xs: &[f64],
    cfg: &SweepConfig,
    measure: F,
) -> Series
where
    F: Fn(f64, u64) -> f64 + Sync,
{
    let stats = sweep_stats(xs, cfg, &measure);
    let mut series = Series::new(label);
    for (&x, stat) in xs.iter().zip(&stats) {
        series.push(x, stat.mean());
    }
    series
}

/// One salvaged job failure from a hardened sweep: the job panicked on
/// its first run *and* on its deterministic retry, so its measurement is
/// missing from the per-x statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Job index in x-major, seed-minor order.
    pub job: usize,
    /// The x value the job was evaluating.
    pub x: f64,
    /// The replication seed the job was running.
    pub seed: u64,
    /// The panic payload, when it was a string (best effort).
    pub message: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep job {} (x = {}, seed = {}) panicked twice: {}",
            self.job, self.x, self.seed, self.message
        )
    }
}

/// Render a panic payload as a string (panics carry `&str` or `String`
/// payloads in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one `(x, seed)` job with panic isolation: a panicking job gets
/// exactly one retry (the measurement is required to be pure, so a
/// deterministic panic fails twice and is reported; the retry guards
/// against environmental flakes, not logic bugs).
fn run_job<F>(measure: &F, x: f64, seed: u64) -> Result<f64, String>
where
    F: Fn(f64, u64) -> f64,
{
    let mut attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| measure(x, seed)));
    if attempt.is_err() {
        attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| measure(x, seed)));
    }
    attempt.map_err(|payload| panic_message(payload.as_ref()))
}

/// Like [`sweep_fraction`] but returns the full per-x statistics
/// (mean/min/max/std-dev across seeds) for error reporting.
///
/// This is the hardened form behind every sweep entry point: a panicking
/// job is retried once and, if it panics again, *salvaged out* — its
/// failure is reported to stderr and the remaining jobs' statistics are
/// returned — instead of aborting the whole sweep. Use
/// [`sweep_stats_salvaged`] to receive the failure notes programmatically.
pub fn sweep_stats<F>(xs: &[f64], cfg: &SweepConfig, measure: &F) -> Vec<Running>
where
    F: Fn(f64, u64) -> f64 + Sync,
{
    let (stats, failures) = sweep_stats_salvaged(xs, cfg, measure);
    for failure in &failures {
        eprintln!("warning: {failure} (partial results salvaged)");
    }
    stats
}

/// The salvaging sweep core: evaluate every `(x, seed)` job under panic
/// isolation and return the per-x statistics **plus** the failure notes
/// for jobs that panicked twice (their measurements are simply missing
/// from the statistics — a sweep with one poisoned point still yields
/// every other point).
///
/// Results are **bit-identical for any worker count**: workers record
/// each `(x, seed)` outcome into its job slot and the accumulators are
/// folded sequentially in job order afterwards, so no floating-point
/// summation order depends on scheduling (the CI determinism matrix runs
/// the golden suites under `LOTUS_SWEEP_THREADS=1` and `=8` to pin
/// this). On the panic-free path the fold sees exactly the values the
/// pre-hardening harness saw, so results are unchanged byte for byte.
pub fn sweep_stats_salvaged<F>(
    xs: &[f64],
    cfg: &SweepConfig,
    measure: &F,
) -> (Vec<Running>, Vec<SweepFailure>)
where
    F: Fn(f64, u64) -> f64 + Sync,
{
    let seeds = &cfg.seeds;
    let jobs: Vec<(usize, f64, u64)> = xs
        .iter()
        .enumerate()
        .flat_map(|(i, &x)| seeds.iter().map(move |&s| (i, x, s)))
        .collect();
    let threads = cfg.threads.max(1).min(jobs.len().max(1));

    let mut outcomes: Vec<Option<Result<f64, String>>> = vec![None; jobs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(_, x, seed)) = jobs.get(j) else {
                            break;
                        };
                        local.push((j, run_job(measure, x, seed)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (j, outcome) in handle.join().expect("sweep worker panicked") {
                outcomes[j] = Some(outcome);
            }
        }
    });

    let mut stats = vec![Running::new(); xs.len()];
    let mut failures = Vec::new();
    for (j, (&(i, x, seed), outcome)) in jobs.iter().zip(&outcomes).enumerate() {
        match outcome.as_ref().expect("every job ran") {
            Ok(y) => stats[i].push(*y),
            Err(message) => failures.push(SweepFailure {
                job: j,
                x,
                seed,
                message: message.clone(),
            }),
        }
    }
    (stats, failures)
}

/// Sweep any [`Scenario`] over a grid of x values, replicated across the
/// sweep seeds: for each `(x, seed)` pair, `make(x, seed)` produces the
/// `(config, attack)` pair, the scenario is built and stepped to
/// completion, and `metric` projects its typed report onto the y-axis.
///
/// This is the scenario-generic successor of [`sweep_fraction`]: the
/// measurement is the scenario API itself rather than an opaque closure,
/// so every substrate sweeps through the same machinery.
///
/// ```
/// use lotus_core::attack::TokenAttack;
/// use lotus_core::sweep::{sweep_scenario, SweepConfig};
/// use lotus_core::token::{TokenScenarioConfig, TokenSystem, TokenSystemConfig};
/// use netsim::graph::Graph;
///
/// let sweep = SweepConfig { seeds: vec![1, 2], threads: 2 };
/// let s = sweep_scenario::<TokenSystem, _, _>(
///     "mass satiation",
///     &[0.0, 0.5],
///     &sweep,
///     |fraction, _seed| {
///         let cfg = TokenSystemConfig::builder(Graph::complete(20))
///             .tokens(6)
///             .build()
///             .expect("valid config");
///         (TokenScenarioConfig::new(cfg, 40), TokenAttack::random_fraction(fraction))
///     },
///     |report| report.untouched_mean_coverage(),
/// );
/// assert_eq!(s.points.len(), 2);
/// assert!(s.points[0].1 >= s.points[1].1, "satiation hurts the untouched");
/// ```
pub fn sweep_scenario<S, M, F>(
    label: impl Into<String>,
    xs: &[f64],
    cfg: &SweepConfig,
    make: M,
    metric: F,
) -> Series
where
    S: Scenario,
    M: Fn(f64, u64) -> (S::Config, S::Attack) + Sync,
    F: Fn(&S::Report) -> f64 + Sync,
{
    sweep_fraction(label, xs, cfg, move |x, seed| {
        let (config, attack) = make(x, seed);
        metric(&crate::scenario::run::<S>(config, attack, seed))
    })
}

/// Like [`sweep_scenario`] but projecting through the common
/// [`ScenarioReport`](crate::scenario::ScenarioReport) vocabulary: `metric`
/// names any canonical or custom metric of the substrate's summary.
///
/// # Panics
///
/// Panics if the scenario's summary does not expose `metric` (the metric
/// names a substrate offers are fixed, so this is a caller bug, not a
/// data-dependent condition).
pub fn sweep_scenario_metric<S, M>(
    label: impl Into<String>,
    xs: &[f64],
    cfg: &SweepConfig,
    make: M,
    metric: &str,
) -> Series
where
    S: Scenario,
    M: Fn(f64, u64) -> (S::Config, S::Attack) + Sync,
{
    sweep_scenario::<S, M, _>(label, xs, cfg, make, move |report| {
        report
            .summarize()
            .metric(metric)
            .unwrap_or_else(|| panic!("scenario {} has no metric {metric:?}", S::NAME))
    })
}

/// An evenly spaced grid of `points` values covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `points < 2` or `lo > hi`.
pub fn grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a grid needs at least two points");
    assert!(lo <= hi, "grid bounds out of order");
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Refine the crossover of a (monotone-decreasing in expectation) metric
/// with `threshold` by bisection, averaging `measure` over the sweep seeds
/// at each probe.
///
/// Returns the midpoint of the final bracket after `iters` bisections, or
/// `None` if the metric does not bracket the threshold on `[lo, hi]`.
pub fn refine_crossover<F>(
    lo: f64,
    hi: f64,
    threshold: f64,
    iters: u32,
    cfg: &SweepConfig,
    measure: F,
) -> Option<f64>
where
    F: Fn(f64, u64) -> f64 + Sync,
{
    let eval = |x: f64| -> f64 {
        let stats = sweep_stats(&[x], cfg, &measure);
        stats[0].mean()
    };
    let (mut lo, mut hi) = (lo, hi);
    let (y_lo, y_hi) = (eval(lo), eval(hi));
    if y_lo < threshold || y_hi >= threshold {
        return None;
    }
    for _ in 0..iters {
        let mid = (lo + hi) / 2.0;
        if eval(mid) >= threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo + hi) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_inclusive_and_even() {
        let g = grid(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn grid_needs_two_points() {
        grid(0.0, 1.0, 1);
    }

    #[test]
    fn sweep_averages_over_seeds() {
        let cfg = SweepConfig {
            seeds: vec![0, 10],
            threads: 2,
        };
        // measure = x + seed/10 → mean = x + 0.5
        let s = sweep_fraction("avg", &[0.0, 1.0], &cfg, |x, seed| x + seed as f64 / 20.0);
        assert_eq!(s.points.len(), 2);
        assert!((s.points[0].1 - 0.25).abs() < 1e-12);
        assert!((s.points[1].1 - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sweep_preserves_x_order() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 4,
        };
        let xs = [0.9, 0.1, 0.5];
        let s = sweep_fraction("order", &xs, &cfg, |x, _| x);
        let got: Vec<f64> = s.points.iter().map(|p| p.0).collect();
        assert_eq!(got, xs.to_vec());
    }

    #[test]
    fn sweep_parallel_is_bit_identical_to_sequential() {
        let xs = grid(0.0, 1.0, 7);
        let f = |x: f64, seed: u64| (x * 10.0 + seed as f64).sin();
        let seq = sweep_fraction(
            "s",
            &xs,
            &SweepConfig {
                seeds: vec![1, 2, 3],
                threads: 1,
            },
            f,
        );
        for threads in [2, 8, 32] {
            let par = sweep_fraction(
                "p",
                &xs,
                &SweepConfig {
                    seeds: vec![1, 2, 3],
                    threads,
                },
                f,
            );
            for (a, b) in seq.points.iter().zip(&par.points) {
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "worker count must not change results ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn sweep_stats_exposes_spread() {
        let cfg = SweepConfig {
            seeds: vec![0, 2],
            threads: 1,
        };
        let stats = sweep_stats(&[1.0], &cfg, &|_, seed| seed as f64);
        assert_eq!(stats[0].len(), 2);
        assert_eq!(stats[0].min(), 0.0);
        assert_eq!(stats[0].max(), 2.0);
        assert_eq!(stats[0].mean(), 1.0);
    }

    #[test]
    fn panicking_job_is_salvaged_not_fatal() {
        let cfg = SweepConfig {
            seeds: vec![1, 2, 3],
            threads: 2,
        };
        // The job at (x = 0.5, seed = 2) always panics; everything else
        // must come through untouched.
        let (stats, failures) = sweep_stats_salvaged(&[0.0, 0.5, 1.0], &cfg, &|x, seed| {
            assert!(!(x == 0.5 && seed == 2), "poisoned job");
            x + seed as f64
        });
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].job, 4); // x-major, seed-minor: 3 + 1
        assert_eq!(failures[0].x, 0.5);
        assert_eq!(failures[0].seed, 2);
        assert!(failures[0].message.contains("poisoned job"));
        assert!(format!("{}", failures[0]).contains("seed = 2"));
        // Clean x values keep all three seeds; the poisoned x keeps two.
        assert_eq!(stats[0].len(), 3);
        assert_eq!(stats[1].len(), 2);
        assert_eq!(stats[2].len(), 3);
        assert_eq!(stats[1].mean(), 0.5 + 2.0); // seeds 1 and 3 average to 2
    }

    #[test]
    fn flaky_job_succeeds_on_the_single_retry() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cfg = SweepConfig {
            seeds: vec![7],
            threads: 1,
        };
        let calls = AtomicUsize::new(0);
        let (stats, failures) = sweep_stats_salvaged(&[1.0], &cfg, &|x, _| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient flake");
            }
            x * 2.0
        });
        assert!(failures.is_empty(), "retry should have absorbed the flake");
        assert_eq!(stats[0].len(), 1);
        assert_eq!(stats[0].mean(), 2.0);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn refine_crossover_finds_linear_root() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
        };
        // y = 1 - x crosses 0.93 at x = 0.07.
        let x = refine_crossover(0.0, 1.0, 0.93, 20, &cfg, |x, _| 1.0 - x).unwrap();
        assert!((x - 0.07).abs() < 1e-4, "got {x}");
    }

    #[test]
    fn refine_crossover_unbracketed_is_none() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
        };
        assert!(refine_crossover(0.0, 1.0, 0.93, 5, &cfg, |_, _| 1.0).is_none());
        assert!(refine_crossover(0.0, 1.0, 0.93, 5, &cfg, |_, _| 0.0).is_none());
    }

    #[test]
    fn with_seeds_and_threads_builders() {
        let cfg = SweepConfig::with_seeds(5).threads(0);
        assert_eq!(cfg.seeds, vec![1, 2, 3, 4, 5]);
        assert_eq!(cfg.threads, 1, "threads clamps to >= 1");
        assert!(SweepConfig::default().threads >= 1);
    }
}
