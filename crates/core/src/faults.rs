//! Fault injection: lossy links, crashes and partitions, as a
//! first-class, cross-substrate dimension.
//!
//! The lotus-eater attack is defection by *silence* — and silence is only
//! damning when the network is otherwise reliable. On a perfect network a
//! cut-off defense may attribute every missed exchange to malice; under
//! realistic message loss, crashes and partitions the same defense must
//! trade false positives (punishing unlucky honest nodes) against letting
//! attackers hide inside the background fault rate. This module gives
//! every substrate the same deterministic machinery to pose that
//! question:
//!
//! * [`FaultPlan`] — the `Copy` fault specification, parseable from the
//!   `lotus-bench --faults` grammar (`loss:0.05`, `crash:0.01:0.2`,
//!   `partition:200:80:0.3`, components combinable with `/`);
//! * [`FaultState`] — the per-run stepper: message fates (drop,
//!   duplicate, delay-by-one-round) drawn per directed delivery, node
//!   crashes that *lose state* (the simulator scans
//!   [`FaultState::just_crashed`] and re-enters those nodes cold — empty
//!   windows, empty piece maps, reset histories — distinct from churn,
//!   where absent nodes keep their state), and an epoch partition that
//!   splits the population into two non-communicating cells;
//! * [`Fate`] — what happened to one directed message.
//!
//! # Randomness discipline
//!
//! [`FaultState::new`] forks three labelled child streams from the
//! simulator's root rng — `"faults"` for per-message fates, `"crash"`
//! for crash/recovery draws, `"partition"` for the cell draw — and
//! forking never advances the parent, so *constructing* a fault layer
//! cannot perturb any existing stream.
//!
//! # Hot-loop allocation invariants
//!
//! [`FaultState::begin_round`] and [`FaultState::fate`] never allocate:
//! they flip bits in preallocated sets. With an inactive plan
//! ([`FaultPlan::none`], but also any explicitly configured zero-rate
//! plan) they return immediately *without drawing randomness*, so
//! configuring faults at rate zero can never perturb any stream, and
//! fault-free runs are bit-identical to pre-fault behaviour per seed
//! (the golden tests in `crates/bench/tests/faults_golden.rs` are the
//! guardrail).
//!
//! # Delay semantics
//!
//! Delay-by-one-round is realised allocation-free as a one-message link
//! buffer per *destination*: a delayed message is withheld this round
//! (the sender sees [`Fate::Drop`]) and a delivery credit is recorded;
//! the next message bound for that destination consumes the credit and
//! is delivered without a draw — the link lags by one round instead of
//! queueing unbounded state.

use crate::bitset::BitSet;
use netsim::rng::DetRng;
use netsim::Round;

/// What happened to one directed message under [`FaultState::fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The message arrives normally.
    Deliver,
    /// The message is lost (or withheld one round by a delay fault).
    Drop,
    /// The message arrives *and* a spurious duplicate arrives with it.
    /// Receivers in every substrate are idempotent, so the duplicate's
    /// only effect is wasted bandwidth — simulators meter it as junk.
    Duplicate,
}

/// Deterministic fault specification: message-level faults, crashes and
/// a partition epoch. `Copy`, so substrate configs stay cheap to clone
/// and sweep.
///
/// ```
/// use lotus_core::faults::FaultPlan;
///
/// let plan = FaultPlan::parse("loss:0.05/crash:0.01:0.2").unwrap();
/// assert!(plan.is_active());
/// assert_eq!(plan.loss, 0.05);
/// assert!(!FaultPlan::none().is_active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-message probability the message is silently dropped.
    pub loss: f64,
    /// Per-message probability a spurious duplicate is delivered
    /// alongside the message.
    pub duplicate: f64,
    /// Per-message probability the message is withheld for one round
    /// (see the module docs for the link-buffer realisation).
    pub delay: f64,
    /// Per-round probability an up node crashes, losing its state.
    pub crash: f64,
    /// Per-round probability a crashed node recovers (re-entering cold).
    pub recover: f64,
    /// First round of the partition epoch.
    pub partition_start: Round,
    /// Rounds the partition lasts (`0` = no partition configured).
    pub partition_len: Round,
    /// Expected fraction of nodes drawn into the minority cell.
    pub partition_frac: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The perfect network: no faults of any kind (the default).
    pub fn none() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            crash: 0.0,
            recover: 0.0,
            partition_start: 0,
            partition_len: 0,
            partition_frac: 0.0,
        }
    }

    /// Whether any per-message fate can differ from [`Fate::Deliver`].
    pub fn has_message_faults(&self) -> bool {
        self.loss > 0.0 || self.duplicate > 0.0 || self.delay > 0.0
    }

    /// Whether nodes can crash at all.
    pub fn has_crashes(&self) -> bool {
        self.crash > 0.0
    }

    /// Whether a partition epoch is configured and can populate a cell.
    pub fn has_partition(&self) -> bool {
        self.partition_len > 0 && self.partition_frac > 0.0
    }

    /// Whether any fault can happen at all. An inactive plan is a
    /// guaranteed no-op no matter how it was spelled:
    /// [`FaultState::begin_round`] and [`FaultState::fate`] draw nothing
    /// under it, so an explicitly configured zero-rate plan cannot
    /// perturb any randomness stream.
    pub fn is_active(&self) -> bool {
        self.has_message_faults() || self.has_crashes() || self.has_partition()
    }

    /// The ambient silence rate an observer sees on an honest link
    /// outside any partition epoch: the probability a given message
    /// simply fails to arrive this round (loss, or a delay hold). This
    /// is the rate a fault-masquerading defector matches to stay
    /// statistically camouflaged while the network is whole; during a
    /// partition epoch the camouflage rate is
    /// [`FaultPlan::ambient_silence_rate_during`] instead.
    pub fn ambient_silence_rate(&self) -> f64 {
        self.loss + (1.0 - self.loss) * self.delay
    }

    /// Expected probability that a uniformly random pair straddles the
    /// partition cells while the epoch is in force. Each node lands in
    /// the minority cell independently with probability
    /// `partition_frac`, so a pair is cross-cell (and its exchange is
    /// silently blocked) with probability `2f(1 - f)`.
    pub fn partition_cross_cell_rate(&self) -> f64 {
        2.0 * self.partition_frac * (1.0 - self.partition_frac)
    }

    /// The ambient silence rate an observer sees on an honest link,
    /// folding in expected partition blocking when a partition epoch is
    /// currently in force. Loss, delay holds, and cross-cell blocking
    /// compose as independent survival terms:
    /// `1 - (1-loss)(1-delay)(1-block)` where `block` is
    /// [`FaultPlan::partition_cross_cell_rate`] during the epoch and 0
    /// outside it. This is the rate a fault-masquerading defector
    /// matches each round; matching only loss and delay would
    /// understate ambient silence during partition epochs and make the
    /// masquerade statistically visible there.
    pub fn ambient_silence_rate_during(&self, partitioned: bool) -> f64 {
        let base = self.ambient_silence_rate();
        if partitioned {
            base + (1.0 - base) * self.partition_cross_cell_rate()
        } else {
            base
        }
    }

    /// Replace the loss rate (the `fault_loss` sweep axis), clamped to
    /// `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Parse the `lotus-bench --faults` grammar: `none`, or one or more
    /// `/`-separated components. Each kind may appear at most once;
    /// repeating a kind (`loss:0.1/loss:0.2`) is rejected rather than
    /// silently last-wins, so a typo cannot shadow an earlier rate:
    ///
    /// ```text
    /// loss:<p>                      drop each message with prob. <p>
    /// dup:<p>                       duplicate each message with prob. <p>
    /// delay:<p>                     withhold each message one round
    /// crash:<rate>:<recover>        per-round crash / recovery probs.
    /// partition:<start>:<len>:<frac>  split off a <frac> cell for <len>
    ///                               rounds starting at <start>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed component and field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        if spec == "none" {
            return Ok(FaultPlan::none());
        }
        let mut plan = FaultPlan::none();
        // One bit per known kind, in the grammar order loss / dup /
        // delay / crash / partition; unknown kinds error below anyway.
        let mut seen_kinds = 0u8;
        for part in spec.split('/') {
            let (head, rest) = part.split_once(':').ok_or_else(|| {
                format!("fault plan {spec:?}: component {part:?} wants <kind>:<args>")
            })?;
            let kind_bit = match head {
                "loss" => Some(0u8),
                "dup" => Some(1),
                "delay" => Some(2),
                "crash" => Some(3),
                "partition" => Some(4),
                _ => None,
            };
            if let Some(bit) = kind_bit {
                if seen_kinds & (1 << bit) != 0 {
                    return Err(format!(
                        "fault plan {spec:?}: duplicate {head} component (each fault kind may \
                         appear at most once)"
                    ));
                }
                seen_kinds |= 1 << bit;
            }
            let fields: Vec<&str> = rest.split(':').collect();
            let prob = |what: &str, v: &str| -> Result<f64, String> {
                let p = v
                    .parse::<f64>()
                    .map_err(|_| format!("fault plan {spec:?}: {head} {what} is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "fault plan {spec:?}: {head} {what} {p} outside [0, 1]"
                    ));
                }
                Ok(p)
            };
            let round = |what: &str, v: &str| -> Result<Round, String> {
                v.parse::<Round>().map_err(|_| {
                    format!("fault plan {spec:?}: {head} {what} is not a non-negative integer")
                })
            };
            match (head, fields.as_slice()) {
                ("loss", [p]) => plan.loss = prob("probability", p)?,
                ("dup", [p]) => plan.duplicate = prob("probability", p)?,
                ("delay", [p]) => plan.delay = prob("probability", p)?,
                ("crash", [rate, recover]) => {
                    plan.crash = prob("rate", rate)?;
                    plan.recover = prob("recovery probability", recover)?;
                }
                ("partition", [start, len, frac]) => {
                    plan.partition_start = round("start", start)?;
                    plan.partition_len = round("length", len)?;
                    plan.partition_frac = prob("fraction", frac)?;
                    if plan.partition_len == 0 {
                        return Err(format!(
                            "fault plan {spec:?}: partition length must be positive"
                        ));
                    }
                }
                ("loss" | "dup" | "delay", _) => {
                    return Err(format!(
                        "fault plan {spec:?}: {head} wants a single probability"
                    ));
                }
                ("crash", _) => {
                    return Err(format!("fault plan {spec:?}: crash wants <rate>:<recover>"));
                }
                ("partition", _) => {
                    return Err(format!(
                        "fault plan {spec:?}: partition wants <start>:<len>:<frac>"
                    ));
                }
                (other, _) => {
                    return Err(format!(
                        "fault plan {spec:?}: unknown fault {other:?} (loss:<p> | dup:<p> | \
                         delay:<p> | crash:<rate>:<recover> | partition:<start>:<len>:<frac> | \
                         none)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Per-run fault state under a [`FaultPlan`], deterministic in the rng
/// the simulator forks for it.
///
/// Simulators call [`FaultState::begin_round`] once per round (next to
/// `Population::begin_round`), scan [`FaultState::just_crashed`] to
/// cold-reset crashed nodes, gate interactions on
/// [`FaultState::is_down`] / [`FaultState::link_ok`], and draw a
/// [`Fate`] per directed delivery at the exchange seam.
///
/// ```
/// use lotus_core::faults::{Fate, FaultPlan, FaultState};
/// use netsim::rng::DetRng;
///
/// let rng = DetRng::seed_from(7);
/// let mut faults = FaultState::new(10, FaultPlan::parse("loss:0.5").unwrap(), &rng);
/// faults.begin_round(0);
/// let fates: Vec<Fate> = (0..10).map(|i| faults.fate(0, i)).collect();
/// assert!(fates.iter().any(|&f| f == Fate::Drop), "half the messages drop");
/// ```
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Per-message fate draws (`"faults"` fork).
    msg_rng: DetRng,
    /// Crash/recovery draws (`"crash"` fork).
    crash_rng: DetRng,
    /// Partition cell draw (`"partition"` fork).
    partition_rng: DetRng,
    /// Nodes currently crashed.
    down: BitSet,
    /// Nodes that crashed in the round just begun — the simulator scans
    /// this after [`FaultState::begin_round`] and wipes their state.
    crashed_now: BitSet,
    /// Nodes protected from crashing (origin seeds, attacker peers):
    /// their crash draws are skipped entirely, mirroring
    /// `Population::protect`.
    exempt: BitSet,
    /// Per-destination delay credits (see the module docs).
    delay_credit: BitSet,
    /// The minority partition cell, drawn at epoch start.
    cell: BitSet,
    /// Whether the partition is currently in force.
    partitioned: bool,
    /// Messages dropped by loss faults.
    pub dropped: u64,
    /// Spurious duplicates delivered.
    pub duplicated: u64,
    /// Messages withheld one round by delay faults.
    pub delayed: u64,
    /// Crash events (recoveries are not counted).
    pub crashes: u64,
    /// Interactions blocked by the partition.
    pub partition_blocked: u64,
}

impl FaultState {
    /// Fault state for `n` nodes under `plan`, deriving its three
    /// labelled streams from `parent` (conventionally the simulator's
    /// root rng). Forking never advances `parent`, so adding a fault
    /// layer is stream-invisible to everything else.
    pub fn new(n: usize, plan: FaultPlan, parent: &DetRng) -> Self {
        FaultState {
            plan,
            msg_rng: parent.fork("faults"),
            crash_rng: parent.fork("crash"),
            partition_rng: parent.fork("partition"),
            down: BitSet::new(n),
            crashed_now: BitSet::new(n),
            exempt: BitSet::new(n),
            delay_credit: BitSet::new(n),
            cell: BitSet::new(n),
            partitioned: false,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            crashes: 0,
            partition_blocked: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault can happen at all (see [`FaultPlan::is_active`]).
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Exclude `node` from crashing (origin seeds, attacker peers —
    /// roles a substrate cannot lose). Its crash draws are skipped, like
    /// a protected node's departure draws under churn. Also brings the
    /// node back up if it is currently crashed.
    pub fn exempt(&mut self, node: usize) {
        self.exempt.insert(node);
        self.down.remove(node);
        self.crashed_now.remove(node);
    }

    /// Whether `node` is currently crashed.
    #[inline]
    pub fn is_down(&self, node: usize) -> bool {
        self.down.contains(node)
    }

    /// Nodes that crashed in the round just begun: the simulator scans
    /// this after [`FaultState::begin_round`] and re-enters them cold.
    pub fn just_crashed(&self) -> &BitSet {
        &self.crashed_now
    }

    /// Nodes currently crashed, as a mask — the word-parallel seam the
    /// sharded engine folds into its per-round activity mask
    /// (present ∧ not-crashed ∧ not-evicted).
    pub fn down_mask(&self) -> &BitSet {
        &self.down
    }

    /// Nodes currently crashed.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Whether the partition is currently in force.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// The ambient silence rate an observer sees on an honest link
    /// *this round*: [`FaultPlan::ambient_silence_rate_during`]
    /// evaluated at the current partition state. A fault-masquerading
    /// defector draws against this round-aware rate so its silence
    /// statistics track real ambient silence through partition epochs
    /// instead of understating them.
    #[inline]
    pub fn ambient_silence_rate(&self) -> f64 {
        self.plan.ambient_silence_rate_during(self.partitioned)
    }

    /// The minority partition cell (empty unless a partition epoch has
    /// started). Together with its complement it covers every node
    /// exactly once — the property `crates/core/tests/fault_props.rs`
    /// pins.
    pub fn cell(&self) -> &BitSet {
        &self.cell
    }

    /// The message-fate rng stream, for test instrumentation: the
    /// no-draw guarantees in the module docs are asserted by comparing
    /// snapshots before and after stepping.
    pub fn msg_rng_snapshot(&self) -> &DetRng {
        &self.msg_rng
    }

    /// The crash rng stream, for test instrumentation.
    pub fn crash_rng_snapshot(&self) -> &DetRng {
        &self.crash_rng
    }

    /// The partition rng stream, for test instrumentation.
    pub fn partition_rng_snapshot(&self) -> &DetRng {
        &self.partition_rng
    }

    /// Whether `a` and `b` can communicate this round: `false` only
    /// while a partition is in force and the two sit in different
    /// cells. Randomness-free; counts blocked interactions.
    #[inline]
    pub fn link_ok(&mut self, a: usize, b: usize) -> bool {
        if self.link_up(a, b) {
            true
        } else {
            self.partition_blocked += 1;
            false
        }
    }

    /// Read-only form of [`FaultState::link_ok`]: same answer, no
    /// blocked-interaction bookkeeping. Link state is static within a
    /// round (the partition epoch flips at [`FaultState::begin_round`]),
    /// so concurrent plan-phase workers may probe this freely; the
    /// apply phase calls [`FaultState::note_partition_blocked`] at the
    /// exact points the legacy per-edge walk would have counted.
    #[inline]
    pub fn link_up(&self, a: usize, b: usize) -> bool {
        !(self.partitioned && self.cell.contains(a) != self.cell.contains(b))
    }

    /// Count one interaction blocked by the partition — the bookkeeping
    /// half of [`FaultState::link_ok`], for callers that already know
    /// the link is down from a plan-time [`FaultState::link_up`] probe.
    #[inline]
    pub fn note_partition_blocked(&mut self) {
        self.partition_blocked += 1;
    }

    /// Draw the fate of one directed message `from → to`. Draws nothing
    /// (and always delivers) when the plan has no message faults; a
    /// pending delay credit for `to` is consumed without a draw. Fate
    /// draws are ordered loss → delay → duplicate, so each component's
    /// stream position is well defined.
    // lint: hot-loop
    #[inline]
    pub fn fate(&mut self, _from: usize, to: usize) -> Fate {
        if !self.plan.has_message_faults() {
            return Fate::Deliver;
        }
        if self.delay_credit.contains(to) {
            // The link's held message arrives in this slot (module docs).
            self.delay_credit.remove(to);
            return Fate::Deliver;
        }
        if self.msg_rng.chance(self.plan.loss) {
            self.dropped += 1;
            return Fate::Drop;
        }
        if self.msg_rng.chance(self.plan.delay) {
            self.delay_credit.insert(to);
            self.delayed += 1;
            return Fate::Drop;
        }
        if self.msg_rng.chance(self.plan.duplicate) {
            self.duplicated += 1;
            return Fate::Duplicate;
        }
        Fate::Deliver
    }

    /// Advance fault state into round `t`: the partition epoch opens
    /// (drawing its cell) or heals, crashed nodes draw recovery, and up
    /// nodes draw crashes. Nodes that crash land in
    /// [`FaultState::just_crashed`] for the simulator to cold-reset.
    ///
    /// A no-op (no rng draws, no allocation) when the plan is inactive —
    /// including explicitly configured zero-rate plans.
    // lint: hot-loop
    pub fn begin_round(&mut self, t: Round) {
        if !self.plan.is_active() {
            return;
        }
        self.crashed_now.clear();
        if self.plan.has_partition() {
            if t == self.plan.partition_start {
                // Draw the minority cell once, at epoch start.
                self.cell.clear();
                let n = self.down.universe();
                for i in 0..n {
                    if self.partition_rng.chance(self.plan.partition_frac) {
                        self.cell.insert(i);
                    }
                }
                self.partitioned = true;
            } else if self.partitioned && t >= self.plan.partition_start + self.plan.partition_len {
                self.partitioned = false;
            }
        }
        if self.plan.has_crashes() {
            let n = self.down.universe();
            for i in 0..n {
                if self.down.contains(i) {
                    if self.crash_rng.chance(self.plan.recover) {
                        self.down.remove(i);
                    }
                } else if !self.exempt.contains(i) && self.crash_rng.chance(self.plan.crash) {
                    self.down.insert(i);
                    self.crashed_now.insert(i);
                    self.crashes += 1;
                }
            }
        }
    }

    /// Snapshot the fault counters for a report.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.dropped,
            duplicated: self.duplicated,
            delayed: self.delayed,
            crashes: self.crashes,
            partition_blocked: self.partition_blocked,
        }
    }
}

/// Snapshot of a run's fault counters (see the [`FaultState`] fields of
/// the same names). Reports carry `Option<FaultCounters>`, present only
/// when the plan was active, so fault-free reports stay byte-identical
/// to pre-fault ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Messages dropped by loss faults.
    pub dropped: u64,
    /// Spurious duplicates delivered.
    pub duplicated: u64,
    /// Messages withheld one round by delay faults.
    pub delayed: u64,
    /// Crash events.
    pub crashes: u64,
    /// Interactions blocked by the partition.
    pub partition_blocked: u64,
}

/// Outcome of a cut-style defense against ground truth, for the
/// robustness metrics of X19: who did the defense cut, and of whom?
///
/// `false_cut_rate` is the honest collateral; `attacker_cut_rate`
/// doubles as recall. The lotus-eater framing: a defense that cuts on
/// silence is exactly as good as silence is evidence — under ambient
/// faults a masquerading defector pushes `attacker_cut_rate` down toward
/// `false_cut_rate`, and when the two meet the defense cannot tell
/// malice from weather.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CutStats {
    /// Honest nodes the defense cut.
    pub cut_honest: u32,
    /// Attacker nodes the defense cut.
    pub cut_attacker: u32,
    /// Honest nodes in the run.
    pub honest: u32,
    /// Attacker nodes in the run.
    pub attackers: u32,
}

impl CutStats {
    /// Fraction of honest nodes wrongly cut.
    pub fn false_cut_rate(&self) -> f64 {
        if self.honest == 0 {
            0.0
        } else {
            f64::from(self.cut_honest) / f64::from(self.honest)
        }
    }

    /// Fraction of attacker nodes cut (detection recall).
    pub fn attacker_cut_rate(&self) -> f64 {
        if self.attackers == 0 {
            0.0
        } else {
            f64::from(self.cut_attacker) / f64::from(self.attackers)
        }
    }

    /// Fraction of all cuts that hit attackers (detection precision);
    /// vacuously 1.0 when nothing was cut.
    pub fn precision(&self) -> f64 {
        let total = self.cut_honest + self.cut_attacker;
        if total == 0 {
            1.0
        } else {
            f64::from(self.cut_attacker) / f64::from(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots(f: &FaultState) -> (DetRng, DetRng, DetRng) {
        (
            f.msg_rng_snapshot().clone(),
            f.crash_rng_snapshot().clone(),
            f.partition_rng_snapshot().clone(),
        )
    }

    #[test]
    fn parse_grammar() {
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        let p = FaultPlan::parse("loss:0.05").unwrap();
        assert_eq!(p.loss, 0.05);
        assert!(p.is_active() && p.has_message_faults());
        let p = FaultPlan::parse("dup:0.1/delay:0.2").unwrap();
        assert_eq!((p.duplicate, p.delay), (0.1, 0.2));
        let p = FaultPlan::parse("crash:0.01:0.2").unwrap();
        assert_eq!((p.crash, p.recover), (0.01, 0.2));
        assert!(p.has_crashes() && !p.has_message_faults());
        let p = FaultPlan::parse("partition:200:80:0.3").unwrap();
        assert_eq!(
            (p.partition_start, p.partition_len, p.partition_frac),
            (200, 80, 0.3)
        );
        assert!(p.has_partition());
        let p = FaultPlan::parse("loss:0.05/crash:0.01:0.2/partition:10:5:0.5").unwrap();
        assert!(p.has_message_faults() && p.has_crashes() && p.has_partition());
        for bad in [
            "",
            "x",
            "loss",
            "loss:x",
            "loss:1.5",
            "loss:0.1:0.2",
            "crash:0.1",
            "crash:0.1:0.2:0.3",
            "partition:10:5",
            "partition:10:0:0.5",
            "partition:x:5:0.5",
            "flood:0.5",
            "loss:0.1//dup:0.1",
            "loss:0.1/loss:0.2",
            "dup:0/dup:0",
            "delay:0.1/loss:0.2/delay:0.1",
            "crash:0.1:0.2/crash:0.1:0.2",
            "partition:1:2:0.5/partition:3:4:0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn zero_rate_plans_are_inactive() {
        for spec in ["none", "loss:0", "crash:0:0.5", "partition:10:5:0", "dup:0"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(!plan.is_active(), "{spec:?} is zero-rate");
        }
    }

    #[test]
    fn inactive_plan_draws_nothing() {
        // The regression the no-draw guard covers: faults configured at
        // explicit zero rates must not touch any of the three forks, so
        // adding a fault layer at rate zero cannot perturb any stream.
        for spec in [
            "none",
            "loss:0/dup:0/delay:0",
            "crash:0:0.9",
            "partition:5:5:0",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            let mut f = FaultState::new(16, plan, &DetRng::seed_from(3));
            let before = snapshots(&f);
            for t in 0..200 {
                f.begin_round(t);
                for i in 0..16 {
                    assert!(f.link_ok(0, i));
                    assert_eq!(f.fate(0, i), Fate::Deliver);
                }
            }
            assert_eq!(snapshots(&f), before, "{spec:?} must not draw");
            assert_eq!(f.down_count(), 0);
            assert_eq!(
                (
                    f.dropped,
                    f.duplicated,
                    f.delayed,
                    f.crashes,
                    f.partition_blocked
                ),
                (0, 0, 0, 0, 0)
            );
        }
    }

    #[test]
    fn construction_never_advances_the_parent() {
        let mut a = DetRng::seed_from(11);
        let mut b = DetRng::seed_from(11);
        let _ = FaultState::new(32, FaultPlan::parse("loss:0.5").unwrap(), &a);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn loss_drops_at_roughly_the_configured_rate() {
        let plan = FaultPlan::parse("loss:0.3").unwrap();
        let mut f = FaultState::new(4, plan, &DetRng::seed_from(5));
        let mut drops = 0u32;
        for _ in 0..10_000 {
            if f.fate(0, 1) == Fate::Drop {
                drops += 1;
            }
        }
        let rate = f64::from(drops) / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate was {rate}");
        assert_eq!(f.dropped, u64::from(drops));
    }

    #[test]
    fn duplicates_are_drawn_and_counted() {
        let plan = FaultPlan::parse("dup:0.5").unwrap();
        let mut f = FaultState::new(4, plan, &DetRng::seed_from(6));
        let dups = (0..1000)
            .filter(|_| f.fate(0, 1) == Fate::Duplicate)
            .count();
        assert!((300..700).contains(&dups), "dup count was {dups}");
        assert_eq!(f.duplicated, dups as u64);
    }

    #[test]
    fn delay_withholds_then_delivers_without_a_draw() {
        let plan = FaultPlan::parse("delay:1").unwrap();
        let mut f = FaultState::new(4, plan, &DetRng::seed_from(7));
        // delay:1 uses chance(1.0), which draws nothing — every odd
        // message is withheld, every even one consumes the credit.
        assert_eq!(f.fate(0, 2), Fate::Drop);
        let before = f.msg_rng_snapshot().clone();
        assert_eq!(f.fate(1, 2), Fate::Deliver, "credit consumed");
        assert_eq!(*f.msg_rng_snapshot(), before, "credit draws nothing");
        assert_eq!(f.fate(0, 2), Fate::Drop, "fresh message held again");
        assert_eq!(f.delayed, 2);
        // Credits are per destination: node 3's link is unaffected.
        assert_eq!(f.fate(0, 3), Fate::Drop);
        assert_eq!(f.fate(0, 3), Fate::Deliver);
    }

    #[test]
    fn crashes_and_recoveries_cycle() {
        let plan = FaultPlan::parse("crash:0.2:0.5").unwrap();
        let mut f = FaultState::new(20, plan, &DetRng::seed_from(8));
        let mut ever_down = false;
        let mut ever_recovered = false;
        let mut was_down = [false; 20];
        for t in 0..300 {
            f.begin_round(t);
            for (i, wd) in was_down.iter_mut().enumerate() {
                if f.is_down(i) {
                    if !*wd {
                        assert!(
                            f.just_crashed().contains(i),
                            "fresh crash of {i} must be flagged at round {t}"
                        );
                    }
                    ever_down = true;
                    *wd = true;
                } else {
                    if *wd {
                        ever_recovered = true;
                    }
                    *wd = false;
                }
            }
        }
        assert!(ever_down && ever_recovered);
        assert!(f.crashes > 0);
    }

    #[test]
    fn exempt_nodes_never_crash() {
        let plan = FaultPlan::parse("crash:0.9:0").unwrap();
        let mut f = FaultState::new(10, plan, &DetRng::seed_from(9));
        f.exempt(3);
        for t in 0..100 {
            f.begin_round(t);
            assert!(!f.is_down(3));
        }
        assert!(f.down_count() > 0, "unexempt nodes do crash");
    }

    #[test]
    fn partition_blocks_cross_cell_links_for_its_epoch() {
        let plan = FaultPlan::parse("partition:5:10:0.5").unwrap();
        let mut f = FaultState::new(40, plan, &DetRng::seed_from(10));
        for t in 0..5 {
            f.begin_round(t);
            assert!(!f.is_partitioned(), "partition not yet open at {t}");
            assert!(f.link_ok(0, 1));
        }
        f.begin_round(5);
        assert!(f.is_partitioned());
        let cell_size = f.cell().len();
        assert!(
            (8..32).contains(&cell_size),
            "~half of 40 nodes in the cell, got {cell_size}"
        );
        let inside = f.cell().iter().next().unwrap();
        let outside = (0..40).find(|&i| !f.cell().contains(i)).unwrap();
        let mut blocked = 0;
        for t in 5..15 {
            if t > 5 {
                f.begin_round(t);
            }
            assert!(f.is_partitioned(), "partition holds at {t}");
            assert!(!f.link_ok(inside, outside));
            assert!(!f.link_ok(outside, inside), "blocking is symmetric");
            assert!(f.link_ok(inside, inside) && f.link_ok(outside, outside));
            blocked += 2;
        }
        assert_eq!(f.partition_blocked, blocked);
        f.begin_round(15);
        assert!(!f.is_partitioned(), "partition heals after its epoch");
        assert!(f.link_ok(inside, outside));
    }

    #[test]
    fn replay_is_deterministic() {
        let plan = FaultPlan::parse("loss:0.1/dup:0.05/delay:0.05/crash:0.05:0.3").unwrap();
        let run = || {
            let mut f = FaultState::new(24, plan, &DetRng::seed_from(13));
            let mut trace = Vec::new();
            for t in 0..100 {
                f.begin_round(t);
                for i in 0..24 {
                    trace.push((f.is_down(i), f.fate(0, i)));
                }
            }
            (trace, f.dropped, f.duplicated, f.delayed, f.crashes)
        };
        assert_eq!(run(), run(), "same seed, same fault history");
    }

    #[test]
    fn ambient_silence_rate_composes_loss_and_delay() {
        let p = FaultPlan::parse("loss:0.1/delay:0.2").unwrap();
        assert!((p.ambient_silence_rate() - (0.1 + 0.9 * 0.2)).abs() < 1e-12);
        assert_eq!(FaultPlan::none().ambient_silence_rate(), 0.0);
        assert_eq!(
            FaultPlan::parse("loss:0.3").unwrap().ambient_silence_rate(),
            0.3
        );
    }

    #[test]
    fn with_loss_overrides_and_clamps() {
        let p = FaultPlan::parse("crash:0.01:0.2").unwrap().with_loss(0.4);
        assert_eq!(p.loss, 0.4);
        assert_eq!((p.crash, p.recover), (0.01, 0.2));
        assert_eq!(FaultPlan::none().with_loss(7.0).loss, 1.0);
    }

    #[test]
    fn duplicate_kinds_are_rejected_not_last_wins() {
        // Regression: this used to parse with the later rate silently
        // winning, so a typo could shadow an earlier component.
        let err = FaultPlan::parse("loss:0.1/loss:0.3").unwrap_err();
        assert!(err.contains("duplicate loss"), "got {err:?}");
        let err = FaultPlan::parse("crash:0.1:0.2/crash:0.3:0.4").unwrap_err();
        assert!(err.contains("duplicate crash"), "got {err:?}");
        // Distinct kinds still compose freely.
        let p = FaultPlan::parse("loss:0.1/dup:0.2/delay:0.3/crash:0.01:0.5/partition:5:10:0.4");
        assert!(p.is_ok());
    }

    #[test]
    fn ambient_silence_rate_folds_partition_blocking_during_epochs() {
        let p = FaultPlan::parse("loss:0.1/delay:0.2/partition:5:10:0.3").unwrap();
        let base = 0.1 + 0.9 * 0.2;
        // Outside the epoch the rate is exactly the loss/delay
        // composition (bit-identical with the legacy accessor, so
        // partition-free masquerade streams are unperturbed).
        assert_eq!(
            p.ambient_silence_rate_during(false),
            p.ambient_silence_rate()
        );
        // During the epoch, expected cross-cell blocking (2f(1-f))
        // composes in as an independent survival term.
        let block = 2.0 * 0.3 * 0.7;
        let during = p.ambient_silence_rate_during(true);
        assert!((during - (base + (1.0 - base) * block)).abs() < 1e-12);
        assert!(during > p.ambient_silence_rate());
        // No partition configured: both states agree.
        let q = FaultPlan::parse("loss:0.25").unwrap();
        assert_eq!(q.ambient_silence_rate_during(true), 0.25);
    }

    #[test]
    fn fault_state_ambient_rate_tracks_the_partition_epoch() {
        let plan = FaultPlan::parse("loss:0.1/partition:3:4:0.5").unwrap();
        let mut f = FaultState::new(64, plan, &DetRng::seed_from(9));
        for t in 0..12 {
            f.begin_round(t);
            let expect = plan.ambient_silence_rate_during(f.is_partitioned());
            assert_eq!(f.ambient_silence_rate(), expect, "round {t}");
            if (3..7).contains(&t) {
                assert!(f.is_partitioned(), "round {t} is inside the epoch");
                assert!(f.ambient_silence_rate() > plan.ambient_silence_rate());
            } else {
                assert!(!f.is_partitioned(), "round {t} is outside the epoch");
                assert_eq!(f.ambient_silence_rate(), plan.ambient_silence_rate());
            }
        }
    }
}
