//! The swarm round simulator: choking, piece selection, transfers.
//!
//! Each round:
//!
//! 1. the attacker re-evaluates its target set (top uploaders, rare-piece
//!    holders, or a fixed random set);
//! 2. every active leecher *rechokes*: it unchokes the `slots - 1`
//!    interested peers that recently uploaded the most to it
//!    (tit-for-tat) plus one rotating optimistic unchoke; seeds rotate
//!    random interested peers; attacker peers unchoke only their targets;
//! 3. every unchoked, interested downloader picks one piece from its
//!    uploader (random-first → rarest-first → endgame ladder, or uniform
//!    random in the ablation) and all transfers apply simultaneously —
//!    duplicate receipts are possible and counted (endgame waste);
//! 4. leechers holding every piece complete; they seed for a configured
//!    linger time and then depart.
//!
//! Rarity is computed over active honest peers: attacker peers serve only
//! their targets, so their copies are not really available to the swarm.
//!
//! # Hot-loop invariants
//!
//! The per-round phases are **allocation-free in steady state**: candidate
//! lists, tit-for-tat rankings, rarity counts, piece-selection sets and
//! the transfer list all live in [`Scratch`] buffers owned by the sim
//! struct, cleared and refilled in place (the unchoke lists keep their
//! per-peer `Vec` capacities across rounds). The timing layer
//! (`lotus_core::schedule`, `lotus_core::population`) adds no
//! allocations: schedule stepping is pure arithmetic plus a latch bit,
//! churn flips bits in a persistent membership set, and threshold-trigger
//! observations come from completion flags, not reports. Scratch contents
//! are meaningless between phases, and refactors here must keep reports
//! bit-identical per seed (the determinism and schedule-golden tests are
//! the guardrail).

use crate::attack::{SwarmAttack, TargetPolicy};
use crate::config::{PiecePolicy, SwarmConfig};
use lotus_core::bitset::BitSet;
use lotus_core::faults::{Fate, FaultCounters, FaultState};
use lotus_core::population::Population;
use lotus_core::satiation::Satiable;
use lotus_core::schedule::{MetricKey, ScheduleState};
use netsim::rng::DetRng;
use netsim::round::RoundSim;
use netsim::{NodeId, Round};

/// Role of a peer in the swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRole {
    /// Downloads the file; uploads tit-for-tat.
    Leecher,
    /// Origin seed: holds everything, never leaves.
    Seed,
    /// Attacker peer: holds everything, uploads only to targets.
    Attacker,
}

#[derive(Debug, Clone)]
struct Peer {
    have: BitSet,
    role: PeerRole,
    completed_at: Option<Round>,
    departed: bool,
    uploads: u64,
    targeted: bool,
    ever_targeted: bool,
    optimistic: Option<u32>,
}

/// Final report of a swarm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmReport {
    /// Rounds executed.
    pub rounds: Round,
    /// Whether every leecher finished within the horizon.
    pub all_complete: bool,
    /// Completion round per leecher (`None` = unfinished at the horizon).
    pub completion_rounds: Vec<Option<Round>>,
    /// Which leechers the attacker targeted (ever).
    pub targeted: Vec<bool>,
    /// Total pieces uploaded by attacker peers.
    pub attacker_upload: u64,
    /// Total pieces uploaded by honest peers (leechers + seeds).
    pub honest_upload: u64,
    /// Duplicate piece receipts (wasted transfers).
    pub duplicates: u64,
    /// Fault-injection counters, present only when the plan was active
    /// (so fault-free reports stay byte-identical to pre-fault ones).
    pub fault_counters: Option<FaultCounters>,
}

impl SwarmReport {
    fn completion_stats(&self, select_targeted: Option<bool>, horizon: Round) -> Vec<f64> {
        self.completion_rounds
            .iter()
            .zip(&self.targeted)
            .filter(|(_, &t)| select_targeted.is_none_or(|want| t == want))
            .map(|(c, _)| c.unwrap_or(horizon) as f64)
            .collect()
    }

    /// Mean completion round of non-targeted leechers (unfinished count as
    /// the horizon). Returns `None` if there are no such leechers.
    pub fn mean_completion_nontargeted(&self) -> Option<f64> {
        let v = self.completion_stats(Some(false), self.rounds);
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Mean completion round of targeted leechers.
    pub fn mean_completion_targeted(&self) -> Option<f64> {
        let v = self.completion_stats(Some(true), self.rounds);
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// 95th-percentile completion round of non-targeted leechers (the
    /// last-pieces-problem indicator).
    pub fn p95_completion_nontargeted(&self) -> Option<f64> {
        let v = self.completion_stats(Some(false), self.rounds);
        netsim::metrics::quantile_exact(&v, 0.95)
    }

    /// Mean completion round over all leechers.
    pub fn mean_completion(&self) -> f64 {
        let v = self.completion_stats(None, self.rounds);
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}

/// Reusable buffers for the allocation-free round loop (see module
/// docs); contents are meaningless between phases.
#[derive(Debug, Clone)]
struct Scratch {
    /// Per-peer unchoke lists; inner `Vec`s keep their capacity.
    unchoked: Vec<Vec<usize>>,
    /// Interested, active candidates of the current peer.
    candidates: Vec<usize>,
    /// Sort/shuffle buffer for choke/unchoke ranking.
    ranked: Vec<usize>,
    /// Candidates outside the regular unchoke slots.
    rest: Vec<usize>,
    /// Active, unfinished leechers (retarget phase).
    leechers: Vec<usize>,
    /// The attacker's chosen targets this round.
    chosen: Vec<usize>,
    /// Piece indices ordered by rarity (rare-piece targeting).
    order: Vec<usize>,
    /// Holder counts per piece.
    rarity: Vec<u32>,
    /// `(uploader, downloader, piece)` transfers of the round.
    transfers: Vec<(usize, usize, usize)>,
    /// Pieces the uploader has that the downloader lacks.
    needs: BitSet,
    needed: Vec<usize>,
    rarest: Vec<usize>,
}

impl Scratch {
    fn new(pieces: usize) -> Self {
        Scratch {
            unchoked: Vec::new(),
            candidates: Vec::new(),
            ranked: Vec::new(),
            rest: Vec::new(),
            leechers: Vec::new(),
            chosen: Vec::new(),
            order: Vec::new(),
            rarity: Vec::new(),
            transfers: Vec::new(),
            needs: BitSet::new(pieces),
            needed: Vec::new(),
            rarest: Vec::new(),
        }
    }
}

/// The swarm simulator.
///
/// ```
/// use torrent_sim::{SwarmAttack, SwarmConfig, SwarmSim};
///
/// let cfg = SwarmConfig::builder()
///     .leechers(20)
///     .pieces(32)
///     .build()?;
/// let report = SwarmSim::new(cfg, SwarmAttack::none(), 7).run_to_report();
/// assert!(report.all_complete, "healthy swarm finishes");
/// # Ok::<(), torrent_sim::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SwarmSim {
    cfg: SwarmConfig,
    attack: SwarmAttack,
    peers: Vec<Peer>,
    /// credit[i][j]: EMA of pieces peer j uploaded to peer i.
    credit: Vec<Vec<f64>>,
    rng: DetRng,
    round: Round,
    duplicates: u64,
    fixed_targets: Vec<usize>,
    /// Attack timing stepper; while off, attacker peers seed like
    /// ordinary seeds (the cooperate phase).
    schedule_state: ScheduleState,
    attack_active: bool,
    /// Leecher membership under churn (seeds and attacker peers are
    /// protected and never leave).
    population: Population,
    /// Fault injection (lost/duplicated transfers, leecher crashes, the
    /// partition); a guaranteed no-op under an inactive plan.
    faults: FaultState,
    scratch: Scratch,
}

impl SwarmSim {
    /// Build a simulator, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (use the builder, which validates).
    pub fn new(cfg: SwarmConfig, attack: SwarmAttack, seed: u64) -> Self {
        cfg.validate().expect("invalid SwarmConfig");
        let rng = DetRng::seed_from(seed).fork("swarm");
        let n = (cfg.leechers + cfg.seeds + attack.attacker_peers) as usize;
        let peers: Vec<Peer> = (0..n)
            .map(|i| {
                let role = if i < cfg.leechers as usize {
                    PeerRole::Leecher
                } else if i < (cfg.leechers + cfg.seeds) as usize {
                    PeerRole::Seed
                } else {
                    PeerRole::Attacker
                };
                Peer {
                    have: if role == PeerRole::Leecher {
                        BitSet::new(cfg.pieces as usize)
                    } else {
                        BitSet::full(cfg.pieces as usize)
                    },
                    role,
                    completed_at: None,
                    departed: false,
                    uploads: 0,
                    targeted: false,
                    ever_targeted: false,
                    optimistic: None,
                }
            })
            .collect();
        let fixed_targets = if attack.is_active() && attack.target_policy == TargetPolicy::Random {
            let count = attack.target_count(cfg.leechers) as usize;
            rng.fork("targets")
                .sample_indices(cfg.leechers as usize, count)
        } else {
            Vec::new()
        };
        let mut population = Population::new(n, cfg.churn, rng.fork("population"));
        // Forking never advances the parent, so adding the fault layer
        // is stream-invisible to every existing draw. Non-leechers are
        // crash-exempt, mirroring their churn protection: the origin
        // seed's copy must survive, and the attacker's infrastructure is
        // assumed reliable.
        let mut faults = FaultState::new(n, cfg.faults, &rng);
        for (i, peer) in peers.iter().enumerate() {
            if peer.role != PeerRole::Leecher {
                population.protect(i);
                faults.exempt(i);
            }
        }
        // Flash-crowd leechers are withdrawn now (index-ordered, no
        // randomness) and join with no pieces at their wave's round;
        // protected seeds/attackers are never held back.
        population.set_arrival(cfg.arrival);
        SwarmSim {
            credit: vec![vec![0.0; n]; n],
            scratch: Scratch::new(cfg.pieces as usize),
            schedule_state: ScheduleState::seeded(attack.schedule, rng.fork("adaptive")),
            attack_active: false,
            population,
            faults,
            cfg,
            attack,
            peers,
            rng,
            round: 0,
            duplicates: 0,
            fixed_targets,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SwarmConfig {
        &self.cfg
    }

    /// Whether `peer` has the whole file.
    pub fn is_complete(&self, peer: NodeId) -> bool {
        self.peers[peer.index()].have.is_full()
    }

    /// Whether `peer` has left the swarm.
    pub fn is_departed(&self, peer: NodeId) -> bool {
        self.peers[peer.index()].departed
    }

    /// Whether every leecher has completed.
    pub fn all_leechers_complete(&self) -> bool {
        self.peers
            .iter()
            .filter(|p| p.role == PeerRole::Leecher)
            .all(|p| p.completed_at.is_some())
    }

    fn active(&self, i: usize) -> bool {
        !self.peers[i].departed && self.population.is_present(i) && !self.faults.is_down(i)
    }

    /// Canonical-metric observation for metric-threshold schedules,
    /// computed from completion flags (no allocation). Unlike the
    /// gossip substrates' expiry-measured delivery, the completion
    /// fraction is genuine data from round 0 (nobody has finished yet),
    /// so this always observes.
    fn observe(&self, key: MetricKey) -> Option<f64> {
        let mut done = [0u32; 2];
        let mut count = [0u32; 2];
        for peer in self.peers.iter().take(self.cfg.leechers as usize) {
            let ti = usize::from(peer.ever_targeted);
            count[ti] += 1;
            if peer.completed_at.is_some() {
                done[ti] += 1;
            }
        }
        let frac = |d: u32, c: u32| {
            if c == 0 {
                0.0
            } else {
                f64::from(d) / f64::from(c)
            }
        };
        let overall = if count[0] > 0 {
            frac(done[0], count[0])
        } else {
            frac(done[1], count[1])
        };
        Some(match key {
            MetricKey::OverallDelivery => overall,
            MetricKey::TargetedService => {
                if count[1] == 0 {
                    overall
                } else {
                    frac(done[1], count[1])
                }
            }
            // Live membership state, not completion accounting.
            MetricKey::PresentFraction => self.population.present_fraction(),
            // The swarm has no silence cut-off defense to report.
            MetricKey::FalseCutRate => return None,
        })
    }

    /// `j` wants something `i` has: `i` holds a piece `j` lacks.
    fn interested(&self, j: usize, i: usize) -> bool {
        self.peers[i].have.difference_count(&self.peers[j].have) > 0
    }

    /// Holder counts per piece over active honest peers, into a reusable
    /// buffer.
    fn rarity_into(&self, counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(self.cfg.pieces as usize, 0);
        for (i, peer) in self.peers.iter().enumerate() {
            if !self.active(i) || peer.role == PeerRole::Attacker {
                continue;
            }
            for piece in peer.have.iter() {
                counts[piece] += 1;
            }
        }
    }

    /// Phase 1: the attacker picks its targets for this round (none
    /// while the schedule has the attack off).
    fn retarget(&mut self) {
        if !self.attack.is_active() {
            return;
        }
        for peer in self.peers.iter_mut() {
            peer.targeted = false;
        }
        if !self.attack_active {
            return;
        }
        let count = self.attack.target_count(self.cfg.leechers) as usize;
        let mut leechers = std::mem::take(&mut self.scratch.leechers);
        leechers.clear();
        leechers.extend(
            (0..self.cfg.leechers as usize)
                .filter(|&i| self.active(i) && self.peers[i].completed_at.is_none()),
        );
        let mut chosen = std::mem::take(&mut self.scratch.chosen);
        chosen.clear();
        match self.attack.target_policy {
            TargetPolicy::Random => {
                chosen.extend(
                    self.fixed_targets
                        .iter()
                        .copied()
                        .filter(|&i| self.active(i)),
                );
            }
            TargetPolicy::TopUploaders => {
                let by_upload = &mut self.scratch.ranked;
                by_upload.clear();
                by_upload.extend_from_slice(&leechers);
                let peers = &self.peers;
                by_upload.sort_by_key(|&i| std::cmp::Reverse(peers[i].uploads));
                chosen.extend(by_upload.iter().copied().take(count));
            }
            TargetPolicy::RarePieceHolders => {
                // Pieces ascending by holder count; target current holders.
                let mut counts = std::mem::take(&mut self.scratch.rarity);
                self.rarity_into(&mut counts);
                let order = &mut self.scratch.order;
                order.clear();
                order.extend(0..counts.len());
                order.sort_by_key(|&p| counts[p]);
                'outer: for &p in order.iter() {
                    for &i in &leechers {
                        if self.peers[i].have.contains(p) && !chosen.contains(&i) {
                            chosen.push(i);
                            if chosen.len() == count {
                                break 'outer;
                            }
                        }
                    }
                }
                self.scratch.rarity = counts;
            }
        }
        for &i in &chosen {
            self.peers[i].targeted = true;
            self.peers[i].ever_targeted = true;
        }
        self.scratch.leechers = leechers;
        self.scratch.chosen = chosen;
    }

    /// Phase 2: compute unchoke lists for every active peer, into the
    /// reusable per-peer buffers.
    fn rechoke(&mut self, t: Round, unchoked: &mut Vec<Vec<usize>>) {
        let n = self.peers.len();
        if unchoked.len() != n {
            unchoked.resize_with(n, Vec::new);
        }
        let mut rng = self.rng.fork_idx("rechoke", t);
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        let mut ranked = std::mem::take(&mut self.scratch.ranked);
        let mut rest = std::mem::take(&mut self.scratch.rest);
        #[allow(clippy::needless_range_loop)] // i indexes peers and unchoked alike
        for i in 0..n {
            unchoked[i].clear();
            if !self.active(i) {
                continue;
            }
            candidates.clear();
            candidates
                .extend((0..n).filter(|&j| j != i && self.active(j) && self.interested(j, i)));
            if candidates.is_empty() {
                continue;
            }
            // A cooperating (schedule-off) attacker seeds like an
            // ordinary seed instead of serving only its targets.
            let role = if self.peers[i].role == PeerRole::Attacker && !self.attack_active {
                PeerRole::Seed
            } else {
                self.peers[i].role
            };
            match role {
                PeerRole::Attacker => {
                    // Upload only to targets, as many slots as configured.
                    ranked.clear();
                    ranked.extend(
                        candidates
                            .iter()
                            .copied()
                            .filter(|&j| self.peers[j].targeted),
                    );
                    rng.shuffle(&mut ranked);
                    ranked.truncate(self.attack.attacker_slots as usize);
                    unchoked[i].extend_from_slice(&ranked);
                }
                PeerRole::Seed => {
                    // Seeds (and lingering completed leechers) rotate
                    // random interested peers.
                    ranked.clear();
                    ranked.extend_from_slice(&candidates);
                    rng.shuffle(&mut ranked);
                    ranked.truncate(self.cfg.unchoke_slots as usize);
                    unchoked[i].extend_from_slice(&ranked);
                }
                PeerRole::Leecher => {
                    if self.peers[i].completed_at.is_some() {
                        // Completed leecher seeds while it lingers.
                        ranked.clear();
                        ranked.extend_from_slice(&candidates);
                        rng.shuffle(&mut ranked);
                        ranked.truncate(self.cfg.unchoke_slots as usize);
                        unchoked[i].extend_from_slice(&ranked);
                        continue;
                    }
                    // Tit-for-tat: top (slots-1) by recent upload credit,
                    // ranked in a reusable buffer instead of a clone.
                    let regular_slots = (self.cfg.unchoke_slots as usize).saturating_sub(1);
                    ranked.clear();
                    ranked.extend_from_slice(&candidates);
                    let credit = &self.credit[i];
                    // Stable, deterministic tie-break by index.
                    ranked.sort_by(|&a, &b| {
                        credit[b]
                            .partial_cmp(&credit[a])
                            .expect("credit values are never NaN")
                            .then(a.cmp(&b))
                    });
                    ranked.truncate(regular_slots);
                    let regular: &[usize] = &ranked;
                    // Optimistic unchoke: rotate periodically among the rest.
                    rest.clear();
                    rest.extend(candidates.iter().copied().filter(|j| !regular.contains(j)));
                    let rotate = t.is_multiple_of(u64::from(self.cfg.optimistic_period));
                    let current = self.peers[i].optimistic;
                    let keep = current.and_then(|c| {
                        let c = c as usize;
                        if !rotate && rest.contains(&c) {
                            Some(c)
                        } else {
                            None
                        }
                    });
                    let optimistic = keep.or_else(|| rng.choose(&rest).copied());
                    self.peers[i].optimistic = optimistic.map(|o| o as u32);
                    unchoked[i].extend_from_slice(regular);
                    if let Some(o) = optimistic {
                        unchoked[i].push(o);
                    }
                }
            }
        }
        self.scratch.candidates = candidates;
        self.scratch.ranked = ranked;
        self.scratch.rest = rest;
    }

    /// The downloader `j` selects a piece to fetch from `i`, using the
    /// caller's scratch buffers.
    #[allow(clippy::too_many_arguments)] // the scratch buffers are one logical group
    fn select_piece(
        &self,
        j: usize,
        i: usize,
        rarity: &[u32],
        rng: &mut DetRng,
        needs: &mut BitSet,
        needed: &mut Vec<usize>,
        rarest: &mut Vec<usize>,
    ) -> Option<usize> {
        needs.copy_from(&self.peers[i].have);
        needs.subtract(&self.peers[j].have);
        needed.clear();
        needed.extend(needs.iter());
        if needed.is_empty() {
            return None;
        }
        let missing = self.cfg.pieces as usize - self.peers[j].have.len();
        let random_pick = match self.cfg.piece_policy {
            PiecePolicy::Random => true,
            PiecePolicy::RarestFirst => {
                self.peers[j].have.len() < self.cfg.random_first as usize
                    || missing <= self.cfg.endgame_threshold as usize
            }
        };
        if random_pick {
            return rng.choose(needed).copied();
        }
        let min_count = needed.iter().map(|&p| rarity[p]).min().expect("non-empty");
        rarest.clear();
        rarest.extend(needed.iter().copied().filter(|&p| rarity[p] == min_count));
        rng.choose(rarest).copied()
    }

    /// Phase 3: all transfers for the round, applied simultaneously.
    fn transfer_phase(&mut self, t: Round, unchoked: &[Vec<usize>]) {
        let mut rarity = std::mem::take(&mut self.scratch.rarity);
        self.rarity_into(&mut rarity);
        let mut rng = self.rng.fork_idx("transfers", t);
        let mut transfers = std::mem::take(&mut self.scratch.transfers);
        transfers.clear();
        let mut needs = std::mem::replace(&mut self.scratch.needs, BitSet::new(0));
        let mut needed = std::mem::take(&mut self.scratch.needed);
        let mut rarest = std::mem::take(&mut self.scratch.rarest);
        for (i, downloaders) in unchoked.iter().enumerate() {
            for &j in downloaders {
                // The partition blocks cross-cell transfers outright;
                // on a live link each transfer then draws its fate. A
                // dropped piece costs the uploader its slot for nothing;
                // a duplicated one arrives twice (counted as endgame-style
                // waste — receivers are idempotent).
                if !self.faults.link_ok(i, j) {
                    continue;
                }
                if let Some(p) = self.select_piece(
                    j,
                    i,
                    &rarity,
                    &mut rng,
                    &mut needs,
                    &mut needed,
                    &mut rarest,
                ) {
                    match self.faults.fate(i, j) {
                        Fate::Drop => {}
                        Fate::Duplicate => {
                            self.duplicates += 1;
                            transfers.push((i, j, p));
                        }
                        Fate::Deliver => transfers.push((i, j, p)),
                    }
                }
            }
        }
        // Decay reciprocity credit before crediting this round.
        for row in self.credit.iter_mut() {
            for c in row.iter_mut() {
                *c *= 0.5;
            }
        }
        for &(i, j, p) in &transfers {
            self.peers[i].uploads += 1;
            if self.peers[j].have.insert(p) {
                self.credit[j][i] += 1.0;
            } else {
                self.duplicates += 1;
            }
        }
        self.scratch.rarity = rarity;
        self.scratch.transfers = transfers;
        self.scratch.needs = needs;
        self.scratch.needed = needed;
        self.scratch.rarest = rarest;
    }

    /// Phase 4: completions and departures.
    fn lifecycle_phase(&mut self, t: Round) {
        for peer in self.peers.iter_mut() {
            if peer.role != PeerRole::Leecher || peer.departed {
                continue;
            }
            if peer.completed_at.is_none() && peer.have.is_full() {
                peer.completed_at = Some(t);
            }
            if let Some(done) = peer.completed_at {
                if t >= done + u64::from(self.cfg.seed_after_completion) {
                    peer.departed = true;
                }
            }
        }
    }

    /// Run until every leecher completes or the horizon is hit.
    pub fn run_to_report(mut self) -> SwarmReport {
        while self.round < self.cfg.max_rounds && !self.all_leechers_complete() {
            let t = self.round;
            self.round(t);
        }
        self.report()
    }

    /// Snapshot the report so far.
    pub fn report(&self) -> SwarmReport {
        let leechers = self.cfg.leechers as usize;
        SwarmReport {
            rounds: self.round,
            all_complete: self.all_leechers_complete(),
            completion_rounds: self.peers[..leechers]
                .iter()
                .map(|p| p.completed_at)
                .collect(),
            targeted: self.peers[..leechers]
                .iter()
                .map(|p| p.ever_targeted)
                .collect(),
            attacker_upload: self
                .peers
                .iter()
                .filter(|p| p.role == PeerRole::Attacker)
                .map(|p| p.uploads)
                .sum(),
            honest_upload: self
                .peers
                .iter()
                .filter(|p| p.role != PeerRole::Attacker)
                .map(|p| p.uploads)
                .sum(),
            duplicates: self.duplicates,
            fault_counters: if self.faults.is_active() {
                Some(self.faults.counters())
            } else {
                None
            },
        }
    }
}

impl RoundSim for SwarmSim {
    // lint: hot-loop
    fn round(&mut self, t: Round) {
        debug_assert_eq!(t, self.round, "rounds must be sequential");
        // Timing layer first: churn membership, then the schedule decides
        // whether this is a cooperate or defect round. Both are no-ops
        // under the default always-on, churn-free configuration.
        self.population.begin_round(t);
        self.faults.begin_round(t);
        if !self.faults.just_crashed().is_empty() {
            // State-losing crash: unlike a churned-out leecher, which
            // resumes where it left off, a crashed leecher loses its
            // pieces, its reciprocity memory and its optimistic pick and
            // re-downloads from scratch. A past completion stays on
            // record (the download did finish); only non-leechers are
            // exempt, so the file itself survives on the origin seed.
            for i in 0..self.peers.len() {
                if self.faults.just_crashed().contains(i) {
                    self.peers[i].have.clear();
                    self.peers[i].optimistic = None;
                    for c in self.credit[i].iter_mut() {
                        *c = 0.0;
                    }
                }
            }
        }
        let observed = self
            .schedule_state
            .needs_observation()
            .and_then(|k| self.observe(k));
        self.attack_active = self.schedule_state.is_active(t, observed);
        // Early lifecycle pass: peers satiated between rounds (e.g. fed by
        // the Observation 3.1 harness) complete — and depart, if they do
        // not linger — before they could serve anyone.
        self.lifecycle_phase(t);
        self.retarget();
        let mut unchoked = std::mem::take(&mut self.scratch.unchoked);
        self.rechoke(t, &mut unchoked);
        self.transfer_phase(t, &unchoked);
        self.scratch.unchoked = unchoked;
        self.lifecycle_phase(t);
        self.round = t + 1;
    }

    fn rounds_run(&self) -> Round {
        self.round
    }
}

impl lotus_core::scenario::Scenario for SwarmSim {
    type Config = SwarmConfig;
    type Attack = SwarmAttack;
    type Report = SwarmReport;
    const NAME: &'static str = "bittorrent";

    fn build(cfg: SwarmConfig, attack: SwarmAttack, seed: u64) -> Self {
        SwarmSim::new(cfg, attack, seed)
    }

    fn step(&mut self) -> lotus_core::scenario::StepOutcome {
        let done = |s: &Self| s.round >= s.cfg.max_rounds || s.all_leechers_complete();
        if done(self) {
            return lotus_core::scenario::StepOutcome::Done;
        }
        let t = self.round;
        RoundSim::round(self, t);
        if done(self) {
            lotus_core::scenario::StepOutcome::Done
        } else {
            lotus_core::scenario::StepOutcome::Continue
        }
    }

    fn report(&self) -> SwarmReport {
        SwarmSim::report(self)
    }

    fn arm_trace(&self) -> Option<&[lotus_core::adaptive::TraceEntry]> {
        self.schedule_state.arm_trace()
    }
}

impl lotus_core::scenario::Summarize for SwarmReport {
    /// Common vocabulary for the swarm:
    ///
    /// * `overall_delivery` — fraction of non-targeted leechers that
    ///   completed within the horizon (the population a lotus-eater
    ///   tries to starve);
    /// * `targeted_service` — completion fraction of targeted leechers;
    /// * `usable` — every leecher finished.
    fn summarize(&self) -> lotus_core::scenario::ScenarioReport {
        let completed = |want: Option<bool>| -> Option<f64> {
            let v: Vec<bool> = self
                .completion_rounds
                .iter()
                .zip(&self.targeted)
                .filter(|(_, &t)| want.is_none_or(|w| t == w))
                .map(|(c, _)| c.is_some())
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().filter(|&&c| c).count() as f64 / v.len() as f64)
            }
        };
        let overall = completed(Some(false))
            .or_else(|| completed(None))
            .unwrap_or(1.0);
        let targeted = completed(Some(true)).unwrap_or(overall);
        // The completion metrics are always present so sweeps that cross
        // the no-attack point (no targeted leechers) stay total: absent
        // populations fall back exactly as the legacy experiments did —
        // non-targeted to the overall mean, targeted to the non-targeted
        // value, p95 to the horizon.
        let nontargeted = self
            .mean_completion_nontargeted()
            .unwrap_or_else(|| self.mean_completion());
        let mut report = lotus_core::scenario::ScenarioReport::new(
            "bittorrent",
            self.rounds,
            overall,
            targeted,
            self.all_complete,
        )
        .with_metric("mean_completion", self.mean_completion())
        .with_metric("mean_completion_nontargeted", nontargeted)
        .with_metric(
            "mean_completion_targeted",
            self.mean_completion_targeted().unwrap_or(nontargeted),
        )
        .with_metric(
            "p95_completion_nontargeted",
            self.p95_completion_nontargeted()
                .unwrap_or(self.rounds as f64),
        )
        .with_metric("attacker_upload", self.attacker_upload as f64)
        .with_metric("honest_upload", self.honest_upload as f64)
        .with_metric("duplicates", self.duplicates as f64);
        // Fault metrics appear only under an active plan, keeping
        // fault-free report output byte-identical to pre-fault runs.
        if let Some(fc) = self.fault_counters {
            report = report
                .with_metric("faults_dropped", fc.dropped as f64)
                .with_metric("faults_duplicated", fc.duplicated as f64)
                .with_metric("faults_delayed", fc.delayed as f64)
                .with_metric("faults_crashes", fc.crashes as f64)
                .with_metric("faults_partition_blocked", fc.partition_blocked as f64);
        }
        report
    }
}

impl lotus_core::satiation::Feedable for SwarmSim {
    /// Give the peer the complete file instantly.
    fn feed_fully(&mut self, node: NodeId) {
        let pieces = self.cfg.pieces as usize;
        self.peers[node.index()].have = BitSet::full(pieces);
    }

    fn step(&mut self) {
        let t = self.round;
        RoundSim::round(self, t);
    }
}

impl Satiable for SwarmSim {
    fn node_count(&self) -> u32 {
        self.peers.len() as u32
    }

    /// A peer is satiated once it holds the complete file.
    fn is_satiated(&self, node: NodeId) -> bool {
        self.peers[node.index()].have.is_full()
    }

    fn service_provided(&self, node: NodeId) -> u64 {
        self.peers[node.index()].uploads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SwarmConfig {
        SwarmConfig::builder()
            .leechers(25)
            .seeds(1)
            .pieces(32)
            .max_rounds(800)
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_swarm_completes() {
        let report = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 1).run_to_report();
        assert!(
            report.all_complete,
            "swarm stuck after {} rounds",
            report.rounds
        );
        assert!(report.completion_rounds.iter().all(|c| c.is_some()));
        assert_eq!(report.attacker_upload, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 3).run_to_report();
        let b = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 3).run_to_report();
        assert_eq!(a, b);
    }

    #[test]
    fn targets_complete_earlier() {
        let attack = SwarmAttack::satiate(3, 8, 0.3, TargetPolicy::Random);
        let report = SwarmSim::new(quick_cfg(), attack, 5).run_to_report();
        assert!(report.all_complete);
        let t = report.mean_completion_targeted().expect("targets exist");
        let nt = report
            .mean_completion_nontargeted()
            .expect("non-targets exist");
        assert!(
            t < nt,
            "satiated targets finish earlier: targeted {t} vs non-targeted {nt}"
        );
        assert!(report.attacker_upload > 0, "generosity costs bandwidth");
    }

    #[test]
    fn attack_does_modest_damage_to_nontargets() {
        // The paper's §1 claim: satiating BitTorrent leechers is "often
        // actually a net benefit to the torrent". Non-targeted completion
        // should not collapse the way BAR Gossip isolated delivery does.
        let clean = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 7).run_to_report();
        let attack = SwarmAttack::satiate(5, 8, 0.4, TargetPolicy::TopUploaders);
        let attacked = SwarmSim::new(quick_cfg(), attack, 7).run_to_report();
        assert!(attacked.all_complete, "swarm still finishes under attack");
        let clean_mean = clean.mean_completion();
        // TopUploaders rotates across the population as targets finish, so
        // judge the swarm as a whole (non-targeted leechers may not exist).
        let attacked_mean = attacked
            .mean_completion_nontargeted()
            .unwrap_or_else(|| attacked.mean_completion());
        assert!(
            attacked_mean < clean_mean * 2.0,
            "damage stays modest: attacked {attacked_mean} vs clean {clean_mean}"
        );
    }

    #[test]
    fn rarest_first_beats_random_selection() {
        // Rarest-first equalises piece availability; random selection
        // leaves a heavier completion tail.
        let mut rare_cfg = quick_cfg();
        rare_cfg.piece_policy = PiecePolicy::RarestFirst;
        let mut rand_cfg = quick_cfg();
        rand_cfg.piece_policy = PiecePolicy::Random;
        let mut rare_sum = 0.0;
        let mut rand_sum = 0.0;
        for seed in 1..=3 {
            rare_sum += SwarmSim::new(rare_cfg.clone(), SwarmAttack::none(), seed)
                .run_to_report()
                .mean_completion();
            rand_sum += SwarmSim::new(rand_cfg.clone(), SwarmAttack::none(), seed)
                .run_to_report()
                .mean_completion();
        }
        assert!(
            rare_sum <= rand_sum * 1.1,
            "rarest-first should not be slower: {rare_sum} vs {rand_sum}"
        );
    }

    #[test]
    fn seeding_after_completion_helps() {
        let mut linger = quick_cfg();
        linger.seed_after_completion = 50;
        let with_seeding = SwarmSim::new(linger, SwarmAttack::none(), 9).run_to_report();
        let without = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 9).run_to_report();
        assert!(
            with_seeding.mean_completion() <= without.mean_completion(),
            "lingering seeds speed the tail: {} vs {}",
            with_seeding.mean_completion(),
            without.mean_completion()
        );
    }

    #[test]
    fn satiable_interface() {
        let mut sim = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 1);
        // The origin seed is satiated from the start and still serves:
        // BitTorrent's seeding is exactly the altruism defense.
        let seed_id = NodeId(25);
        assert!(sim.is_satiated(seed_id));
        for t in 0..30 {
            sim.round(t);
        }
        assert!(
            sim.service_provided(seed_id) > 0,
            "seed serves while satiated"
        );
    }

    #[test]
    fn rare_piece_targeting_picks_holders() {
        let mut sim = SwarmSim::new(
            quick_cfg(),
            SwarmAttack::satiate(2, 4, 0.2, TargetPolicy::RarePieceHolders),
            11,
        );
        for t in 0..10 {
            sim.round(t);
        }
        let targeted: Vec<usize> = (0..25).filter(|&i| sim.peers[i].targeted).collect();
        assert!(!targeted.is_empty(), "targets exist once pieces spread");
    }

    #[test]
    fn zero_rate_fault_plan_is_report_invisible() {
        use lotus_core::faults::FaultPlan;
        let mut zeroed = quick_cfg();
        zeroed.faults = FaultPlan::parse("loss:0/dup:0/crash:0:0.5/partition:10:5:0").unwrap();
        let a = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 31).run_to_report();
        let b = SwarmSim::new(zeroed, SwarmAttack::none(), 31).run_to_report();
        assert_eq!(a, b, "zero-rate plans must be byte-invisible");
        assert!(b.fault_counters.is_none());
    }

    #[test]
    fn loss_slows_the_swarm() {
        use lotus_core::faults::FaultPlan;
        let clean = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 32).run_to_report();
        let mut cfg = quick_cfg();
        cfg.faults = FaultPlan::parse("loss:0.3").unwrap();
        let lossy = SwarmSim::new(cfg, SwarmAttack::none(), 32).run_to_report();
        let fc = lossy.fault_counters.expect("plan was active");
        assert!(fc.dropped > 0, "losses happened");
        assert!(
            lossy.mean_completion() > clean.mean_completion() * 1.2,
            "30% loss slows completion: {} vs {}",
            lossy.mean_completion(),
            clean.mean_completion()
        );
    }

    #[test]
    fn crashed_leechers_lose_pieces_but_seeds_survive() {
        use lotus_core::faults::FaultPlan;
        let mut cfg = quick_cfg();
        cfg.max_rounds = 2_000;
        cfg.faults = FaultPlan::parse("crash:0.01:0.3").unwrap();
        let mut sim = SwarmSim::new(cfg, SwarmAttack::none(), 33);
        let mut saw_wipe = false;
        for t in 0..400 {
            sim.round(t);
            for i in 0..25 {
                if sim.faults.just_crashed().contains(i) && sim.peers[i].have.is_empty() {
                    saw_wipe = true;
                }
            }
            // The origin seed is crash-exempt: the file always survives.
            assert!(sim.peers[25].have.is_full());
            assert!(!sim.faults.is_down(25));
        }
        assert!(saw_wipe, "some leecher crashed with pieces wiped");
    }

    #[test]
    fn duplicate_faults_surface_in_the_waste_counter() {
        use lotus_core::faults::FaultPlan;
        let clean = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 34).run_to_report();
        let mut cfg = quick_cfg();
        cfg.faults = FaultPlan::parse("dup:0.3").unwrap();
        let dupy = SwarmSim::new(cfg, SwarmAttack::none(), 34).run_to_report();
        assert!(
            dupy.duplicates > clean.duplicates,
            "duplicated transfers count as waste: {} vs {}",
            dupy.duplicates,
            clean.duplicates
        );
        assert!(dupy.fault_counters.expect("active").duplicated > 0);
    }

    #[test]
    fn interested_semantics() {
        let sim = SwarmSim::new(quick_cfg(), SwarmAttack::none(), 1);
        // Leecher 0 (empty) is interested in the seed, not vice versa.
        assert!(sim.interested(0, 25));
        assert!(!sim.interested(25, 0));
    }
}
