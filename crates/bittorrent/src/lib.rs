//! `torrent-sim` — a simplified BitTorrent swarm simulator for the
//! lotus-eater analysis.
//!
//! The lotus-eater paper (§1) predicts the attack does much less damage to
//! BitTorrent than to BAR Gossip: the attacker satiates leechers by
//! uploading generously, but "since most leechers are downloading more
//! than they upload, this is often actually a net benefit to the torrent",
//! and manufacturing a last-pieces problem by satiating rare-piece holders
//! is defused by the rarest-first policy (§4). This crate makes both
//! claims measurable.
//!
//! The simulator keeps the mechanisms that matter: tit-for-tat choking
//! with a rotating optimistic unchoke, the random-first → rarest-first →
//! endgame piece ladder, origin seeds and post-completion seeding
//! (BitTorrent's built-in altruism), and attacker peers that upload only
//! to their chosen targets.
//!
//! # Example
//!
//! ```
//! use torrent_sim::{SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};
//!
//! let cfg = SwarmConfig::builder().leechers(20).pieces(32).build()?;
//! let attack = SwarmAttack::satiate(3, 8, 0.3, TargetPolicy::Random);
//! let report = SwarmSim::new(cfg, attack, 42).run_to_report();
//! // Satiated targets finish early and leave — but the swarm survives.
//! assert!(report.all_complete);
//! # Ok::<(), torrent_sim::config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod sim;

pub use attack::{SwarmAttack, TargetPolicy};
pub use config::{PiecePolicy, SwarmConfig};
pub use sim::{PeerRole, SwarmReport, SwarmSim};
