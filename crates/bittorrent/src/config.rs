//! Swarm configuration and piece-selection policy.
//!
//! The lotus-eater paper argues (§1, §4) that BitTorrent, while satiable,
//! suffers far less from the attack than BAR Gossip: satiated leechers
//! leave, but the attacker's own upload capacity compensates, and the
//! *rarest-first* piece policy prevents the attacker from manufacturing a
//! "last pieces problem". This crate's simulator keeps exactly the
//! mechanisms those claims rest on: tit-for-tat choking with optimistic
//! unchokes, rarest-first / random-first / endgame piece selection, origin
//! seeds and post-completion seeding.

use lotus_core::faults::FaultPlan;
use lotus_core::population::{ArrivalProcess, ChurnProfile};

/// How a downloader picks the next piece to request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiecePolicy {
    /// Random pieces until `random_first` are held, then rarest-first,
    /// then endgame (BitTorrent's actual ladder).
    RarestFirst,
    /// Uniformly random among needed pieces (the ablation the paper's
    /// rare-piece argument is judged against).
    Random,
}

/// Configuration of a swarm run.
///
/// Construct via [`SwarmConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmConfig {
    /// Leechers starting with nothing (flash crowd at round 0).
    pub leechers: u32,
    /// Origin seeds; they hold everything and never leave.
    pub seeds: u32,
    /// Pieces in the file.
    pub pieces: u32,
    /// Upload slots per leecher (`slots - 1` reciprocal + 1 optimistic).
    pub unchoke_slots: u32,
    /// Rounds an optimistic unchoke is held before rotating.
    pub optimistic_period: u32,
    /// Pieces a newcomer grabs at random before rarest-first applies.
    pub random_first: u32,
    /// With at most this many pieces missing, request any missing piece
    /// (endgame mode).
    pub endgame_threshold: u32,
    /// The piece-selection policy.
    pub piece_policy: PiecePolicy,
    /// Rounds a finished leecher stays to seed before departing.
    pub seed_after_completion: u32,
    /// Hard stop for the simulation.
    pub max_rounds: u64,
    /// Leecher churn (default: none; a uniform
    /// [`ChurnSpec`](lotus_core::population::ChurnSpec) converts to the
    /// degenerate one-class profile). Origin seeds and attacker peers
    /// never churn; offline leechers keep their pieces and resume
    /// downloading on return.
    pub churn: ChurnProfile,
    /// Flash-crowd arrival process: held-back leechers join with no
    /// pieces at their wave's round (default: none). Origin seeds and
    /// attacker peers are never held back.
    pub arrival: ArrivalProcess,
    /// Fault plan (default: none). Unlike churned-out leechers, a
    /// *crashed* leecher loses its pieces and reciprocity memory and
    /// re-enters cold; origin seeds and attacker peers are exempt from
    /// crashing (the file must survive, and the attacker's infrastructure
    /// is assumed reliable). Message faults drop or duplicate piece
    /// transfers; the partition stops cross-cell transfers.
    pub faults: FaultPlan,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            leechers: 50,
            seeds: 1,
            pieces: 64,
            unchoke_slots: 4,
            optimistic_period: 3,
            random_first: 4,
            endgame_threshold: 2,
            piece_policy: PiecePolicy::RarestFirst,
            seed_after_completion: 0,
            max_rounds: 2_000,
            churn: ChurnProfile::none(),
            arrival: ArrivalProcess::None,
            faults: FaultPlan::none(),
        }
    }
}

/// Errors from [`SwarmConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Need at least one leecher.
    NoLeechers,
    /// Need at least one origin seed (otherwise the file may be lost).
    NoSeeds,
    /// Need at least one piece.
    NoPieces,
    /// Need at least one unchoke slot.
    NoSlots,
    /// `optimistic_period` must be positive.
    ZeroOptimisticPeriod,
    /// `max_rounds` must be positive.
    ZeroMaxRounds,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoLeechers => write!(f, "need at least one leecher"),
            ConfigError::NoSeeds => write!(f, "need at least one origin seed"),
            ConfigError::NoPieces => write!(f, "need at least one piece"),
            ConfigError::NoSlots => write!(f, "need at least one unchoke slot"),
            ConfigError::ZeroOptimisticPeriod => {
                write!(f, "optimistic period must be positive")
            }
            ConfigError::ZeroMaxRounds => write!(f, "max rounds must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SwarmConfig {
    /// Start building from the defaults.
    pub fn builder() -> SwarmConfigBuilder {
        SwarmConfigBuilder {
            cfg: SwarmConfig::default(),
        }
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.leechers == 0 {
            return Err(ConfigError::NoLeechers);
        }
        if self.seeds == 0 {
            return Err(ConfigError::NoSeeds);
        }
        if self.pieces == 0 {
            return Err(ConfigError::NoPieces);
        }
        if self.unchoke_slots == 0 {
            return Err(ConfigError::NoSlots);
        }
        if self.optimistic_period == 0 {
            return Err(ConfigError::ZeroOptimisticPeriod);
        }
        if self.max_rounds == 0 {
            return Err(ConfigError::ZeroMaxRounds);
        }
        Ok(())
    }
}

/// Builder for [`SwarmConfig`].
#[derive(Debug, Clone)]
pub struct SwarmConfigBuilder {
    cfg: SwarmConfig,
}

impl SwarmConfigBuilder {
    /// Set the leecher count.
    pub fn leechers(mut self, n: u32) -> Self {
        self.cfg.leechers = n;
        self
    }

    /// Set the origin-seed count.
    pub fn seeds(mut self, s: u32) -> Self {
        self.cfg.seeds = s;
        self
    }

    /// Set the piece count.
    pub fn pieces(mut self, p: u32) -> Self {
        self.cfg.pieces = p;
        self
    }

    /// Set upload slots per leecher.
    pub fn unchoke_slots(mut self, s: u32) -> Self {
        self.cfg.unchoke_slots = s;
        self
    }

    /// Set the piece-selection policy.
    pub fn piece_policy(mut self, p: PiecePolicy) -> Self {
        self.cfg.piece_policy = p;
        self
    }

    /// Set post-completion seeding rounds.
    pub fn seed_after_completion(mut self, rounds: u32) -> Self {
        self.cfg.seed_after_completion = rounds;
        self
    }

    /// Set the hard round limit.
    pub fn max_rounds(mut self, r: u64) -> Self {
        self.cfg.max_rounds = r;
        self
    }

    /// Set the leecher churn profile (default: none; a uniform spec
    /// converts to the one-class profile).
    pub fn churn(mut self, churn: impl Into<ChurnProfile>) -> Self {
        self.cfg.churn = churn.into();
        self
    }

    /// Set the flash-crowd arrival process (default: none).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.cfg.arrival = arrival;
        self
    }

    /// Set the fault plan (default: none).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Propagates [`SwarmConfig::validate`] failures.
    pub fn build(self) -> Result<SwarmConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SwarmConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SwarmConfig::builder()
            .leechers(20)
            .seeds(2)
            .pieces(32)
            .unchoke_slots(5)
            .piece_policy(PiecePolicy::Random)
            .seed_after_completion(10)
            .max_rounds(500)
            .build()
            .unwrap();
        assert_eq!(cfg.leechers, 20);
        assert_eq!(cfg.piece_policy, PiecePolicy::Random);
        assert_eq!(cfg.seed_after_completion, 10);
    }

    #[test]
    fn validation_failures() {
        assert_eq!(
            SwarmConfig::builder().leechers(0).build(),
            Err(ConfigError::NoLeechers)
        );
        assert_eq!(
            SwarmConfig::builder().seeds(0).build(),
            Err(ConfigError::NoSeeds)
        );
        assert_eq!(
            SwarmConfig::builder().pieces(0).build(),
            Err(ConfigError::NoPieces)
        );
        assert_eq!(
            SwarmConfig::builder().unchoke_slots(0).build(),
            Err(ConfigError::NoSlots)
        );
        assert_eq!(
            SwarmConfig::builder().max_rounds(0).build(),
            Err(ConfigError::ZeroMaxRounds)
        );
        let cfg = SwarmConfig {
            optimistic_period: 0,
            ..SwarmConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroOptimisticPeriod));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ConfigError::NoLeechers,
            ConfigError::NoSeeds,
            ConfigError::NoPieces,
            ConfigError::NoSlots,
            ConfigError::ZeroOptimisticPeriod,
            ConfigError::ZeroMaxRounds,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
