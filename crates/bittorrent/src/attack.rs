//! Lotus-eater attacks on a BitTorrent swarm.
//!
//! The attacker controls peers that already hold the whole file (he is an
//! insider, or downloaded it beforehand) and showers *targeted* leechers
//! with pieces so they finish early and leave — satiation by generosity.
//! The paper's argument (§1) is that this usually backfires: the attacker
//! "must contribute significant bandwidth of his own", and because most
//! leechers download more than they upload, removing them while adding
//! attacker capacity "is often actually a net benefit to the torrent". The
//! one interesting variant is targeting **rare-piece holders** to
//! manufacture a last-pieces problem — which rarest-first then defuses
//! (§4, experiment X7).

use lotus_core::schedule::AttackSchedule;

/// Who the attacker satiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetPolicy {
    /// The leechers that uploaded the most recently (remove the strongest
    /// contributors).
    TopUploaders,
    /// Holders of the currently rarest pieces (manufacture a last-pieces
    /// problem).
    RarePieceHolders,
    /// A fixed random set of leechers.
    Random,
}

/// An attack on the swarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmAttack {
    /// Attacker peers added to the swarm (each holds the full file).
    pub attacker_peers: u32,
    /// Upload slots per attacker peer (his bandwidth commitment).
    pub attacker_slots: u32,
    /// Fraction of leechers targeted for satiation.
    pub target_fraction: f64,
    /// How targets are chosen (re-evaluated every round for
    /// [`TargetPolicy::RarePieceHolders`] and
    /// [`TargetPolicy::TopUploaders`]).
    pub target_policy: TargetPolicy,
    /// When the attack is on (default: always). While off, attacker
    /// peers cooperate: they seed like ordinary seeds instead of serving
    /// only their targets.
    pub schedule: AttackSchedule,
}

impl SwarmAttack {
    /// No attacker at all.
    pub fn none() -> Self {
        SwarmAttack {
            attacker_peers: 0,
            attacker_slots: 0,
            target_fraction: 0.0,
            target_policy: TargetPolicy::Random,
            schedule: AttackSchedule::always(),
        }
    }

    /// A generosity attack with `peers` attacker peers of `slots` upload
    /// slots each, satiating `target_fraction` of leechers under `policy`.
    pub fn satiate(peers: u32, slots: u32, target_fraction: f64, policy: TargetPolicy) -> Self {
        SwarmAttack {
            attacker_peers: peers,
            attacker_slots: slots,
            target_fraction: target_fraction.clamp(0.0, 1.0),
            target_policy: policy,
            schedule: AttackSchedule::always(),
        }
    }

    /// Run the attack under `schedule` (builder style).
    pub fn with_schedule(mut self, schedule: AttackSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Whether any attack is configured.
    pub fn is_active(&self) -> bool {
        self.attacker_peers > 0 && self.target_fraction > 0.0
    }

    /// Number of leechers targeted out of `leechers`.
    pub fn target_count(&self, leechers: u32) -> u32 {
        ((f64::from(leechers) * self.target_fraction).round() as u32).min(leechers)
    }
}

impl Default for SwarmAttack {
    fn default() -> Self {
        SwarmAttack::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        let a = SwarmAttack::none();
        assert!(!a.is_active());
        assert_eq!(a.target_count(50), 0);
        assert_eq!(SwarmAttack::default(), a);
    }

    #[test]
    fn satiate_clamps_and_counts() {
        let a = SwarmAttack::satiate(5, 8, 0.4, TargetPolicy::TopUploaders);
        assert!(a.is_active());
        assert_eq!(a.target_count(50), 20);
        let b = SwarmAttack::satiate(5, 8, 1.7, TargetPolicy::Random);
        assert_eq!(b.target_fraction, 1.0);
        assert_eq!(b.target_count(10), 10);
    }

    #[test]
    fn zero_peers_is_inactive() {
        let a = SwarmAttack::satiate(0, 8, 0.5, TargetPolicy::Random);
        assert!(!a.is_active());
    }
}
