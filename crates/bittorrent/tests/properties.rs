//! Property-based tests for the swarm simulator.
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature *and* add the `proptest` dev-dependency once the workspace
//! has access to a registry (the default build must stay dependency-free).
#![cfg(feature = "proptest-tests")]

use lotus_core::satiation::Satiable;
use netsim::round::RoundSim;
use netsim::NodeId;
use proptest::prelude::*;
use torrent_sim::{PiecePolicy, SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};

fn arb_attack() -> impl Strategy<Value = SwarmAttack> {
    prop_oneof![
        Just(SwarmAttack::none()),
        (1u32..5, 1u32..8, 0.0f64..1.0)
            .prop_map(|(p, s, f)| { SwarmAttack::satiate(p, s, f, TargetPolicy::Random) }),
        (1u32..5, 1u32..8, 0.0f64..1.0).prop_map(|(p, s, f)| {
            SwarmAttack::satiate(p, s, f, TargetPolicy::RarePieceHolders)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pieces_only_accumulate(
        seed in any::<u64>(),
        leechers in 4u32..20,
        pieces in 4u32..40,
        attack in arb_attack(),
    ) {
        let cfg = SwarmConfig::builder()
            .leechers(leechers)
            .pieces(pieces)
            .max_rounds(200)
            .build()
            .expect("valid config");
        let mut sim = SwarmSim::new(cfg, attack, seed);
        let n = sim.node_count();
        let mut prev = vec![false; n as usize];
        for t in 0..40 {
            sim.round(t);
            for i in 0..n {
                let complete = sim.is_complete(NodeId(i));
                prop_assert!(
                    complete || !prev[i as usize],
                    "completion is permanent (node {i})"
                );
                prev[i as usize] = complete;
            }
        }
    }

    #[test]
    fn swarm_always_completes_with_a_permanent_seed(
        seed in any::<u64>(),
        leechers in 4u32..16,
        pieces in 4u32..24,
        policy in prop_oneof![Just(PiecePolicy::RarestFirst), Just(PiecePolicy::Random)],
    ) {
        let cfg = SwarmConfig::builder()
            .leechers(leechers)
            .pieces(pieces)
            .piece_policy(policy)
            .max_rounds(1_500)
            .build()
            .expect("valid config");
        let report = SwarmSim::new(cfg, SwarmAttack::none(), seed).run_to_report();
        prop_assert!(report.all_complete, "stuck after {} rounds", report.rounds);
        for c in &report.completion_rounds {
            prop_assert!(c.is_some());
        }
    }

    #[test]
    fn upload_accounting_is_consistent(
        seed in any::<u64>(),
        attack in arb_attack(),
    ) {
        let cfg = SwarmConfig::builder()
            .leechers(10)
            .pieces(16)
            .max_rounds(400)
            .build()
            .expect("valid config");
        let mut sim = SwarmSim::new(cfg, attack, seed);
        for t in 0..60 {
            sim.round(t);
        }
        let report = sim.report();
        let per_node: u64 = (0..sim.node_count())
            .map(|i| sim.service_provided(NodeId(i)))
            .sum();
        prop_assert_eq!(report.attacker_upload + report.honest_upload, per_node);
        // Useful receipts cannot exceed uploads.
        prop_assert!(report.duplicates <= per_node);
    }

    #[test]
    fn satiation_equals_completion(seed in any::<u64>()) {
        let cfg = SwarmConfig::builder()
            .leechers(8)
            .pieces(12)
            .max_rounds(400)
            .build()
            .expect("valid config");
        let mut sim = SwarmSim::new(cfg, SwarmAttack::none(), seed);
        for t in 0..30 {
            sim.round(t);
        }
        for i in 0..sim.node_count() {
            prop_assert_eq!(sim.is_satiated(NodeId(i)), sim.is_complete(NodeId(i)));
        }
    }
}
