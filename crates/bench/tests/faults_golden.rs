//! Golden invisibility + determinism tests for the fault-injection
//! layer.
//!
//! The fixtures below are the *pre-faults* goldens (the same pinned
//! report strings the churn suite has carried since PR 4, generated
//! before `FaultPlan` existed). The fault layer's acceptance bar is that
//! an inactive plan — however it is spelled — is invisible at the byte
//! level: every substrate must keep reproducing these strings exactly
//! with an explicit zero-rate plan configured, because `FaultState`
//! forks its streams without advancing the parent and draws nothing
//! under an inactive plan.
//!
//! The X19 fixtures then pin the *active* path: masquerade attack under
//! loss with the silence cut-off armed, one report string per gossip
//! substrate, plus worker-count independence for faulted sweeps.

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_core::sweep::{sweep_fraction, SweepConfig};

struct Golden {
    scenario: &'static str,
    attack: &'static str,
    seed: u64,
    params: &'static [(&'static str, &'static str)],
    json: &'static str,
}

/// The PR 4 churned-run fixtures, verbatim from the churn golden suite:
/// one report per scheduled substrate, generated before the fault layer
/// existed.
const PRE_FAULTS_GOLDENS: &[Golden] = &[
    Golden {
        scenario: "bar-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
            ("churn_leave", "0.05"),
            ("churn_rejoin", "0.4"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9007142857142857,"targeted_service":0.955,"usable":false,"attacker_coverage":0.825,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.8283333333333334,"junk_fraction":0.03276897870016385,"mean_attacker_upload":120.4,"mean_honest_upload":53.02857142857143,"min_node_delivery":0.125,"nodes_ever_unusable":0.37142857142857144,"satiated_delivery":0.955,"unusable_node_rounds":0.15428571428571428}"#,
    },
    Golden {
        scenario: "scrip",
        attack: "lotus-eater",
        seed: 1,
        params: &[
            ("agents", "40"),
            ("rounds", "600"),
            ("warmup", "100"),
            ("churn_leave", "0.02"),
            ("churn_rejoin", "0.3"),
        ],
        json: r#"{"scenario":"scrip","rounds":700,"overall_delivery":0.32212389380530976,"targeted_service":0.9727777777777777,"usable":false,"attacker_money":33,"fail_broke_rate":0.6778761061946903,"fail_no_volunteer_rate":0,"free_rate":0,"gini":0.7058510638297872,"mean_satiated_fraction":0.2918333333333356,"mean_threshold":4,"paid_rate":0.32212389380530976,"service_rate":0.32212389380530976,"special_service_rate":1,"target_satiation":0.9727777777777777,"total_money":80}"#,
    },
    Golden {
        scenario: "bittorrent",
        attack: "satiate",
        seed: 1,
        params: &[
            ("leechers", "15"),
            ("pieces", "16"),
            ("churn_leave", "0.05"),
            ("churn_rejoin", "0.5"),
        ],
        json: r#"{"scenario":"bittorrent","rounds":13,"overall_delivery":1,"targeted_service":1,"usable":true,"attacker_upload":80,"duplicates":118,"honest_upload":278,"mean_completion":5.533333333333333,"mean_completion_nontargeted":6.8,"mean_completion_targeted":3,"p95_completion_nontargeted":10.649999999999997}"#,
    },
    Golden {
        scenario: "token",
        attack: "random-fraction",
        seed: 7,
        params: &[
            ("nodes", "24"),
            ("rounds", "50"),
            ("churn_leave", "0.08"),
            ("churn_rejoin", "0.25"),
        ],
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0.9901960784313725,"targeted_service":1,"usable":true,"all_satiated_at":-1,"attacked_nodes":7,"final_satiated_fraction":0.9166666666666666,"mean_coverage":0.9930555555555555,"min_coverage":0.9166666666666666,"token0_reach":1,"untouched_mean_coverage":0.9901960784313725,"untouched_satisfied":0.8823529411764706}"#,
    },
    Golden {
        scenario: "scrip-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
            ("churn_leave", "0.05"),
            ("churn_rejoin", "0.4"),
        ],
        json: r#"{"scenario":"scrip-gossip","rounds":25,"overall_delivery":0.9871428571428571,"targeted_service":1,"usable":true,"broke_rate":0.14127659574468085,"isolated_delivery":0.97,"refusal_rate":0,"satiated_delivery":1,"total_money":2000}"#,
    },
];

fn run_case(g: &Golden, extra: &[(&str, String)]) -> lotus_core::scenario::ScenarioReport {
    let reg = ScenarioRegistry::standard();
    let mut p = Params::new();
    for (k, v) in g.params {
        p.set(*k, *v);
    }
    for (k, v) in extra {
        p.set(*k, v.clone());
    }
    let req = RunRequest::new(0.3, g.seed, g.attack, "fraction", &p);
    reg.run(g.scenario, &req)
        .unwrap_or_else(|e| panic!("{} {} seed {}: {e}", g.scenario, g.attack, g.seed))
}

#[test]
fn inactive_fault_plans_reproduce_the_pre_faults_goldens_bit_identically() {
    // Every spelling of "no faults" the grammar allows: absent, the
    // literal none, explicit zero message rates, a zero-rate crash pair,
    // a zero-fraction partition, and a fault_loss=0 override.
    let spellings: &[&[(&str, &str)]] = &[
        &[],
        &[("faults", "none")],
        &[("faults", "loss:0/dup:0/delay:0")],
        &[("faults", "crash:0:0.5")],
        &[("faults", "partition:5:10:0")],
        &[("fault_loss", "0")],
    ];
    for g in PRE_FAULTS_GOLDENS {
        for extra in spellings {
            let owned: Vec<(&str, String)> =
                extra.iter().map(|&(k, v)| (k, v.to_string())).collect();
            let report = run_case(g, &owned);
            assert_eq!(
                report.to_json(),
                g.json,
                "{} / {} / seed {} with {extra:?}: an inactive fault plan must be \
                 byte-invisible against the pre-faults golden",
                g.scenario,
                g.attack,
                g.seed
            );
        }
    }
}

/// Small bar-gossip-family parameters shared by the X19 fixtures.
const X19_PARAMS: &[(&str, &str)] = &[
    ("copies_seeded", "5"),
    ("nodes", "50"),
    ("rounds", "10"),
    ("updates_per_round", "4"),
    ("warmup_rounds", "5"),
    ("cutoff", "3"),
    ("faults", "loss:0.15"),
];

#[test]
fn x19_masquerade_reports_are_pinned() {
    // The active path's golden: masquerade attacker at 25 % under 15 %
    // loss with the silence cut-off armed, pinned per gossip substrate.
    // Any drift in the fault streams, the masquerade draws, the cutoff
    // bookkeeping or the conditional report fields breaks this.
    let fixtures: &[(&str, &str)] = &[
        ("bar-gossip", X19_BAR_GOSSIP_JSON),
        ("scrip-gossip", X19_SCRIP_GOSSIP_JSON),
    ];
    let reg = ScenarioRegistry::standard();
    for (scenario, expected) in fixtures {
        let mut p = Params::new();
        for (k, v) in X19_PARAMS {
            p.set(*k, *v);
        }
        let req = RunRequest::new(0.25, 1, "masquerade", "fraction", &p);
        let report = reg
            .run(scenario, &req)
            .unwrap_or_else(|e| panic!("{scenario} masquerade: {e}"));
        assert_eq!(
            &report.to_json(),
            expected,
            "{scenario}: X19 masquerade report drifted"
        );
    }
}

const X19_BAR_GOSSIP_JSON: &str = r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.7912162162162162,"targeted_service":0,"usable":false,"attacker_coverage":0,"attacker_cut_rate":1,"cut_precision":0.38235294117647056,"cut_recall":1,"evicted_fraction":0,"evictions":0,"false_cut_rate":0.5675675675675675,"faults_crashes":0,"faults_delayed":0,"faults_dropped":242,"faults_duplicated":0,"faults_partition_blocked":0,"isolated_delivery":0.7912162162162162,"junk_fraction":0.058649093904448106,"mean_attacker_upload":35.30769230769231,"mean_honest_upload":69.62162162162163,"min_node_delivery":0.075,"nodes_ever_unusable":0.5675675675675675,"satiated_delivery":0,"unusable_node_rounds":0.2756756756756757}"#;
const X19_SCRIP_GOSSIP_JSON: &str = r#"{"scenario":"scrip-gossip","rounds":25,"overall_delivery":0.7682432432432432,"targeted_service":0,"usable":false,"attacker_cut_rate":0.8461538461538461,"broke_rate":0,"cut_precision":0.36666666666666664,"cut_recall":0.8461538461538461,"false_cut_rate":0.5135135135135135,"faults_crashes":0,"faults_delayed":0,"faults_dropped":130,"faults_duplicated":0,"faults_partition_blocked":0,"isolated_delivery":0.7682432432432432,"refusal_rate":0,"satiated_delivery":0,"total_money":2000}"#;

#[test]
fn faulted_sweeps_are_bit_identical_across_worker_counts() {
    // The CI determinism matrix pins this via LOTUS_SWEEP_THREADS; here
    // the worker count is pinned explicitly: an X19-shaped fault_loss
    // sweep folded by 1 worker and by 8 workers yields byte-identical
    // figures.
    let measure = |x: f64, seed: u64| {
        let reg = ScenarioRegistry::standard();
        let mut p = Params::new();
        for (k, v) in X19_PARAMS {
            p.set(*k, *v);
        }
        p.set("fraction", "0.2");
        let req = RunRequest::new(x, seed, "masquerade", "fault_loss", &p);
        reg.run("bar-gossip", &req)
            .unwrap()
            .metric("false_cut_rate")
            .expect("cutoff defense reports cut stats")
    };
    let xs = [0.0, 0.1, 0.3];
    let run = |threads: usize| {
        let cfg = SweepConfig {
            seeds: vec![1, 2, 3, 4, 5, 6],
            threads: 1,
        }
        .threads(threads);
        let series = sweep_fraction("x19", &xs, &cfg, measure);
        format!("{:?}", series.points)
    };
    assert_eq!(
        run(1),
        run(8),
        "faulted sweep must fold bit-identically for any worker count"
    );
}
