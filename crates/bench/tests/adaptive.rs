//! Determinism and equivalence tests for the adaptive bandit attackers.
//!
//! The contract mirrors the schedule layer's (see `schedule_golden.rs`):
//! with `--adaptive` unset nothing changes (the golden fixtures pin
//! that), a degenerate `fixed-<arm>` policy reproduces the equivalent
//! static schedule **exactly**, and every learning policy replays
//! bit-identically — same seed, same policy, same arm trace, same
//! report.

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_bench::runner::run_args;
use lotus_core::adaptive::TraceEntry;
use lotus_core::scenario::ScenarioReport;

/// `(scenario, attack, base params)` for one small, fast case per
/// scheduled substrate (the same shapes the schedule goldens use).
type Case = (
    &'static str,
    &'static str,
    &'static [(&'static str, &'static str)],
);

const CASES: &[Case] = &[
    (
        "bar-gossip",
        "trade",
        &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
    ),
    (
        "scrip",
        "lotus-eater",
        &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
    ),
    (
        "bittorrent",
        "satiate",
        &[("leechers", "15"), ("pieces", "16")],
    ),
    (
        "token",
        "random-fraction",
        &[("nodes", "24"), ("rounds", "50")],
    ),
    (
        "scrip-gossip",
        "trade",
        &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
    ),
];

fn run_case(
    scenario: &str,
    attack: &str,
    seed: u64,
    base: &[(&str, &str)],
    extra: &[(&str, &str)],
) -> ScenarioReport {
    let reg = ScenarioRegistry::standard();
    let mut p = Params::new();
    for (k, v) in base.iter().chain(extra) {
        p.set(*k, *v);
    }
    let req = RunRequest::new(0.3, seed, attack, "fraction", &p);
    reg.run(scenario, &req)
        .unwrap_or_else(|e| panic!("{scenario} {attack} seed {seed}: {e}"))
}

/// Run through the build path and capture the arm trace alongside the
/// summary.
fn run_with_trace(
    scenario: &str,
    attack: &str,
    seed: u64,
    base: &[(&str, &str)],
    extra: &[(&str, &str)],
) -> (ScenarioReport, Option<Vec<TraceEntry>>) {
    let reg = ScenarioRegistry::standard();
    let mut p = Params::new();
    for (k, v) in base.iter().chain(extra) {
        p.set(*k, *v);
    }
    let req = RunRequest::new(0.3, seed, attack, "fraction", &p);
    let mut built = reg
        .build(scenario, &req)
        .unwrap_or_else(|e| panic!("{scenario} {attack} seed {seed}: {e}"));
    let report = built.finish();
    (report, built.arm_trace_dyn().map(<[TraceEntry]>::to_vec))
}

/// The ISSUE-4 acceptance criterion: with exploration disabled and the
/// best arm pinned, the adaptive path must reproduce the equivalent
/// static schedule byte-for-byte — `fixed-defect` is `always`, on every
/// scheduled substrate.
#[test]
fn fixed_defect_policy_reproduces_static_always_exactly() {
    for (scenario, attack, base) in CASES {
        let always = run_case(scenario, attack, 1, base, &[("schedule", "always")]);
        let fixed = run_case(
            scenario,
            attack,
            1,
            base,
            &[("adaptive", "fixed-defect,10,0")],
        );
        assert_eq!(
            fixed.to_json(),
            always.to_json(),
            "{scenario}: fixed-defect must be the static always-on attack"
        );
    }
}

/// The dormant pin is the other degenerate end: never attacking must
/// match a trigger round that never arrives.
#[test]
fn fixed_dormant_policy_matches_an_attack_that_never_fires() {
    for (scenario, attack, base) in CASES {
        let never = run_case(scenario, attack, 1, base, &[("schedule", "at:1000000")]);
        let dormant = run_case(
            scenario,
            attack,
            1,
            base,
            &[("adaptive", "fixed-dormant,10,0")],
        );
        assert_eq!(
            dormant.to_json(),
            never.to_json(),
            "{scenario}: fixed-dormant must equal the never-firing schedule"
        );
    }
}

/// Same seed + same policy ⇒ identical arm trace and identical report,
/// for both learning policies, on every scheduled substrate.
#[test]
fn adaptive_runs_replay_bit_identically() {
    for policy in ["epsilon-greedy,6,0.3", "ucb,6,0.8"] {
        for (scenario, attack, base) in CASES {
            let extra = [("adaptive", policy)];
            let (r1, t1) = run_with_trace(scenario, attack, 1, base, &extra);
            let (r2, t2) = run_with_trace(scenario, attack, 1, base, &extra);
            assert_eq!(
                r1, r2,
                "{scenario} with {policy} must replay bit-identically"
            );
            let t1 = t1.unwrap_or_else(|| panic!("{scenario}: adaptive run must trace arms"));
            let t2 = t2.expect("second run traces too");
            assert_eq!(t1, t2, "{scenario} with {policy}: arm traces must replay");
            assert!(!t1.is_empty(), "{scenario}: trace has at least one phase");
            // Phases are consecutive and the first four are the
            // canonical initialization sweep (when the run is long
            // enough to play them).
            for (i, e) in t1.iter().enumerate() {
                assert_eq!(e.phase, i as u64, "{scenario}: phases are consecutive");
            }
            for (i, arm) in lotus_core::adaptive::AttackMode::ALL.iter().enumerate() {
                if let Some(e) = t1.get(i) {
                    assert_eq!(
                        e.arm, *arm,
                        "{scenario} with {policy}: init sweep is canonical"
                    );
                }
            }
        }
    }
}

/// Different seeds must explore differently somewhere (the policy rng is
/// a seed-derived fork, not a constant stream).
#[test]
fn exploration_randomness_is_seed_dependent() {
    let (_, base) = ("bar-gossip", CASES[0].2);
    let traces: Vec<Vec<TraceEntry>> = (1..=8)
        .map(|seed| {
            run_with_trace(
                "bar-gossip",
                "trade",
                seed,
                base,
                &[("adaptive", "epsilon-greedy,3,0.8"), ("rounds", "30")],
            )
            .1
            .expect("traced")
        })
        .collect();
    let distinct: std::collections::BTreeSet<String> = traces
        .iter()
        .map(|t| t.iter().map(|e| e.arm.name()).collect::<Vec<_>>().join(","))
        .collect();
    assert!(
        distinct.len() > 1,
        "8 seeds with epsilon=0.8 must not all explore identically: {distinct:?}"
    );
}

/// The adaptive convergence metrics appear exactly when a learning
/// policy drove the run, and the per-arm shares partition the phases.
#[test]
fn adaptive_metrics_appear_only_for_learning_policies() {
    let (scenario, attack, base) = ("bar-gossip", "trade", CASES[0].2);
    let plain = run_case(scenario, attack, 1, base, &[]);
    assert_eq!(plain.metric("adaptive_phases"), None);
    let fixed = run_case(
        scenario,
        attack,
        1,
        base,
        &[("adaptive", "fixed-defect,5,0")],
    );
    assert_eq!(
        fixed.metric("adaptive_phases"),
        None,
        "degenerate policies attach nothing (static equivalence)"
    );
    let learned = run_case(
        scenario,
        attack,
        1,
        base,
        &[("adaptive", "epsilon-greedy,5,0.2")],
    );
    let phases = learned.metric("adaptive_phases").expect("phase count");
    assert!(phases >= 4.0, "long enough to sweep the arms: {phases}");
    let shares: f64 = [
        "adaptive_dormant_share",
        "adaptive_cooperate_share",
        "adaptive_defect_share",
        "adaptive_rotate_share",
    ]
    .iter()
    .map(|k| learned.metric(k).expect("share metric"))
    .sum();
    assert!((shares - 1.0).abs() < 1e-12, "arm shares partition phases");
    let active = learned.metric("adaptive_active_share").expect("active");
    assert!((0.0..=1.0).contains(&active));
    let final_arm = learned.metric("adaptive_final_arm").expect("final arm");
    assert!((0.0..=3.0).contains(&final_arm));
}

/// A learning bandit's timing differs from the always-on attack (the
/// axis is real): its first phases are spent dormant/cooperating.
#[test]
fn learning_policies_have_observable_effect() {
    let (scenario, attack, base) = ("bar-gossip", "trade", CASES[0].2);
    let always = run_case(scenario, attack, 1, base, &[]);
    let adaptive = run_case(
        scenario,
        attack,
        1,
        base,
        &[("adaptive", "epsilon-greedy,5,0.2")],
    );
    assert!(
        adaptive.overall_delivery > always.overall_delivery,
        "the bandit's dormant init phases must leave delivery healthier \
         ({} vs {})",
        adaptive.overall_delivery,
        always.overall_delivery
    );
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_string()).collect()
}

const RUNNER_BASE: &[&str] = &[
    "--scenario",
    "bar-gossip",
    "--seeds",
    "1",
    "--param",
    "nodes=50",
    "--param",
    "rounds=10",
    "--param",
    "warmup_rounds=5",
    "--param",
    "updates_per_round=4",
    "--param",
    "copies_seeded=5",
];

/// `--sweep adaptive_epsilon` / `adaptive_phase` drive the bandit knobs
/// through the ordinary sweep grammar on every scheduled substrate.
#[test]
fn adaptive_sweep_axes_run_end_to_end() {
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--adaptive",
        "epsilon-greedy,5,0.1",
        "--sweep",
        "adaptive_epsilon",
        "--x-values",
        "0,0.5",
        "--metric",
        "adaptive_defect_share",
        "--format",
        "json",
    ]));
    let out = run_args(&a).expect("epsilon sweep runs");
    assert!(
        out.contains("\"metric\":\"adaptive_defect_share\""),
        "{out}"
    );
    assert!(out.contains("\"points\":[[0,"), "{out}");

    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--sweep",
        "adaptive_phase",
        "--x-values",
        "5,10",
        "--format",
        "json",
    ]));
    let out = run_args(&a).expect("phase sweep runs (implies epsilon-greedy)");
    assert!(out.contains("\"points\":[[5,"), "{out}");
}

/// `--arm-trace` appends the representative traces in both formats.
#[test]
fn arm_trace_output_appears_in_both_formats() {
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--adaptive",
        "ucb,5,0.5",
        "--x-values",
        "0.3",
        "--arm-trace",
        "--format",
        "json",
    ]));
    let out = run_args(&a).expect("arm-trace json runs");
    assert!(out.contains("\"arm_traces\":["), "{out}");
    assert!(out.contains("\"arm\":\"dormant\""), "{out}");
    assert!(out.contains("\"mean_damage\":"), "{out}");

    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--adaptive",
        "ucb,5,0.5",
        "--x-values",
        "0.3",
        "--arm-trace",
    ]));
    let out = run_args(&a).expect("arm-trace table runs");
    assert!(out.contains("Arm trace — trade (x=0.3, seed 1):"), "{out}");

    // Without an adaptive curve the flag is a clean no-op.
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--x-values",
        "0.3",
        "--arm-trace",
        "--format",
        "json",
    ]));
    let out = run_args(&a).expect("non-adaptive arm-trace runs");
    assert!(!out.contains("arm_traces"), "{out}");
}

/// Malformed or conflicting adaptive requests fail with clean messages.
#[test]
fn invalid_adaptive_requests_error_cleanly() {
    // Bad specs die at flag-parse time.
    for bad in [
        "bogus,10,0.1",
        "epsilon-greedy,0,0.1",
        "epsilon-greedy,10,7",
        "ucb,10,-2",
        "fixed-sideways,10,0",
    ] {
        let mut a = args(RUNNER_BASE);
        a.extend(args(&["--attack", "trade", "--adaptive", bad]));
        assert!(run_args(&a).is_err(), "{bad:?} must be rejected");
    }
    // An adaptive attacker replaces the open-loop schedule...
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--x-values",
        "0.3",
        "--adaptive",
        "ucb,5,0.5",
        "--schedule",
        "periodic:6:3",
    ]));
    let err = run_args(&a).expect_err("schedule+adaptive must conflict");
    assert!(err.contains("adaptive"), "{err}");
    // ...and owns the rotation clock.
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--x-values",
        "0.3",
        "--adaptive",
        "ucb,5,0.5",
        "--param",
        "rotation_period=6",
    ]));
    let err = run_args(&a).expect_err("rotation_period+adaptive must conflict");
    assert!(err.contains("rotation"), "{err}");
    // Keeping --schedule at its default is explicitly allowed.
    let mut a = args(RUNNER_BASE);
    a.extend(args(&[
        "--attack",
        "trade",
        "--x-values",
        "0.3",
        "--adaptive",
        "fixed-defect,5,0",
        "--schedule",
        "always",
    ]));
    assert!(
        run_args(&a).is_ok(),
        "schedule=always composes with adaptive"
    );
}
