//! Dynamic twin of `lotus-lint`'s static hot-loop rule: with a counting
//! global allocator installed, every registered scenario must execute its
//! steady-state step with **zero heap allocations** — under an active
//! attack, so attacker target selection, scheduling and churn timing are
//! all on the measured path.
//!
//! Build and warm-up may allocate freely (that is where scratch buffers
//! and series reservations happen); the measured steps may not. A canary
//! test proves the allocator shim is actually installed — without it the
//! thread-local counters would sit at zero and every assertion here would
//! pass vacuously.

lotus_core::install_counting_allocator!();

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_core::alloc_guard::measure;
use lotus_core::scenario::StepOutcome;

/// Steps to run before measuring: enough for every substrate to reach
/// steady state (lazy series growth done, all scratch at final size).
const WARMUP_STEPS: u32 = 30;
/// Steps measured one by one, each asserted allocation-free.
const MEASURED_STEPS: u32 = 10;

/// Build `scenario` under `attack` from its registry `bench_params`
/// (plus `overrides`, for scenarios whose bench horizon is shorter than
/// the warm-up), warm it up, then assert zero allocations per step.
fn assert_steady_steps_alloc_free(scenario: &str, attack: &str, overrides: &[(&str, &str)]) {
    let reg = ScenarioRegistry::standard();
    let spec = reg.get(scenario).expect("scenario is registered");
    let mut params = Params::new();
    for (k, v) in spec.bench_params {
        params.set(*k, *v);
    }
    for (k, v) in overrides {
        params.set(*k, *v);
    }
    let req = RunRequest::new(0.3, 1, attack, "fraction", &params);
    let mut sim = reg
        .build(scenario, &req)
        .unwrap_or_else(|e| panic!("build {scenario}/{attack}: {e}"));

    for s in 0..WARMUP_STEPS {
        assert_eq!(
            sim.step_dyn(),
            StepOutcome::Continue,
            "{scenario} finished during warm-up step {s} — lengthen its horizon"
        );
    }
    for s in 0..MEASURED_STEPS {
        let mut outcome = StepOutcome::Done;
        let stats = measure(|| outcome = sim.step_dyn());
        assert_eq!(
            outcome,
            StepOutcome::Continue,
            "{scenario} finished during measured step {s} — lengthen its horizon"
        );
        assert!(
            stats.is_zero(),
            "{scenario}/{attack} steady-state step {s} allocated: \
             {} allocation(s), {} bytes",
            stats.allocations,
            stats.bytes
        );
    }
}

/// If this fails, the `install_counting_allocator!` expansion above is
/// not the active global allocator and every other test here is vacuous.
#[test]
fn canary_deliberate_allocation_trips_the_guard() {
    let stats = measure(|| {
        std::hint::black_box(Vec::<u8>::with_capacity(64));
    });
    assert!(
        stats.allocations > 0,
        "counting allocator not installed — zero-alloc assertions are vacuous"
    );
    assert!(stats.bytes >= 64, "{stats:?}");
}

#[test]
fn bar_gossip_steady_step_is_alloc_free() {
    // Bench horizon is 12 rounds; stretch it past warm-up + measurement.
    assert_steady_steps_alloc_free("bar-gossip", "trade", &[("rounds", "60")]);
}

#[test]
fn bar_gossip_digest_steady_step_is_alloc_free() {
    // The two-leg digest round on its worst path: a poisoning attacker,
    // the digest audit arming the silence cut-off, and link faults on
    // the transfer leg. Bloom rebuilds, want-list assembly and the
    // delivery leg must all run on the construction-time scratch (the
    // want/deliver buffers are reserved to the live-window ceiling).
    assert_steady_steps_alloc_free(
        "bar-gossip-digest",
        "poison",
        &[
            ("rounds", "60"),
            ("audit", "0.05"),
            ("cutoff", "3"),
            ("faults", "loss:0.05"),
        ],
    );
}

#[test]
fn scrip_gossip_steady_step_is_alloc_free() {
    assert_steady_steps_alloc_free("scrip-gossip", "trade", &[("rounds", "60")]);
}

#[test]
fn scrip_steady_step_is_alloc_free() {
    assert_steady_steps_alloc_free("scrip", "lotus-eater", &[]);
}

#[test]
fn reputation_steady_step_is_alloc_free() {
    assert_steady_steps_alloc_free("reputation", "inflate", &[]);
}

#[test]
fn token_steady_step_is_alloc_free() {
    assert_steady_steps_alloc_free("token", "random-fraction", &[]);
}

#[test]
fn faulted_steady_steps_are_alloc_free() {
    // The fault layer's own acceptance bar: with every fault component
    // active (loss, dup, delay, crash/recover, a partition epoch that
    // spans the measured window) plus the masquerade attacker and the
    // cutoff defense, the steady-state step must stay allocation-free —
    // fate draws, crash scans and partition checks all run on fixed
    // scratch.
    let faults = &[
        ("rounds", "60"),
        (
            "faults",
            "loss:0.1/dup:0.05/delay:0.05/crash:0.02:0.2/partition:10:40:0.4",
        ),
        ("cutoff", "3"),
    ];
    assert_steady_steps_alloc_free("bar-gossip", "masquerade", faults);
    assert_steady_steps_alloc_free("scrip-gossip", "masquerade", faults);
    assert_steady_steps_alloc_free("scrip", "lotus-eater", &faults[1..2]);
    assert_steady_steps_alloc_free("token", "random-fraction", &faults[1..2]);
    assert_steady_steps_alloc_free("bittorrent", "satiate", &[("pieces", "128"), faults[1]]);
}

#[test]
fn sharded_multi_shard_steady_step_is_alloc_free() {
    // Above the single-shard cutoff (1024 indices) the round loops run
    // the sharded O(active) paths: shard-ordered round order, batched
    // partner sampling and shard-range counter clears must all stay on
    // preallocated scratch. The burst pool is held back beyond the
    // horizon, so the measured steps walk a sparse multi-shard map.
    assert_steady_steps_alloc_free(
        "bar-gossip",
        "trade",
        &[
            ("nodes", "2500"),
            ("rounds", "60"),
            ("arrival", "burst:100000:2000"),
        ],
    );
}

#[test]
fn flash_crowd_landing_leaves_steady_steps_alloc_free() {
    // The crowd lands during warm-up (round 10 < the 30 warm-up steps):
    // the engage step may allocate then, but every measured step
    // afterwards — now at full multi-shard occupancy — must be
    // allocation-free.
    assert_steady_steps_alloc_free(
        "bar-gossip",
        "trade",
        &[
            ("nodes", "2500"),
            ("rounds", "60"),
            ("arrival", "burst:10:2000"),
        ],
    );
}

#[test]
fn plan_phase_at_pool_scale_is_alloc_free() {
    // Past the plan pool's engagement floor (16384 active) the batched
    // exchange plan runs the chunked multi-shard path. At run_threads=1
    // it stays on the calling thread, so the whole plan/apply round —
    // chunk tables, plan entries, shuffle, apply — must live on reused
    // scratch. (run_threads > 1 spawns scoped threads, which allocate by
    // nature; that the *figures* are identical across thread counts is
    // pinned by `plan_props` in bar-gossip.)
    assert_steady_steps_alloc_free(
        "bar-gossip",
        "trade",
        &[("nodes", "20000"), ("rounds", "60"), ("run_threads", "1")],
    );
}

#[test]
fn scrip_multi_shard_steady_step_is_alloc_free() {
    // The scrip volunteer scan walks active shards above the cutoff.
    assert_steady_steps_alloc_free("scrip", "lotus-eater", &[("agents", "2500")]);
}

#[test]
fn bittorrent_steady_step_is_alloc_free() {
    // More pieces than the bench default so no leecher completes inside
    // the measured window.
    assert_steady_steps_alloc_free("bittorrent", "satiate", &[("pieces", "128")]);
}
