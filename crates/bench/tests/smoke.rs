//! Smoke tests: the figure binaries run end-to-end in `--quick` mode and
//! print the blocks the harness promises (CSV, chart, conclusions).
//!
//! Only the light binaries are exercised here — the full sweeps live in
//! `results/` and EXPERIMENTS.md.

use std::process::Command;

fn run_quick(bin: &str) -> String {
    let out = Command::new(bin)
        .arg("--quick")
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("binaries print UTF-8")
}

#[test]
fn table1_prints_the_paper_parameters() {
    let out = run_quick(env!("CARGO_BIN_EXE_table1"));
    for needle in [
        "TABLE 1",
        "Number of Nodes       | 250",
        "Updates per Round     | 10",
        "Update Lifetime (rds) | 10",
        "Copies Seeded         | 12",
        "Opt. Push Size (upd)  | 2",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
}

#[test]
fn ext_rare_prints_series_and_conclusion() {
    let out = run_quick(env!("CARGO_BIN_EXE_ext_rare"));
    assert!(out.contains("series,x,y"), "CSV block missing");
    assert!(out.contains("no attack"), "clean series missing");
    assert!(
        out.contains("rare-holder satiation attack"),
        "attack series missing"
    );
    assert!(out.contains("spreading"), "conclusion missing");
}

#[test]
fn ext_coding_shows_the_collapse_at_zero_redundancy() {
    let out = run_quick(env!("CARGO_BIN_EXE_ext_coding"));
    assert!(
        out.contains("rare-token attack,0.0000,0.0000"),
        "collect-all must be fully denied:\n{out}"
    );
    assert!(out.contains("Avalanche"), "conclusion missing");
}

fn run_runner(args: &[&str]) -> String {
    let bin = env!("CARGO_BIN_EXE_lotus-bench");
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "lotus-bench {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("runner prints UTF-8")
}

#[test]
fn runner_lists_every_registered_scenario() {
    let out = run_runner(&["--list"]);
    for name in [
        "bar-gossip",
        "bar-gossip-digest",
        "scrip",
        "bittorrent",
        "token",
        "scrip-gossip",
        "reputation",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn runner_list_documents_attacks_and_schedule_churn_axes() {
    let out = run_runner(&["--list"]);
    // Per-scenario attacks are enumerated with their doc lines, not just
    // names, so presets are discoverable from the CLI alone.
    for needle in [
        "trade — trade lotus-eater: in-protocol give-everything",
        "satiate — attacker peers upload generously, but only to their targets",
        "rotating — rotate the satiated fraction every `period` rounds",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
    // The schedule/churn axes appear for every substrate config that
    // takes them (bar-gossip three times: the paper scale, the digest
    // substrate and the 1M scale).
    assert_eq!(
        out.matches("schedule: --schedule always|at:<r>").count(),
        7,
        "seven scenario configs advertise the schedule axis:\n{out}"
    );
    assert_eq!(
        out.matches("churn:   --churn <leave>[:<rejoin>]").count(),
        7,
        "seven scenario configs advertise the churn axis:\n{out}"
    );
    // The runner help documents the flags themselves.
    let help = run_runner(&["--help"]);
    assert!(help.contains("--schedule SPEC"), "{help}");
    assert!(help.contains("--churn L[:R]"), "{help}");
}

#[test]
fn runner_schedule_and_churn_flags_run_end_to_end() {
    let base = [
        "--scenario",
        "bar-gossip",
        "--attack",
        "trade",
        "--format",
        "json",
        "--quick",
        "--seeds",
        "1",
        "--x-values",
        "0.3",
        "--param",
        "nodes=50",
        "--param",
        "rounds=8",
        "--param",
        "warmup_rounds=4",
        "--param",
        "updates_per_round=4",
        "--param",
        "copies_seeded=5",
    ];
    let mut scheduled = base.to_vec();
    scheduled.extend(["--schedule", "periodic:6:3", "--churn", "0.05:0.5"]);
    let out = run_runner(&scheduled);
    assert!(out.contains("\"points\":[[0.3,"), "no points in:\n{out}");

    // Malformed specs fail at parse time with status 2.
    for bad in [
        ["--schedule", "sometimes"],
        ["--schedule", "periodic:0:0"],
        ["--churn", "1.5"],
    ] {
        let mut args = base.to_vec();
        args.extend(bad);
        let status = Command::new(env!("CARGO_BIN_EXE_lotus-bench"))
            .args(&args)
            .output()
            .expect("runner launches")
            .status;
        assert_eq!(status.code(), Some(2), "{bad:?} should be rejected");
    }
}

#[test]
fn oscillating_and_churn_presets_run_in_quick_mode() {
    let osc = run_quick(env!("CARGO_BIN_EXE_ext_oscillating"));
    assert!(osc.contains("Oscillating lotus-eater"), "{osc}");
    assert!(osc.contains("oscillating trade attack"), "{osc}");
    let churn = run_quick(env!("CARGO_BIN_EXE_ext_churn"));
    assert!(churn.contains("Churn-gossip"), "{churn}");
    assert!(churn.contains("trade attack at 22%"), "{churn}");
}

#[test]
fn adaptive_preset_runs_in_quick_mode_and_prints_arm_traces() {
    // X17 at full scale is a long sweep; shrink it through the ordinary
    // pass-through arguments (every preset accepts them).
    let bin = env!("CARGO_BIN_EXE_ext_adaptive");
    let out = Command::new(bin)
        .args([
            "--quick",
            "--seeds",
            "1",
            "--x-values",
            "0,0.5",
            "--param",
            "nodes=60",
            "--param",
            "rounds=60",
        ])
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "ext_adaptive exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let out = String::from_utf8(out.stdout).expect("UTF-8");
    assert!(out.contains("Adaptive bandit attackers"), "{out}");
    assert!(out.contains("adaptive epsilon-greedy"), "{out}");
    assert!(out.contains("Arm trace — adaptive UCB1"), "{out}");
    assert!(out.contains("dormant("), "init sweep visible:\n{out}");
}

#[test]
fn runner_emits_json_for_the_acceptance_invocation() {
    // The ISSUE-1 acceptance CLI (scaled down so CI stays fast).
    let out = run_runner(&[
        "--scenario",
        "bar-gossip",
        "--attack",
        "trade",
        "--format",
        "json",
        "--quick",
        "--seeds",
        "1",
        "--x-values",
        "0,0.3",
        "--param",
        "nodes=50",
        "--param",
        "rounds=8",
        "--param",
        "warmup_rounds=4",
        "--param",
        "updates_per_round=4",
        "--param",
        "copies_seeded=5",
    ]);
    assert!(
        out.starts_with('{') && out.trim_end().ends_with('}'),
        "not JSON:\n{out}"
    );
    assert!(out.contains("\"scenario\":\"bar-gossip\""));
    assert!(out.contains("\"metric\":\"isolated_delivery\""));
    assert!(out.contains("\"points\":[[0,"));
}

/// Extract the number following `"<key>":` at the first occurrence after
/// `from` in a JSON string (enough structure-checking for a smoke test
/// without a JSON dependency).
fn json_u64_after(json: &str, from: usize, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json[from..]
        .find(&needle)
        .unwrap_or_else(|| panic!("missing {needle} in:\n{json}"))
        + from
        + needle.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("bad number for {key}: {e}"))
}

#[test]
fn bench_mode_emits_wellformed_json_with_nonzero_timings() {
    // The ISSUE-2 acceptance invocation (tiny iteration counts for CI).
    let out = run_runner(&[
        "--bench",
        "--scenario",
        "bar-gossip",
        "--format",
        "json",
        "--bench-iters",
        "2",
        "--bench-warmup",
        "1",
        "--param",
        "rounds=6",
        "--param",
        "warmup_rounds=3",
        "--param",
        "update_lifetime=4",
        "--param",
        "nodes=40",
    ]);
    let json = out.trim_end();
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "not JSON:\n{json}"
    );
    // Stable schema keys.
    for key in [
        "\"bench\":true",
        "\"unix_time\":",
        "\"warmup\":1",
        "\"iters\":2",
        "\"seeds\":1",
        "\"scenarios\":[",
        "\"scenario\":\"bar-gossip\"",
        "\"attack\":\"none\"",
        "\"steps_per_run\":",
        "\"run_ns\":{",
        "\"step_ns\":{",
        "\"min\":",
        "\"median\":",
        "\"p90\":",
        "\"mean\":",
        "\"samples\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // Nonzero timings and sane sample counts.
    let steps = json_u64_after(json, 0, "steps_per_run");
    assert_eq!(steps, 13, "3 warmup + 6 measured + 4 drain rounds");
    let run_at = json.find("\"run_ns\"").expect("run_ns present");
    assert!(
        json_u64_after(json, run_at, "min") > 0,
        "a run takes measurable time:\n{json}"
    );
    assert_eq!(json_u64_after(json, run_at, "samples"), 2);
    let step_at = json.find("\"step_ns\"").expect("step_ns present");
    assert!(json_u64_after(json, step_at, "min") > 0);
    assert_eq!(json_u64_after(json, step_at, "samples"), 26, "2 runs x 13");
}

#[test]
fn bench_mode_covers_every_scenario_by_default() {
    let out = run_runner(&[
        "--bench",
        "--quick",
        "--bench-iters",
        "1",
        "--bench-warmup",
        "0",
        "--format",
        "json",
    ]);
    for name in [
        "\"scenario\":\"bar-gossip\"",
        "\"scenario\":\"bar-gossip-digest\"",
        "\"scenario\":\"scrip\"",
        "\"scenario\":\"bittorrent\"",
        "\"scenario\":\"token\"",
        "\"scenario\":\"scrip-gossip\"",
        "\"scenario\":\"reputation\"",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn runner_rejects_unknown_scenarios_with_status_2() {
    let bin = env!("CARGO_BIN_EXE_lotus-bench");
    let out = Command::new(bin)
        .args([
            "--scenario",
            "no-such-substrate",
            "--attack",
            "none",
            "--quick",
        ])
        .output()
        .expect("launches");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}
