//! Golden equivalence + determinism tests for the attack-schedule and
//! churn layer.
//!
//! The fixtures below were generated from the registry *before* the
//! schedule/population refactor (one `ScenarioReport::to_json` string per
//! `(scenario, attack, seed)` case). Default schedules (`always`, no
//! churn) must keep reproducing them bit-identically: the timing layer is
//! required to be invisible until asked for.

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};

struct Golden {
    scenario: &'static str,
    attack: &'static str,
    seed: u64,
    params: &'static [(&'static str, &'static str)],
    json: &'static str,
}

const GOLDENS: &[Golden] = &[
    Golden {
        scenario: "bar-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9821428571428571,"targeted_service":1,"usable":true,"attacker_coverage":0.75,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.9583333333333334,"junk_fraction":0.03956378392087243,"mean_attacker_upload":116.06666666666666,"mean_honest_upload":62.91428571428571,"min_node_delivery":0.6,"nodes_ever_unusable":0.14285714285714285,"satiated_delivery":1,"unusable_node_rounds":0.04}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "trade",
        seed: 7,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9828571428571429,"targeted_service":1,"usable":true,"attacker_coverage":0.825,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.96,"junk_fraction":0.040492957746478875,"mean_attacker_upload":115.6,"mean_honest_upload":64.05714285714286,"min_node_delivery":0.8,"nodes_ever_unusable":0.17142857142857143,"satiated_delivery":1,"unusable_node_rounds":0.03142857142857143}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "ideal",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9514285714285714,"targeted_service":1,"usable":false,"attacker_coverage":0.75,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.8866666666666667,"junk_fraction":0.03965702036441586,"mean_attacker_upload":97.13333333333334,"mean_honest_upload":38.34285714285714,"min_node_delivery":0.675,"nodes_ever_unusable":0.2857142857142857,"satiated_delivery":1,"unusable_node_rounds":0.09428571428571429}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "ideal",
        seed: 7,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9485714285714286,"targeted_service":1,"usable":false,"attacker_coverage":0.825,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.88,"junk_fraction":0.04184397163120567,"mean_attacker_upload":99.33333333333333,"mean_honest_upload":38,"min_node_delivery":0.525,"nodes_ever_unusable":0.3142857142857143,"satiated_delivery":1,"unusable_node_rounds":0.10571428571428572}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "crash",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rotation_period", "6"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9957142857142857,"targeted_service":0,"usable":true,"attacker_coverage":0,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.9957142857142857,"junk_fraction":0.06460296096904442,"mean_attacker_upload":0,"mean_honest_upload":84.91428571428571,"min_node_delivery":0.9,"nodes_ever_unusable":0.05714285714285714,"satiated_delivery":0,"unusable_node_rounds":0.011428571428571429}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "crash",
        seed: 7,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rotation_period", "6"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.995,"targeted_service":0,"usable":true,"attacker_coverage":0,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.995,"junk_fraction":0.07064471879286695,"mean_attacker_upload":0,"mean_honest_upload":83.31428571428572,"min_node_delivery":0.825,"nodes_ever_unusable":0.02857142857142857,"satiated_delivery":0,"unusable_node_rounds":0.008571428571428572}"#,
    },
    Golden {
        scenario: "scrip",
        attack: "lotus-eater",
        seed: 1,
        params: &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
        json: r#"{"scenario":"scrip","rounds":700,"overall_delivery":0.315,"targeted_service":0.97375,"usable":false,"attacker_money":33,"fail_broke_rate":0.685,"fail_no_volunteer_rate":0,"free_rate":0,"gini":0.7058510638297872,"mean_satiated_fraction":0.2921250000000023,"mean_threshold":4,"paid_rate":0.315,"service_rate":0.315,"special_service_rate":1,"target_satiation":0.97375,"total_money":80}"#,
    },
    Golden {
        scenario: "scrip",
        attack: "lotus-eater",
        seed: 7,
        params: &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
        json: r#"{"scenario":"scrip","rounds":700,"overall_delivery":0.27,"targeted_service":0.9775,"usable":false,"attacker_money":32,"fail_broke_rate":0.73,"fail_no_volunteer_rate":0,"free_rate":0,"gini":0.7,"mean_satiated_fraction":0.2932500000000021,"mean_threshold":4,"paid_rate":0.27,"service_rate":0.27,"special_service_rate":1,"target_satiation":0.9775,"total_money":80}"#,
    },
    Golden {
        scenario: "bittorrent",
        attack: "satiate",
        seed: 1,
        params: &[("leechers", "15"), ("pieces", "16")],
        json: r#"{"scenario":"bittorrent","rounds":10,"overall_delivery":1,"targeted_service":1,"usable":true,"attacker_upload":84,"duplicates":130,"honest_upload":286,"mean_completion":5,"mean_completion_nontargeted":5.9,"mean_completion_targeted":3.2,"p95_completion_nontargeted":8.549999999999999}"#,
    },
    Golden {
        scenario: "bittorrent",
        attack: "satiate",
        seed: 7,
        params: &[("leechers", "15"), ("pieces", "16")],
        json: r#"{"scenario":"bittorrent","rounds":12,"overall_delivery":1,"targeted_service":1,"usable":true,"attacker_upload":92,"duplicates":136,"honest_upload":284,"mean_completion":5.4,"mean_completion_nontargeted":6.3,"mean_completion_targeted":3.6,"p95_completion_nontargeted":9.649999999999997}"#,
    },
    Golden {
        scenario: "token",
        attack: "rotating",
        seed: 1,
        params: &[("nodes", "24"), ("period", "7"), ("rounds", "50")],
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0,"targeted_service":1,"usable":false,"all_satiated_at":22,"attacked_nodes":24,"final_satiated_fraction":1,"mean_coverage":1,"min_coverage":1,"token0_reach":1,"untouched_mean_coverage":0,"untouched_satisfied":0}"#,
    },
    Golden {
        scenario: "token",
        attack: "rotating",
        seed: 7,
        params: &[("nodes", "24"), ("period", "7"), ("rounds", "50")],
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0,"targeted_service":1,"usable":false,"all_satiated_at":15,"attacked_nodes":24,"final_satiated_fraction":1,"mean_coverage":1,"min_coverage":1,"token0_reach":1,"untouched_mean_coverage":0,"untouched_satisfied":0}"#,
    },
    Golden {
        scenario: "token",
        attack: "random-fraction",
        seed: 1,
        params: &[("nodes", "24"), ("rounds", "50")],
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0.9166666666666664,"targeted_service":1,"usable":false,"all_satiated_at":-1,"attacked_nodes":7,"final_satiated_fraction":0.2916666666666667,"mean_coverage":0.9409722222222223,"min_coverage":0.9166666666666666,"token0_reach":1,"untouched_mean_coverage":0.9166666666666664,"untouched_satisfied":0}"#,
    },
    Golden {
        scenario: "token",
        attack: "random-fraction",
        seed: 7,
        params: &[("nodes", "24"), ("rounds", "50")],
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0.9705882352941176,"targeted_service":1,"usable":true,"all_satiated_at":-1,"attacked_nodes":7,"final_satiated_fraction":0.75,"mean_coverage":0.9791666666666666,"min_coverage":0.9166666666666666,"token0_reach":1,"untouched_mean_coverage":0.9705882352941176,"untouched_satisfied":0.6470588235294118}"#,
    },
    Golden {
        scenario: "scrip-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"scrip-gossip","rounds":25,"overall_delivery":1,"targeted_service":1,"usable":true,"broke_rate":0.14666666666666667,"isolated_delivery":1,"refusal_rate":0,"satiated_delivery":1,"total_money":2000}"#,
    },
    Golden {
        scenario: "scrip-gossip",
        attack: "trade",
        seed: 7,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        json: r#"{"scenario":"scrip-gossip","rounds":25,"overall_delivery":1,"targeted_service":1,"usable":true,"broke_rate":0.13671875,"isolated_delivery":1,"refusal_rate":0,"satiated_delivery":1,"total_money":2000}"#,
    },
    Golden {
        scenario: "reputation",
        attack: "inflate",
        seed: 1,
        params: &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
        json: r#"{"scenario":"reputation","rounds":700,"overall_delivery":0.625,"targeted_service":1,"usable":true,"attacker_cost_per_round":2.400000000000317,"denied_rate":0,"no_volunteer_rate":0.375,"service_rate":0.625,"target_satiation":1}"#,
    },
    Golden {
        scenario: "reputation",
        attack: "inflate",
        seed: 7,
        params: &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
        json: r#"{"scenario":"reputation","rounds":700,"overall_delivery":0.6253333333333333,"targeted_service":1,"usable":true,"attacker_cost_per_round":2.400000000000317,"denied_rate":0,"no_volunteer_rate":0.37466666666666665,"service_rate":0.6253333333333333,"target_satiation":1}"#,
    },
];

fn run_case(g: &Golden, extra: &[(&str, &str)]) -> lotus_core::scenario::ScenarioReport {
    let reg = ScenarioRegistry::standard();
    let mut p = Params::new();
    for (k, v) in g.params {
        p.set(*k, *v);
    }
    for (k, v) in extra {
        p.set(*k, *v);
    }
    let req = RunRequest::new(0.3, g.seed, g.attack, "fraction", &p);
    reg.run(g.scenario, &req)
        .unwrap_or_else(|e| panic!("{} {} seed {}: {e}", g.scenario, g.attack, g.seed))
}

#[test]
fn default_schedule_reproduces_pre_refactor_reports_bit_identically() {
    for g in GOLDENS {
        let report = run_case(g, &[]);
        assert_eq!(
            report.to_json(),
            g.json,
            "{} / {} / seed {} drifted from the pre-refactor golden output",
            g.scenario,
            g.attack,
            g.seed
        );
    }
}

#[test]
fn explicit_always_schedule_matches_the_default() {
    for g in GOLDENS {
        if g.scenario == "reputation" {
            continue; // reputation does not take the schedule/churn axes
        }
        let explicit = run_case(g, &[("schedule", "always")]);
        assert_eq!(
            explicit.to_json(),
            g.json,
            "{} / {}: schedule=always must be the identity",
            g.scenario,
            g.attack
        );
    }
}

/// Every scheduled/churned variant must be deterministic: building the
/// same `(scenario, attack, schedule, churn, seed)` twice yields
/// bit-identical reports.
#[test]
fn scheduled_and_churned_runs_replay_bit_identically() {
    let variants: &[&[(&str, &str)]] = &[
        &[("schedule", "periodic:6:3")],
        &[("schedule", "at:8")],
        &[("schedule", "window:4:12")],
        &[("schedule", "delivery-above:0.5")],
        &[("churn_leave", "0.05")],
        &[("churn_leave", "0.05"), ("churn_rejoin", "0.5")],
        &[("schedule", "periodic:6:3"), ("churn_leave", "0.03")],
    ];
    for g in GOLDENS.iter().filter(|g| g.seed == 1) {
        if g.scenario == "reputation" {
            continue; // reputation does not take the schedule/churn axes
        }
        for extra in variants {
            let a = run_case(g, extra);
            let b = run_case(g, extra);
            assert_eq!(
                a, b,
                "{} / {} with {:?} must replay bit-identically",
                g.scenario, g.attack, extra
            );
        }
    }
}

/// A dormant-then-strike schedule must change the outcome relative to the
/// always-on attack (the timing axis is real, not cosmetic), and churn
/// must change membership-visible metrics.
#[test]
fn schedule_and_churn_axes_have_observable_effect() {
    let g = GOLDENS
        .iter()
        .find(|g| g.scenario == "bar-gossip" && g.attack == "trade" && g.seed == 1)
        .unwrap();
    let always = run_case(g, &[]);
    let late = run_case(g, &[("schedule", "at:1000000")]);
    assert!(
        late.overall_delivery > always.overall_delivery,
        "an attack that never triggers ({}) must beat the always-on one ({})",
        late.overall_delivery,
        always.overall_delivery
    );
    let churned = run_case(g, &[("churn_leave", "0.2"), ("churn_rejoin", "0.1")]);
    assert!(
        churned.overall_delivery < always.overall_delivery,
        "heavy churn ({}) must hurt delivery vs the closed population ({})",
        churned.overall_delivery,
        always.overall_delivery
    );
}

/// A below-threshold trigger must wait for *real* degradation: the empty
/// counters before the first measured expiry are absent data, not zero
/// delivery, so on a healthy system `delivery-below` never fires and the
/// run is identical to one whose trigger round never arrives.
#[test]
fn delivery_below_trigger_does_not_latch_on_unmeasured_counters() {
    let g = GOLDENS
        .iter()
        .find(|g| g.scenario == "bar-gossip" && g.attack == "trade" && g.seed == 1)
        .unwrap();
    let below = run_case(g, &[("schedule", "delivery-below:0.5")]);
    let never = run_case(g, &[("schedule", "at:1000000")]);
    assert_eq!(
        below, never,
        "healthy delivery never drops to 0.5, so the attack must never fire"
    );
    let always = run_case(g, &[]);
    assert_ne!(
        below, always,
        "the below-trigger run must differ from the always-on attack"
    );
}

/// A metric-threshold trigger latches deterministically: the attack stays
/// off while delivery is below the bar and on after it crosses.
#[test]
fn metric_threshold_trigger_fires_and_is_deterministic() {
    let g = GOLDENS
        .iter()
        .find(|g| g.scenario == "bar-gossip" && g.attack == "ideal" && g.seed == 1)
        .unwrap();
    let triggered = run_case(g, &[("schedule", "delivery-above:0.9")]);
    let never = run_case(g, &[("schedule", "delivery-above:2.0")]);
    let always = run_case(g, &[]);
    // The unreachable threshold keeps the system clean; the reachable one
    // lets the attack bite once the stream is healthy.
    assert!(never.overall_delivery >= triggered.overall_delivery);
    assert!(triggered.overall_delivery >= always.overall_delivery - 1e-9);
    let replay = run_case(g, &[("schedule", "delivery-above:0.9")]);
    assert_eq!(triggered, replay);
}
