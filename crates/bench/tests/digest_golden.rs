//! Golden + equivalence tests for the two-leg digest exchange.
//!
//! The keystone is **delivery equivalence**: a truthful bloom digest and
//! the exact region-hash digest must produce *byte-identical* runs once
//! the wire accounting is stripped — a bloom false negative is
//! impossible (pinned by `digest_props`), a false positive only wastes a
//! request, and the poison stream draws only on held ids, so the
//! advertisement format can never change who gets what. The X20
//! fixtures then pin the active attack/defense path, and a sweep-fold
//! check pins worker-count independence.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim, DigestExchangeConfig};
use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_core::sweep::{sweep_fraction, SweepConfig};

/// A small digest-run config; `faults` and churn exercise the paths that
/// could plausibly diverge between advertisement modes.
fn base_cfg(exact: bool) -> BarGossipConfig {
    let mut cfg = BarGossipConfig::builder()
        .nodes(50)
        .updates_per_round(4)
        .update_lifetime(8)
        .copies_seeded(5)
        .rounds(10)
        .warmup_rounds(5)
        .churn(lotus_core::population::ChurnSpec::new(0.05, 0.4))
        .faults(lotus_core::faults::FaultPlan::parse("loss:0.1").unwrap())
        .build()
        .unwrap();
    cfg.digest = Some(DigestExchangeConfig {
        exact,
        ..DigestExchangeConfig::default()
    });
    cfg
}

#[test]
fn bloom_and_exact_digests_run_bit_identically_modulo_wire_stats() {
    // The keystone: per seed, per attack, the full report (delivery,
    // coverage, uploads, cut stats, fault counters — everything) is
    // equal once the digest wire stats are stripped. Audit stays off and
    // no rate limit is set (both are receiver-visible knobs that react
    // to the false-positive count, which *does* differ by mode).
    let attacks: &[fn() -> AttackPlan] = &[
        || AttackPlan::none(),
        || AttackPlan::poison(0.3, 1.0),
        || AttackPlan::poison(0.25, 0.15),
        || AttackPlan::trade_lotus_eater(0.3, 0.7),
    ];
    for (i, mk) in attacks.iter().enumerate() {
        for seed in 1..=4u64 {
            let mut bloom = BarGossipSim::new(base_cfg(false), mk(), seed).run_to_report();
            let mut exact = BarGossipSim::new(base_cfg(true), mk(), seed).run_to_report();
            assert_eq!(
                exact.digest.expect("digest runs carry stats").fp_requests,
                0,
                "exact diffs cannot produce false positives"
            );
            assert_eq!(
                bloom.digest.unwrap().withheld,
                exact.digest.unwrap().withheld,
                "attack {i} seed {seed}: poison draws must be advertisement-agnostic"
            );
            bloom.digest = None;
            exact.digest = None;
            assert_eq!(
                bloom, exact,
                "attack {i} seed {seed}: delivery must not depend on the digest format"
            );
        }
    }
}

/// Small digest-scenario parameters shared by the X20 fixtures.
const X20_PARAMS: &[(&str, &str)] = &[
    ("copies_seeded", "5"),
    ("nodes", "50"),
    ("rounds", "10"),
    ("updates_per_round", "4"),
    ("warmup_rounds", "5"),
];

#[test]
fn x20_digest_reports_are_pinned() {
    // The active path's goldens: the clean digest round, the full-rate
    // poisoner, and the poisoner under the digest-audit defense. Any
    // drift in the digest phase's plan stream, the want-list order, the
    // poison/audit draws or the wire accounting breaks these.
    type Fixture = (
        &'static str,
        &'static [(&'static str, &'static str)],
        &'static str,
    );
    let fixtures: &[Fixture] = &[
        ("none", &[], X20_CLEAN_JSON),
        ("poison", &[], X20_POISON_JSON),
        (
            "poison",
            &[("audit", "0.1"), ("cutoff", "3")],
            X20_AUDITED_JSON,
        ),
    ];
    let reg = ScenarioRegistry::standard();
    for (attack, extra, expected) in fixtures {
        let mut p = Params::new();
        for (k, v) in X20_PARAMS.iter().chain(extra.iter()) {
            p.set(*k, *v);
        }
        let req = RunRequest::new(0.25, 1, attack, "fraction", &p);
        let report = reg
            .run("bar-gossip-digest", &req)
            .unwrap_or_else(|e| panic!("bar-gossip-digest {attack}: {e}"));
        assert_eq!(
            &report.to_json(),
            expected,
            "bar-gossip-digest {attack} {extra:?}: X20 report drifted"
        );
    }
}

const X20_CLEAN_JSON: &str = r#"{"scenario":"bar-gossip-digest","rounds":25,"overall_delivery":1,"targeted_service":0,"usable":true,"attacker_coverage":0,"digest_bytes_on_wire":4753480,"digest_bytes_updates":4432896,"digest_fp_rate":0,"digest_requests":4329,"digest_withheld":0,"evicted_fraction":0,"evictions":0,"isolated_delivery":1,"junk_fraction":0,"mean_attacker_upload":0,"mean_honest_upload":86.58,"min_node_delivery":1,"nodes_ever_unusable":0,"satiated_delivery":0,"unusable_node_rounds":0}"#;
const X20_POISON_JSON: &str = r#"{"scenario":"bar-gossip-digest","rounds":25,"overall_delivery":1,"targeted_service":0,"usable":true,"attacker_coverage":0,"digest_bytes_on_wire":4676056,"digest_bytes_updates":4343808,"digest_fp_rate":0,"digest_requests":5787,"digest_withheld":1545,"evicted_fraction":0,"evictions":0,"isolated_delivery":1,"junk_fraction":0,"mean_attacker_upload":0,"mean_honest_upload":114.64864864864865,"min_node_delivery":1,"nodes_ever_unusable":0,"satiated_delivery":0,"unusable_node_rounds":0}"#;
const X20_AUDITED_JSON: &str = r#"{"scenario":"bar-gossip-digest","rounds":25,"overall_delivery":1,"targeted_service":0,"usable":true,"attacker_coverage":0,"attacker_cut_rate":1,"cut_precision":1,"cut_recall":1,"digest_bytes_on_wire":3857544,"digest_bytes_updates":3613696,"digest_fp_rate":0,"digest_requests":4081,"digest_withheld":552,"evicted_fraction":0,"evictions":0,"false_cut_rate":0,"isolated_delivery":1,"junk_fraction":0,"mean_attacker_upload":0,"mean_honest_upload":95.37837837837837,"min_node_delivery":1,"nodes_ever_unusable":0,"satiated_delivery":0,"unusable_node_rounds":0}"#;

#[test]
fn digest_sweeps_are_bit_identical_across_worker_counts() {
    // Fold an X20-shaped poison_rate sweep with 1 worker and with 8:
    // byte-identical figures, as for every other scenario (the CI
    // determinism matrix additionally pins LOTUS_RUN_THREADS for the
    // intra-run pool).
    let measure = |x: f64, seed: u64| {
        let reg = ScenarioRegistry::standard();
        let mut p = Params::new();
        for (k, v) in X20_PARAMS {
            p.set(*k, *v);
        }
        p.set("fraction", "0.3");
        let req = RunRequest::new(x, seed, "poison", "poison_rate", &p);
        let report = reg.run("bar-gossip-digest", &req).unwrap();
        let delivery = report.metric("isolated_delivery").unwrap();
        let withheld = report.metric("digest_withheld").unwrap();
        delivery + withheld
    };
    let xs = [0.0, 0.15, 1.0];
    let run = |threads: usize| {
        let cfg = SweepConfig {
            seeds: vec![1, 2, 3, 4, 5, 6],
            threads: 1,
        }
        .threads(threads);
        let series = sweep_fraction("x20", &xs, &cfg, measure);
        format!("{:?}", series.points)
    };
    assert_eq!(
        run(1),
        run(8),
        "digest sweep must fold bit-identically for any worker count"
    );
}
