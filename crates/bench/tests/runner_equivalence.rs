//! The acceptance contract of the unified runner: the registry path
//! (`lotus-bench --scenario bar-gossip --attack trade ...`) must produce
//! exactly the numbers the legacy figure pipeline produced for identical
//! seeds — same simulator, same sweep, same averages, bit for bit.

use bar_gossip::{AttackKind, BarGossipConfig};
use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_bench::runner::{evaluate, parse_args};
use lotus_core::sweep::SweepConfig;

/// A small Figure-2-shaped configuration (push size 10) so the test runs
/// in CI time; the equality is configuration-independent because both
/// paths drive the same `BarGossipSim`.
fn fig2_cfg() -> BarGossipConfig {
    BarGossipConfig::builder()
        .nodes(60)
        .updates_per_round(4)
        .copies_seeded(6)
        .rounds(12)
        .warmup_rounds(5)
        .push_size(10)
        .build()
        .expect("valid config")
}

const FIG2_PARAMS: &[(&str, &str)] = &[
    ("nodes", "60"),
    ("updates_per_round", "4"),
    ("copies_seeded", "6"),
    ("rounds", "12"),
    ("warmup_rounds", "5"),
    ("push_size", "10"),
];

#[test]
fn registry_reproduces_the_legacy_fig2_curve() {
    let xs = [0.0, 0.2, 0.4, 0.6];
    let seeds = 2;

    // Legacy path: the closure-based attack_curve the fig2 binary used.
    let legacy = lotus_bench::attack_curve(
        "trade",
        AttackKind::TradeLotusEater,
        &fig2_cfg(),
        &xs,
        &SweepConfig::with_seeds(seeds),
    );

    // Registry path: what `lotus-bench --scenario bar-gossip --attack
    // trade --param push_size=10 ...` evaluates.
    let mut args = vec![
        "--scenario".to_string(),
        "bar-gossip".to_string(),
        "--attack".to_string(),
        "trade".to_string(),
        "--x-values".to_string(),
        "0,0.2,0.4,0.6".to_string(),
        "--seeds".to_string(),
        seeds.to_string(),
    ];
    for (k, v) in FIG2_PARAMS {
        args.push("--param".to_string());
        args.push(format!("{k}={v}"));
    }
    let opts = parse_args(&args).expect("CLI parses");
    let figure = evaluate(&ScenarioRegistry::standard(), &opts).expect("figure evaluates");

    assert_eq!(figure.series.len(), 1);
    assert_eq!(figure.series[0].points.len(), legacy.points.len());
    for (&(lx, ly), &(rx, ry)) in legacy.points.iter().zip(&figure.series[0].points) {
        assert_eq!(lx, rx, "x grids must align");
        assert_eq!(
            ly.to_bits(),
            ry.to_bits(),
            "registry and legacy paths diverge at x={lx}: {ly} vs {ry}"
        );
    }
}

#[test]
fn registry_run_is_deterministic_across_calls() {
    let reg = ScenarioRegistry::standard();
    let mut params = Params::new();
    for (k, v) in FIG2_PARAMS {
        params.set(*k, *v);
    }
    let req = RunRequest::new(0.3, 5, "trade", "fraction", &params);
    let a = reg.run("bar-gossip", &req).expect("runs");
    let b = reg.run("bar-gossip", &req).expect("runs");
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}
