//! Golden equivalence + determinism tests for the heterogeneous-churn
//! and flash-crowd layer.
//!
//! The fixtures below were generated from the registry at the PR 4
//! commit — i.e. with the PR 3 *uniform* `ChurnSpec` implementation —
//! one `ScenarioReport::to_json` string per churned `(scenario, attack,
//! seed)` case across all five scheduled substrates. The heterogeneity
//! refactor must keep reproducing them bit-identically through both
//! spellings of uniform churn:
//!
//! * the legacy `churn_leave`/`churn_rejoin` parameter pair, and
//! * the degenerate one-class `churn_profile=uniform:<leave>:<rejoin>`,
//!
//! because a one-class profile is required to draw exactly the stream
//! the uniform implementation drew. Zero-rate profiles must be
//! indistinguishable from no churn at the report level (the no-op/
//! no-draw guard), and flash-crowd figures must be bit-identical for
//! any sweep worker count.

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_core::sweep::{sweep_fraction, SweepConfig};

struct Golden {
    scenario: &'static str,
    attack: &'static str,
    seed: u64,
    /// Substrate parameters *without* the churn axis.
    params: &'static [(&'static str, &'static str)],
    /// The uniform churn rates the fixture was generated under.
    leave: &'static str,
    rejoin: &'static str,
    json: &'static str,
}

const GOLDENS: &[Golden] = &[
    Golden {
        scenario: "bar-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        leave: "0.05",
        rejoin: "0.4",
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.9007142857142857,"targeted_service":0.955,"usable":false,"attacker_coverage":0.825,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.8283333333333334,"junk_fraction":0.03276897870016385,"mean_attacker_upload":120.4,"mean_honest_upload":53.02857142857143,"min_node_delivery":0.125,"nodes_ever_unusable":0.37142857142857144,"satiated_delivery":0.955,"unusable_node_rounds":0.15428571428571428}"#,
    },
    Golden {
        scenario: "bar-gossip",
        attack: "ideal",
        seed: 7,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        leave: "0.1",
        rejoin: "0.25",
        json: r#"{"scenario":"bar-gossip","rounds":25,"overall_delivery":0.8335714285714285,"targeted_service":0.9875,"usable":false,"attacker_coverage":0.85,"evicted_fraction":0,"evictions":0,"isolated_delivery":0.6283333333333333,"junk_fraction":0.024132091447925486,"mean_attacker_upload":97.06666666666666,"mean_honest_upload":25.885714285714286,"min_node_delivery":0.25,"nodes_ever_unusable":0.5714285714285714,"satiated_delivery":0.9875,"unusable_node_rounds":0.2914285714285714}"#,
    },
    Golden {
        scenario: "scrip",
        attack: "lotus-eater",
        seed: 1,
        params: &[("agents", "40"), ("rounds", "600"), ("warmup", "100")],
        leave: "0.02",
        rejoin: "0.3",
        json: r#"{"scenario":"scrip","rounds":700,"overall_delivery":0.32212389380530976,"targeted_service":0.9727777777777777,"usable":false,"attacker_money":33,"fail_broke_rate":0.6778761061946903,"fail_no_volunteer_rate":0,"free_rate":0,"gini":0.7058510638297872,"mean_satiated_fraction":0.2918333333333356,"mean_threshold":4,"paid_rate":0.32212389380530976,"service_rate":0.32212389380530976,"special_service_rate":1,"target_satiation":0.9727777777777777,"total_money":80}"#,
    },
    Golden {
        scenario: "bittorrent",
        attack: "satiate",
        seed: 1,
        params: &[("leechers", "15"), ("pieces", "16")],
        leave: "0.05",
        rejoin: "0.5",
        json: r#"{"scenario":"bittorrent","rounds":13,"overall_delivery":1,"targeted_service":1,"usable":true,"attacker_upload":80,"duplicates":118,"honest_upload":278,"mean_completion":5.533333333333333,"mean_completion_nontargeted":6.8,"mean_completion_targeted":3,"p95_completion_nontargeted":10.649999999999997}"#,
    },
    Golden {
        scenario: "token",
        attack: "random-fraction",
        seed: 7,
        params: &[("nodes", "24"), ("rounds", "50")],
        leave: "0.08",
        rejoin: "0.25",
        json: r#"{"scenario":"token","rounds":50,"overall_delivery":0.9901960784313725,"targeted_service":1,"usable":true,"all_satiated_at":-1,"attacked_nodes":7,"final_satiated_fraction":0.9166666666666666,"mean_coverage":0.9930555555555555,"min_coverage":0.9166666666666666,"token0_reach":1,"untouched_mean_coverage":0.9901960784313725,"untouched_satisfied":0.8823529411764706}"#,
    },
    Golden {
        scenario: "scrip-gossip",
        attack: "trade",
        seed: 1,
        params: &[
            ("copies_seeded", "5"),
            ("nodes", "50"),
            ("rounds", "10"),
            ("updates_per_round", "4"),
            ("warmup_rounds", "5"),
        ],
        leave: "0.05",
        rejoin: "0.4",
        json: r#"{"scenario":"scrip-gossip","rounds":25,"overall_delivery":0.9871428571428571,"targeted_service":1,"usable":true,"broke_rate":0.14127659574468085,"isolated_delivery":0.97,"refusal_rate":0,"satiated_delivery":1,"total_money":2000}"#,
    },
];

fn run_case(g: &Golden, extra: &[(&str, String)]) -> lotus_core::scenario::ScenarioReport {
    let reg = ScenarioRegistry::standard();
    let mut p = Params::new();
    for (k, v) in g.params {
        p.set(*k, *v);
    }
    for (k, v) in extra {
        p.set(*k, v.clone());
    }
    let req = RunRequest::new(0.3, g.seed, g.attack, "fraction", &p);
    reg.run(g.scenario, &req)
        .unwrap_or_else(|e| panic!("{} {} seed {}: {e}", g.scenario, g.attack, g.seed))
}

#[test]
fn uniform_churn_parameters_reproduce_pr3_fixtures_bit_identically() {
    for g in GOLDENS {
        let report = run_case(
            g,
            &[
                ("churn_leave", g.leave.to_string()),
                ("churn_rejoin", g.rejoin.to_string()),
            ],
        );
        assert_eq!(
            report.to_json(),
            g.json,
            "{} / {} / seed {}: churn_leave/churn_rejoin drifted from the PR 3 \
             uniform-churn golden output",
            g.scenario,
            g.attack,
            g.seed
        );
    }
}

#[test]
fn degenerate_one_class_profile_reproduces_pr3_fixtures_bit_identically() {
    // The acceptance bar for the heterogeneity layer: uniform churn
    // spelled as a one-class ChurnProfile draws exactly the PR 3 stream
    // on all five substrates.
    for g in GOLDENS {
        let profile = format!("uniform:{}:{}", g.leave, g.rejoin);
        let report = run_case(g, &[("churn_profile", profile.clone())]);
        assert_eq!(
            report.to_json(),
            g.json,
            "{} / {} / seed {}: churn_profile={profile} is not byte-identical to \
             the PR 3 uniform-churn fixture",
            g.scenario,
            g.attack,
            g.seed
        );
    }
}

#[test]
fn zero_rate_profile_is_invisible_at_the_report_level() {
    // The no-op/no-draw guard, observed end to end: configuring churn at
    // an explicit zero leave rate (uniform or multi-class) must leave
    // every substrate's report byte-identical to the churn-free run,
    // because the population layer draws nothing from its fork.
    for g in GOLDENS {
        let baseline = run_case(g, &[]);
        for profile in ["uniform:0:0.7", "0.6:0:0.9/0.4:0:0.1"] {
            let zero = run_case(g, &[("churn_profile", profile.to_string())]);
            assert_eq!(
                baseline, zero,
                "{} / {}: zero-rate profile {profile} perturbed the run",
                g.scenario, g.attack
            );
        }
    }
}

#[test]
fn heterogeneous_profiles_and_arrivals_replay_bit_identically() {
    let variants: &[&[(&str, &str)]] = &[
        &[("churn_profile", "0.9:0.002:0.5/0.1:0.2:0.3")],
        &[("arrival", "burst:6:10")],
        &[("arrival", "burst:4:8:6")],
        &[("arrival", "ramp:3:9:2")],
        &[
            ("churn_profile", "0.8:0.01:0.5/0.2:0.3:0.3"),
            ("arrival", "burst:6:10"),
        ],
        &[
            ("schedule", "presence-above:0.95"),
            ("arrival", "burst:6:10"),
        ],
    ];
    for g in GOLDENS {
        for extra in variants {
            let owned: Vec<(&str, String)> =
                extra.iter().map(|&(k, v)| (k, v.to_string())).collect();
            let a = run_case(g, &owned);
            let b = run_case(g, &owned);
            assert_eq!(
                a, b,
                "{} / {} with {:?} must replay bit-identically",
                g.scenario, g.attack, extra
            );
        }
    }
}

#[test]
fn flash_crowd_figures_are_bit_identical_across_sweep_threads() {
    // The CI determinism matrix pins this via LOTUS_SWEEP_THREADS; here
    // the worker count is pinned explicitly so the invariant holds in
    // any environment: a flash-crowd + heterogeneous-churn sweep folded
    // by 1 worker and by 8 workers yields byte-identical figures.
    let measure = |x: f64, seed: u64| {
        let reg = ScenarioRegistry::standard();
        let p = Params::new()
            .with("copies_seeded", "5")
            .with("nodes", "50")
            .with("rounds", "10")
            .with("updates_per_round", "4")
            .with("warmup_rounds", "5")
            .with("churn_profile", "0.9:0.01:0.5/0.1:0.2:0.3")
            .with("arrival", "burst:6:12");
        let req = RunRequest::new(x, seed, "trade", "fraction", &p);
        reg.run("bar-gossip", &req).unwrap().overall_delivery
    };
    let xs = [0.0, 0.15, 0.3];
    let run = |threads: usize| {
        let cfg = SweepConfig {
            seeds: vec![1, 2, 3, 4, 5, 6],
            threads: 1,
        }
        .threads(threads);
        let series = sweep_fraction("flash-crowd", &xs, &cfg, measure);
        format!("{:?}", series.points)
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(
        one, eight,
        "flash-crowd sweep must fold bit-identically for any worker count"
    );
}

#[test]
fn presence_triggered_schedule_fires_when_the_crowd_lands() {
    // presence-above with a crowd outside fires the round the burst
    // lands; with an unreachable bar it never fires, which must equal
    // the never-triggering at: schedule byte for byte.
    let g = &GOLDENS[0];
    let crowd = [("arrival", "burst:6:10".to_string())];
    let baseline = run_case(g, &crowd);
    let mut with_trigger = crowd.to_vec();
    with_trigger.push(("schedule", "presence-above:0.99".to_string()));
    let triggered = run_case(g, &with_trigger);
    assert_ne!(
        baseline, triggered,
        "waiting for the crowd must differ from attacking from round 0"
    );
    let mut unreachable = crowd.to_vec();
    unreachable.push(("schedule", "presence-above:1.5".to_string()));
    let never_fires = run_case(g, &unreachable);
    let mut never = crowd.to_vec();
    never.push(("schedule", "at:1000000".to_string()));
    let never_strikes = run_case(g, &never);
    assert_eq!(
        never_fires, never_strikes,
        "an unreachable presence bar must equal a never-arriving trigger round"
    );
}
