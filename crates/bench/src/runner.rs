//! The unified experiment runner behind the `lotus-bench` binary and
//! every `fig*`/`ext_*` shim.
//!
//! One CLI drives any registered scenario:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack trade --format json
//! lotus-bench --scenario bar-gossip --attack crash,ideal,trade \
//!             --fraction-grid 0:1 --seeds 5
//! lotus-bench --scenario token --sweep altruism --fraction-grid 0:0.5 \
//!             --curve "random-fraction,fraction=0.5" --curve none
//! lotus-bench --list
//! ```
//!
//! Every evaluation goes through
//! [`ScenarioRegistry::run`](crate::registry::ScenarioRegistry::run) —
//! i.e. through the unified `Scenario` API — and is replicated across
//! seeds by the `lotus-core` sweep harness, so the CLI, the shims and
//! ad-hoc library sweeps all produce identical numbers for identical
//! inputs.

use crate::registry::{Params, RunRequest, ScenarioRegistry};
use crate::timing::{bench_scenario, BenchRecord, TimingStats};
use crate::Fidelity;
use lotus_core::report::{CrossoverRecord, UsabilityThreshold};
use lotus_core::sweep::{grid, sweep_fraction, SweepConfig};
use netsim::metrics::Series;
use netsim::plot::{render, PlotConfig};
use netsim::table::Table;

/// One curve of the requested figure: an attack (plus overrides) against
/// a scenario.
#[derive(Debug, Clone, Default)]
pub struct CurveSpec {
    /// Display label (defaults to the attack name).
    pub label: Option<String>,
    /// Scenario override (defaults to the global `--scenario`); lets one
    /// figure compare substrates, e.g. vanilla vs scrip-mediated gossip.
    pub scenario: Option<String>,
    /// Attack name.
    pub attack: String,
    /// Metric override (defaults to the global/default metric).
    pub metric: Option<String>,
    /// Paper-reported break point for the crossover table (`None` =
    /// listed with no paper value; absent key = not listed).
    pub paper: Option<Option<f64>>,
    /// Curve-local parameter overrides.
    pub params: Params,
}

impl CurveSpec {
    /// Parse a `--curve` value: `attack[,key=value]*`, with the reserved
    /// keys `label=`, `scenario=`, `metric=` and `paper=` (`paper=-` lists
    /// the curve in the crossover table without a paper value).
    ///
    /// # Errors
    ///
    /// Returns a message on an empty spec or malformed `key=value` pair.
    pub fn parse(spec: &str) -> Result<CurveSpec, String> {
        let mut parts = spec.split(',').map(str::trim);
        let attack = parts
            .next()
            .filter(|a| !a.is_empty())
            .ok_or_else(|| format!("empty curve spec {spec:?}"))?;
        let mut curve = CurveSpec {
            attack: attack.to_string(),
            ..CurveSpec::default()
        };
        for part in parts {
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("curve option {part:?} is not key=value"))?;
            match key {
                "label" => curve.label = Some(value.to_string()),
                "scenario" => curve.scenario = Some(value.to_string()),
                "metric" => curve.metric = Some(value.to_string()),
                "paper" => {
                    curve.paper =
                        Some(if value == "-" {
                            None
                        } else {
                            Some(value.parse::<f64>().map_err(|_| {
                                format!("paper break point {value:?} is not a number")
                            })?)
                        })
                }
                _ => curve.params.set(key, value),
            }
        }
        Ok(curve)
    }
}

/// Output format of [`run_args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// CSV block + ASCII chart + optional crossover table.
    Table,
    /// A single JSON object.
    Json,
}

/// Parsed CLI options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Default scenario for curves without a `scenario=` override.
    pub scenario: Option<String>,
    /// The curves to evaluate.
    pub curves: Vec<CurveSpec>,
    /// Global metric override.
    pub metric: Option<String>,
    /// `--fraction-grid lo:hi[:points]`.
    pub grid: Option<(f64, f64, Option<usize>)>,
    /// `--x-values v1,v2,...` (wins over the grid).
    pub x_values: Option<Vec<f64>>,
    /// The knob x drives (default `"fraction"`).
    pub sweep: String,
    /// Seeds to replicate over (default from fidelity).
    pub seeds: Option<usize>,
    /// Global parameters.
    pub params: Params,
    /// Output format.
    pub format: Format,
    /// Usability threshold for crossover extraction.
    pub threshold: f64,
    /// Quick (CI) fidelity.
    pub quick: bool,
    /// Timing-bench mode: time scenario hot loops instead of sweeping.
    pub bench: bool,
    /// Scale-curve mode: step-ns versus total N and versus active
    /// fraction, proving the sharded engine's `O(active)` claim.
    pub bench_scale: bool,
    /// Timed iterations per benched scenario (default from fidelity).
    pub bench_iters: Option<u32>,
    /// Untimed warmup runs per benched scenario (default from fidelity).
    pub bench_warmup: Option<u32>,
    /// Include a representative adaptive arm trace per curve in the
    /// output (x = middle grid point, first seed).
    pub arm_trace: bool,
    /// List scenarios instead of running.
    pub list: bool,
    /// Print usage instead of running.
    pub help: bool,
    /// Figure title.
    pub title: Option<String>,
    /// X-axis label override.
    pub x_label: Option<String>,
    /// Y-axis label override.
    pub y_label: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scenario: None,
            curves: Vec::new(),
            metric: None,
            grid: None,
            x_values: None,
            sweep: "fraction".to_string(),
            seeds: None,
            params: Params::new(),
            format: Format::Table,
            threshold: UsabilityThreshold::BAR_GOSSIP.0,
            quick: false,
            bench: false,
            bench_scale: false,
            bench_iters: None,
            bench_warmup: None,
            arm_trace: false,
            list: false,
            help: false,
            title: None,
            x_label: None,
            y_label: None,
        }
    }
}

/// Parse CLI arguments (without the program name).
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<&str, String> {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg {
            "--scenario" => opts.scenario = Some(take("--scenario")?.to_string()),
            "--attack" => {
                for name in take("--attack")?.split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        opts.curves.push(CurveSpec {
                            attack: name.to_string(),
                            ..CurveSpec::default()
                        });
                    }
                }
            }
            "--curve" => opts.curves.push(CurveSpec::parse(take("--curve")?)?),
            "--metric" => opts.metric = Some(take("--metric")?.to_string()),
            "--fraction-grid" => {
                let v = take("--fraction-grid")?;
                let parts: Vec<&str> = v.split(':').collect();
                let parse = |s: &str| {
                    s.parse::<f64>()
                        .map_err(|_| format!("bad grid bound {s:?} in {v:?}"))
                };
                let (lo, hi, points) = match parts.as_slice() {
                    [lo, hi] => (parse(lo)?, parse(hi)?, None),
                    [lo, hi, n] => (
                        parse(lo)?,
                        parse(hi)?,
                        Some(
                            n.parse::<usize>()
                                .map_err(|_| format!("bad grid point count {n:?}"))?,
                        ),
                    ),
                    _ => return Err(format!("--fraction-grid wants lo:hi[:points], got {v:?}")),
                };
                if lo > hi {
                    return Err(format!("--fraction-grid bounds out of order in {v:?}"));
                }
                if points == Some(0) {
                    return Err(format!("--fraction-grid needs at least one point in {v:?}"));
                }
                opts.grid = Some((lo, hi, points));
            }
            "--x-values" => {
                let v = take("--x-values")?;
                let xs: Result<Vec<f64>, String> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad x value {s:?}"))
                    })
                    .collect();
                opts.x_values = Some(xs?);
            }
            "--sweep" => opts.sweep = take("--sweep")?.to_string(),
            "--seeds" => {
                opts.seeds = Some(
                    take("--seeds")?
                        .parse::<usize>()
                        .map_err(|_| "bad --seeds value".to_string())?,
                )
            }
            "--param" => {
                let v = take("--param")?;
                let (k, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--param wants key=value, got {v:?}"))?;
                opts.params.set(k, val);
            }
            "--schedule" => {
                // Validate eagerly so typos fail at parse time, then pass
                // the spec through the ordinary parameter channel.
                let v = take("--schedule")?;
                lotus_core::schedule::AttackSchedule::parse(v)?;
                opts.params.set("schedule", v);
            }
            "--churn" => {
                let v = take("--churn")?;
                let churn = lotus_core::population::ChurnSpec::parse(v)?;
                opts.params.set("churn_leave", churn.leave.to_string());
                opts.params.set("churn_rejoin", churn.rejoin.to_string());
            }
            "--churn-profile" => {
                // Validate eagerly (as for --schedule), then pass the
                // spec through the ordinary parameter channel.
                let v = take("--churn-profile")?;
                lotus_core::population::ChurnProfile::parse(v)?;
                opts.params.set("churn_profile", v);
            }
            "--arrival" => {
                let v = take("--arrival")?;
                lotus_core::population::ArrivalProcess::parse(v)?;
                opts.params.set("arrival", v);
            }
            "--faults" => {
                // Validate eagerly (as for --schedule), then pass the
                // spec through the ordinary parameter channel.
                let v = take("--faults")?;
                lotus_core::faults::FaultPlan::parse(v)?;
                opts.params.set("faults", v);
            }
            "--adaptive" => {
                // Validate eagerly (as for --schedule), then pass the
                // spec through the ordinary parameter channel.
                let v = take("--adaptive")?;
                lotus_core::adaptive::AdaptiveSpec::parse(v)?;
                opts.params.set("adaptive", v);
            }
            "--run-threads" => {
                // Validate eagerly (as for --faults), then pass the
                // count through the ordinary parameter channel. This
                // caps the *intra-run* plan-phase workers — independent
                // from LOTUS_SWEEP_THREADS, which fans out whole runs.
                let v = take("--run-threads")?;
                v.parse::<u32>().map_err(|_| {
                    format!("bad --run-threads value {v:?} (whole number of workers, 0 = auto)")
                })?;
                opts.params.set("run_threads", v);
            }
            "--arm-trace" => opts.arm_trace = true,
            "--format" => {
                opts.format = match take("--format")? {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (table | json)")),
                }
            }
            "--threshold" => {
                opts.threshold = take("--threshold")?
                    .parse::<f64>()
                    .map_err(|_| "bad --threshold value".to_string())?
            }
            "--title" => opts.title = Some(take("--title")?.to_string()),
            "--x-label" => opts.x_label = Some(take("--x-label")?.to_string()),
            "--y-label" => opts.y_label = Some(take("--y-label")?.to_string()),
            "--bench" => opts.bench = true,
            "--bench-scale" => opts.bench_scale = true,
            "--bench-iters" => {
                opts.bench_iters = Some(
                    take("--bench-iters")?
                        .parse::<u32>()
                        .map_err(|_| "bad --bench-iters value".to_string())?,
                )
            }
            "--bench-warmup" => {
                opts.bench_warmup = Some(
                    take("--bench-warmup")?
                        .parse::<u32>()
                        .map_err(|_| "bad --bench-warmup value".to_string())?,
                )
            }
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// CLI usage text.
pub const USAGE: &str = "\
usage: lotus-bench --scenario NAME [--attack A[,B,...]] [options]
       lotus-bench --bench [--scenario NAME] [options]
       lotus-bench --bench-scale [options]
       lotus-bench --list

options:
  --scenario NAME       scenario to run (see --list)
  --attack A[,B,...]    one curve per attack name
  --curve SPEC          curve with overrides: attack[,key=value]*
                        (reserved keys: label=, scenario=, metric=, paper=)
  --metric KEY          y-axis metric (default: scenario's default)
  --fraction-grid L:H[:N]  x grid over [L, H] (default 0:1, N from fidelity)
  --x-values a,b,c      explicit x values instead of a grid
  --sweep KNOB          what x drives: fraction (default) or a parameter
  --seeds N             replication seeds 1..=N (default 5, 2 with --quick)
  --param K=V           scenario parameter (repeatable, applies to all curves)
  --schedule SPEC       attack timing: always (default) | at:<round> |
                        window:<from>:<until> | periodic:<period>:<active> |
                        delivery-above:<x> | delivery-below:<x> |
                        targeted-above:<x> | targeted-below:<x> |
                        presence-above:<x> | presence-below:<x>
                        (sugar for --param schedule=SPEC)
  --churn L[:R]         population churn: per-round leave probability L and
                        rejoin probability R (default 0.25); sugar for
                        --param churn_leave=L / churn_rejoin=R
  --churn-profile SPEC  heterogeneous churn cohorts: none |
                        uniform:<leave>[:<rejoin>] |
                        <w>:<leave>:<rejoin>[/...] (up to 4 weighted classes,
                        e.g. 0.9:0.002:0.5/0.1:0.2:0.3 = stable core +
                        transient fringe); replaces --churn
                        (sugar for --param churn_profile=SPEC)
  --arrival SPEC        flash-crowd arrivals: none (default) |
                        burst:<round>:<size>[:<period>] |
                        ramp:<start>:<size>[:<rate>] — held-back nodes enter
                        with empty state; sweep arrival_size to scale the
                        crowd (sugar for --param arrival=SPEC)
  --faults SPEC         fault injection: loss:<p> | dup:<p> | delay:<p> |
                        crash:<p>:<recover> | partition:<start>:<len>:<frac>,
                        combined with '/' (e.g. loss:0.05/crash:0.01:0.2);
                        sweep fault_loss to drive the loss rate through x
                        (sugar for --param faults=SPEC)
  --adaptive SPEC       bandit attacker re-planning each phase from observed
                        damage: <policy>,<phase-len>,<epsilon>[,<metric>] with
                        policy epsilon-greedy | ucb | fixed-<arm> and metric
                        delivery (default) | targeted; replaces --schedule
                        (sugar for --param adaptive=SPEC; inside --curve use
                        colons: adaptive=ucb:20:1.4)
  --run-threads N       intra-run plan-phase worker threads for scenarios
                        that support them (bar-gossip family); 0 = auto
                        (LOTUS_RUN_THREADS env, else machine parallelism).
                        Figures are byte-identical for any value — only
                        wall-clock changes. Independent from
                        LOTUS_SWEEP_THREADS, which parallelizes across runs
                        (sugar for --param run_threads=N)
  --arm-trace           append each curve's adaptive arm trace (phase, arm,
                        mean observed damage) at x = the middle grid point,
                        first seed — shows the schedule the bandit converged to
  --format table|json   output format (default table)
  --threshold T         usability threshold for crossovers (default 0.93)
  --title/--x-label/--y-label STR   labels
  --quick               CI fidelity (fewer seeds and grid points)
  --bench               time scenario hot loops instead of sweeping:
                        min/median/p90/mean ns per step and per full run,
                        for every registered scenario (or just --scenario);
                        save the JSON as BENCH_<date>.json to track the
                        perf trajectory across PRs
  --bench-scale         emit the sharded engine's O(active) scale curves:
                        step-ns for bar-gossip versus total N at ~10k active
                        (10k, 100k, 1M nodes; the surplus held back by a
                        flash-crowd burst that never fires) and versus active
                        fraction at 1M total (1 %, 2 %, 4 %), plus the
                        headline step-ns ratio of 1M total / 1 % active
                        against 10k total / 100 % active
  --bench-iters N       timed runs per benched scenario (default 12, 3 with --quick;
                        3 under --bench-scale)
  --bench-warmup N      untimed warmup runs (default 3, 1 with --quick;
                        1 under --bench-scale)
  --list                list scenarios, attacks, parameters and metrics";

/// One curve's representative adaptive arm trace (`--arm-trace`).
#[derive(Debug, Clone)]
pub struct ArmTraceRecord {
    /// Curve label the trace belongs to.
    pub label: String,
    /// The x value the representative run used (the middle grid point).
    pub x: f64,
    /// The seed the representative run used (the first sweep seed).
    pub seed: u64,
    /// The per-phase arm trace.
    pub trace: Vec<lotus_core::adaptive::TraceEntry>,
}

/// The evaluated figure: everything a caller needs to print or test.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Scenario of the first curve (figures may mix scenarios).
    pub scenario: String,
    /// The evaluated series, one per curve.
    pub series: Vec<Series>,
    /// Metric per curve (parallel to `series`).
    pub metrics: Vec<String>,
    /// Crossover records for curves that asked for them.
    pub crossovers: Vec<CrossoverRecord>,
    /// The x values used.
    pub xs: Vec<f64>,
    /// Seeds used.
    pub seeds: usize,
    /// The sweep knob.
    pub sweep: String,
    /// Representative adaptive arm traces (`--arm-trace`; only curves
    /// that actually ran a bandit appear).
    pub arm_traces: Vec<ArmTraceRecord>,
}

/// Evaluate the requested figure against `registry`.
///
/// # Errors
///
/// Unknown scenario names surface before the sweep; unknown
/// attacks/metrics/parameters and invalid configurations (including ones
/// only some x values trigger) surface as a clean error after the sweep
/// pass that hit them — never as a panic.
pub fn evaluate(registry: &ScenarioRegistry, opts: &Options) -> Result<Figure, String> {
    if opts.curves.is_empty() {
        return Err(format!(
            "no curves requested; pass --attack or --curve\n{USAGE}"
        ));
    }
    let fidelity = if opts.quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let seeds = opts.seeds.unwrap_or_else(|| fidelity.seeds());
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    let xs: Vec<f64> = match (&opts.x_values, opts.grid) {
        (Some(values), _) => values.clone(),
        (None, Some((lo, hi, points))) => {
            let points = points.unwrap_or_else(|| fidelity.grid(lo, hi).len());
            if points == 1 {
                vec![lo]
            } else {
                grid(lo, hi, points)
            }
        }
        (None, None) => fidelity.grid(0.0, 1.0),
    };
    if xs.is_empty() {
        return Err("empty x grid".to_string());
    }

    let sweep_cfg = SweepConfig::with_seeds(seeds);
    let mut figure = Figure {
        scenario: String::new(),
        series: Vec::new(),
        metrics: Vec::new(),
        crossovers: Vec::new(),
        xs: xs.clone(),
        seeds,
        sweep: opts.sweep.clone(),
        arm_traces: Vec::new(),
    };

    for curve in &opts.curves {
        let scenario = curve
            .scenario
            .as_deref()
            .or(opts.scenario.as_deref())
            .ok_or("no scenario given (pass --scenario or scenario= in the curve)")?;
        let spec = registry
            .get(scenario)
            .ok_or_else(|| format!("unknown scenario {scenario:?} (see --list)"))?;
        let metric = curve
            .metric
            .as_deref()
            .or(opts.metric.as_deref())
            .unwrap_or(spec.default_metric)
            .to_string();
        let params = opts.params.merged_with(&curve.params);
        if figure.scenario.is_empty() {
            figure.scenario = scenario.to_string();
        }
        let label = curve.label.clone().unwrap_or_else(|| {
            if curve.scenario.is_some() {
                format!("{scenario}: {}", curve.attack)
            } else {
                curve.attack.clone()
            }
        });
        // Errors can be x-dependent (a swept knob may invalidate the
        // config at some grid points only), and the sweep workers cannot
        // return `Result` — collect the first failure here and fail the
        // whole figure cleanly after the pass.
        let sweep_error = std::sync::Mutex::new(None::<String>);
        let series = sweep_fraction(label, &xs, &sweep_cfg, |x, seed| {
            let req = RunRequest::new(x, seed, &curve.attack, &opts.sweep, &params);
            let outcome = registry.run(scenario, &req).and_then(|report| {
                report.metric(&metric).ok_or_else(|| {
                    format!(
                        "no metric {metric:?}; available: {}",
                        report.metric_keys().join(", ")
                    )
                })
            });
            match outcome {
                Ok(y) => y,
                Err(e) => {
                    let mut slot = sweep_error.lock().expect("sweep error lock");
                    slot.get_or_insert_with(|| format!("at x={x} seed={seed}: {e}"));
                    f64::NAN
                }
            }
        });
        if let Some(e) = sweep_error.into_inner().expect("sweep error lock") {
            return Err(format!("scenario {scenario:?} failed {e}"));
        }
        if let Some(paper) = curve.paper {
            figure.crossovers.push(CrossoverRecord::from_curve(
                &series,
                UsabilityThreshold(opts.threshold),
                paper,
            ));
        }
        // Only curves that actually run a bandit can trace arms — skip
        // the representative run for the rest instead of building and
        // discarding a full simulation.
        let curve_is_adaptive = ["adaptive", "adaptive_epsilon", "adaptive_phase"]
            .iter()
            .any(|k| params.get(k).is_some() || opts.sweep == *k);
        if opts.arm_trace && curve_is_adaptive {
            // One representative run per curve: the middle grid point
            // (full fraction grids end at the degenerate all-attacker
            // point where no honest metric is measurable) under the
            // first seed — the same build path the sweep used,
            // re-stepped to capture the trace.
            let (&x, &seed) = (
                &xs[xs.len() / 2],
                sweep_cfg.seeds.first().expect("non-empty seed list"),
            );
            let req = RunRequest::new(x, seed, &curve.attack, &opts.sweep, &params);
            let mut built = registry.build(scenario, &req)?;
            let _ = built.finish();
            if let Some(trace) = built.arm_trace_dyn() {
                figure.arm_traces.push(ArmTraceRecord {
                    label: series.label.clone(),
                    x,
                    seed,
                    trace: trace.to_vec(),
                });
            }
        }
        figure.series.push(series);
        figure.metrics.push(metric);
    }
    Ok(figure)
}

/// The evaluated timing bench: one record per `(scenario, attack)` pair.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Untimed warmup runs per scenario.
    pub warmup: u32,
    /// Timed iterations per scenario.
    pub iters: u32,
    /// Replication seeds the iterations cycled through.
    pub seeds: usize,
    /// Timing records, in bench order.
    pub records: Vec<BenchRecord>,
}

/// Time the requested scenarios' hot loops against `registry`.
///
/// With explicit `--curve`s (or `--attack`s) each curve is benched; with
/// only `--scenario` that scenario is benched under the `none` attack;
/// with neither, every registered scenario is benched under `none`.
/// Parameters resolve as the spec's `bench_params` overlaid by global
/// `--param`s overlaid by curve-local params, and every build goes
/// through the registry's scenario factories — the same grammar and code
/// path the sweep mode uses.
///
/// # Errors
///
/// Unknown names, malformed parameters and invalid configurations
/// surface as messages, exactly as in [`evaluate`].
pub fn evaluate_bench(registry: &ScenarioRegistry, opts: &Options) -> Result<Bench, String> {
    let fidelity = if opts.quick {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let iters = opts.bench_iters.unwrap_or_else(|| fidelity.bench_iters());
    let warmup = opts.bench_warmup.unwrap_or_else(|| fidelity.bench_warmup());
    if iters == 0 {
        return Err("--bench-iters must be at least 1".to_string());
    }
    // Reuse the sweep harness's replication plumbing for the seed list;
    // timed iterations cycle through it.
    let seeds = SweepConfig::with_seeds(opts.seeds.unwrap_or(1)).seeds;
    if seeds.is_empty() {
        return Err("--seeds must be at least 1".to_string());
    }
    let x = opts
        .x_values
        .as_ref()
        .and_then(|v| v.first().copied())
        .unwrap_or(0.0);

    let mut jobs: Vec<(String, CurveSpec)> = Vec::new();
    if opts.curves.is_empty() {
        let none = || CurveSpec {
            attack: "none".to_string(),
            ..CurveSpec::default()
        };
        match &opts.scenario {
            Some(s) => jobs.push((s.clone(), none())),
            None => {
                for spec in registry.specs() {
                    jobs.push((spec.name.to_string(), none()));
                }
            }
        }
    } else {
        for curve in &opts.curves {
            let scenario = curve
                .scenario
                .clone()
                .or_else(|| opts.scenario.clone())
                .ok_or("no scenario given (pass --scenario or scenario= in the curve)")?;
            jobs.push((scenario, curve.clone()));
        }
    }

    let mut records = Vec::with_capacity(jobs.len());
    for (scenario, curve) in jobs {
        let spec = registry
            .get(&scenario)
            .ok_or_else(|| format!("unknown scenario {scenario:?} (see --list)"))?;
        let mut params = Params::new();
        for (k, v) in spec.bench_params {
            params.set(*k, *v);
        }
        let params = params.merged_with(&opts.params).merged_with(&curve.params);
        let (run_ns, step_ns, steps_per_run) = bench_scenario(
            |i| {
                let seed = seeds[i as usize % seeds.len()];
                let req = RunRequest::new(x, seed, &curve.attack, &opts.sweep, &params);
                registry.build(&scenario, &req)
            },
            warmup,
            iters,
        )?;
        records.push(BenchRecord {
            scenario,
            attack: curve.attack.clone(),
            steps_per_run,
            run_ns,
            step_ns,
        });
    }
    Ok(Bench {
        warmup,
        iters,
        seeds: seeds.len(),
        records,
    })
}

/// Render `bench` in the requested format.
pub fn render_bench(bench: &Bench, opts: &Options) -> String {
    match opts.format {
        Format::Json => render_bench_json(bench),
        Format::Table => render_bench_table(bench),
    }
}

fn render_bench_json(bench: &Bench) -> String {
    use std::fmt::Write;
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\"bench\":true");
    let _ = write!(out, ",\"unix_time\":{unix_time}");
    let _ = write!(out, ",\"warmup\":{}", bench.warmup);
    let _ = write!(out, ",\"iters\":{}", bench.iters);
    let _ = write!(out, ",\"seeds\":{}", bench.seeds);
    out.push_str(",\"scenarios\":[");
    for (i, rec) in bench.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.to_json());
    }
    out.push_str("]}");
    out
}

fn render_bench_table(bench: &Bench) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# lotus-bench timing ({} warmup + {} timed iterations, {} seed{})",
        bench.warmup,
        bench.iters,
        bench.seeds,
        if bench.seeds == 1 { "" } else { "s" }
    );
    let _ = writeln!(out);
    let mut t = Table::new(vec![
        "scenario",
        "attack",
        "steps/run",
        "warm med (ns)",
        "warm p90 (ns)",
        "burst med (ns)",
        "run min (ns)",
        "run med (ns)",
        "run p90 (ns)",
    ]);
    for rec in &bench.records {
        t.row(vec![
            rec.scenario.clone(),
            rec.attack.clone(),
            rec.steps_per_run.to_string(),
            rec.step_ns.warm.median_ns.to_string(),
            rec.step_ns.warm.p90_ns.to_string(),
            rec.step_ns
                .burst
                .map_or_else(|| "-".to_string(), |b| b.median_ns.to_string()),
            rec.run_ns.min_ns.to_string(),
            rec.run_ns.median_ns.to_string(),
            rec.run_ns.p90_ns.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// One timed point of the `O(active)` scale curve: a bar-gossip
/// configuration with `nodes` total and `active` present nodes (the
/// surplus held back by a flash-crowd burst scheduled far beyond the
/// run's horizon, so membership never changes mid-measurement).
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Total nodes in the universe (`--param nodes`).
    pub nodes: u64,
    /// Present (active) nodes during the measured steps.
    pub active: u64,
    /// Steps a single run executes.
    pub steps_per_run: u64,
    /// Full-run wall-clock statistics.
    pub run_ns: TimingStats,
    /// Per-step wall-clock statistics.
    pub step_ns: TimingStats,
}

impl ScalePoint {
    fn active_pct(&self) -> f64 {
        100.0 * self.active as f64 / self.nodes as f64
    }
}

/// One timed point of the worker-count curve: the busiest grid point
/// re-run with an explicit `run_threads` cap.
#[derive(Debug, Clone)]
pub struct WorkerPoint {
    /// The `run_threads` cap the point ran with.
    pub threads: u32,
    /// Steps each timed run executed.
    pub steps_per_run: u64,
    /// Whole-run wall time stats.
    pub run_ns: TimingStats,
    /// Per-step wall time stats.
    pub step_ns: TimingStats,
}

/// The evaluated `--bench-scale` curves.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Untimed warmup runs per point.
    pub warmup: u32,
    /// Timed iterations per point.
    pub iters: u32,
    /// Replication seeds the iterations cycled through.
    pub seeds: usize,
    /// Timed points: total-N curve at ~10k active, then the
    /// active-fraction curve at 1M total.
    pub points: Vec<ScalePoint>,
    /// Headline ratio: median step-ns at 1M total / 1 % active over
    /// median step-ns at 10k total / 100 % active. The `O(active)` claim
    /// is that this stays near 1 (acceptance: within ~2x) even though
    /// the universe grew 100-fold.
    pub ratio_1m_1pct_vs_10k_full: f64,
    /// Step-ns versus plan-phase worker count at the busiest grid point
    /// (1M total, 4 % active — enough active nodes to clear the plan
    /// pool's engagement floor). Reports are byte-identical across the
    /// curve; only wall-clock moves.
    pub worker_points: Vec<WorkerPoint>,
}

/// The `(nodes, active)` grid `--bench-scale` times: a total-N curve at
/// a fixed ~10k-node active set, then an active-fraction curve at 1M
/// total. The first point (10k total, 100 % active) is the reference of
/// the headline ratio; the third (1M total, 1 % active = the same 10k
/// active nodes) is its numerator.
pub const BENCH_SCALE_GRID: &[(u64, u64)] = &[
    (10_000, 10_000),
    (100_000, 10_000),
    (1_000_000, 10_000),
    (1_000_000, 20_000),
    (1_000_000, 40_000),
];

/// The `run_threads` caps the worker-count curve times, at the busiest
/// [`BENCH_SCALE_GRID`] point (1M total, 40k active).
pub const BENCH_SCALE_WORKER_CURVE: &[u32] = &[1, 2, 4, 8];

/// Time the `O(active)` scale curves against `registry`.
///
/// Each grid point builds bar-gossip through the ordinary registry
/// factory with `nodes` total nodes and the surplus held back by
/// `arrival=burst:1000000:<surplus>` — a flash crowd whose round never
/// arrives, leaving exactly `active` nodes present. Global `--param`s
/// overlay the per-point round counts, but the grid's `nodes`/`arrival`
/// axes always win (they *are* the curve).
///
/// # Errors
///
/// Propagates factory and validation errors as messages.
pub fn evaluate_bench_scale(
    registry: &ScenarioRegistry,
    opts: &Options,
) -> Result<BenchScale, String> {
    let iters = opts.bench_iters.unwrap_or(3);
    let warmup = opts.bench_warmup.unwrap_or(1);
    if iters == 0 {
        return Err("--bench-iters must be at least 1".to_string());
    }
    let seeds = SweepConfig::with_seeds(opts.seeds.unwrap_or(1)).seeds;
    if seeds.is_empty() {
        return Err("--seeds must be at least 1".to_string());
    }
    let mut points = Vec::with_capacity(BENCH_SCALE_GRID.len());
    for &(nodes, active) in BENCH_SCALE_GRID {
        let mut params = Params::new()
            .with("rounds", "8")
            .with("warmup_rounds", "2")
            .with("updates_per_round", "4")
            .with("copies_seeded", "6")
            .merged_with(&opts.params);
        params.set("nodes", nodes.to_string());
        params.set(
            "arrival",
            if active < nodes {
                format!("burst:1000000:{}", nodes - active)
            } else {
                "none".to_string()
            },
        );
        let (run_ns, step_ns, steps_per_run) = bench_scenario(
            |i| {
                let seed = seeds[i as usize % seeds.len()];
                let req = RunRequest::new(0.0, seed, "none", "fraction", &params);
                registry.build("bar-gossip", &req)
            },
            warmup,
            iters,
        )?;
        points.push(ScalePoint {
            nodes,
            active,
            steps_per_run,
            run_ns,
            step_ns: step_ns.all,
        });
    }
    let step_med = |nodes: u64, active: u64| {
        points
            .iter()
            .find(|p| p.nodes == nodes && p.active == active)
            .map(|p| p.step_ns.median_ns as f64)
            .unwrap_or(f64::NAN)
    };
    let reference = step_med(10_000, 10_000);
    let ratio = if reference > 0.0 {
        step_med(1_000_000, 10_000) / reference
    } else {
        f64::NAN
    };
    // Worker-count curve: the busiest grid point again, once per
    // `run_threads` cap. Same seeds, same rounds — the reports are
    // byte-identical across the curve (CI pins that elsewhere); only
    // the plan phase's wall-clock moves.
    let (curve_nodes, curve_active) = *BENCH_SCALE_GRID
        .last()
        .expect("the scale grid is non-empty");
    let mut worker_points = Vec::with_capacity(BENCH_SCALE_WORKER_CURVE.len());
    for &threads in BENCH_SCALE_WORKER_CURVE {
        let mut params = Params::new()
            .with("rounds", "8")
            .with("warmup_rounds", "2")
            .with("updates_per_round", "4")
            .with("copies_seeded", "6")
            .merged_with(&opts.params);
        params.set("nodes", curve_nodes.to_string());
        params.set(
            "arrival",
            format!("burst:1000000:{}", curve_nodes - curve_active),
        );
        params.set("run_threads", threads.to_string());
        let (run_ns, step_ns, steps_per_run) = bench_scenario(
            |i| {
                let seed = seeds[i as usize % seeds.len()];
                let req = RunRequest::new(0.0, seed, "none", "fraction", &params);
                registry.build("bar-gossip", &req)
            },
            warmup,
            iters,
        )?;
        worker_points.push(WorkerPoint {
            threads,
            steps_per_run,
            run_ns,
            step_ns: step_ns.all,
        });
    }
    Ok(BenchScale {
        warmup,
        iters,
        seeds: seeds.len(),
        points,
        ratio_1m_1pct_vs_10k_full: ratio,
        worker_points,
    })
}

/// Render `scale` in the requested format.
pub fn render_bench_scale(scale: &BenchScale, opts: &Options) -> String {
    match opts.format {
        Format::Json => render_bench_scale_json(scale),
        Format::Table => render_bench_scale_table(scale),
    }
}

fn render_bench_scale_json(scale: &BenchScale) -> String {
    use std::fmt::Write;
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\"bench_scale\":true");
    let _ = write!(out, ",\"unix_time\":{unix_time}");
    let _ = write!(out, ",\"warmup\":{}", scale.warmup);
    let _ = write!(out, ",\"iters\":{}", scale.iters);
    let _ = write!(out, ",\"seeds\":{}", scale.seeds);
    out.push_str(",\"points\":[");
    for (i, p) in scale.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"active\":{},\"steps_per_run\":{},\"run_ns\":{},\"step_ns\":{}}}",
            p.nodes,
            p.active,
            p.steps_per_run,
            p.run_ns.to_json(),
            p.step_ns.to_json()
        );
    }
    let _ = write!(
        out,
        "],\"ratio_1m_1pct_vs_10k_full\":{:.4}",
        scale.ratio_1m_1pct_vs_10k_full
    );
    out.push_str(",\"worker_curve\":[");
    for (i, p) in scale.worker_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"run_threads\":{},\"steps_per_run\":{},\"run_ns\":{},\"step_ns\":{}}}",
            p.threads,
            p.steps_per_run,
            p.run_ns.to_json(),
            p.step_ns.to_json()
        );
    }
    out.push_str("]}");
    out
}

fn render_bench_scale_table(scale: &BenchScale) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# lotus-bench O(active) scale curves ({} warmup + {} timed iterations, {} seed{})",
        scale.warmup,
        scale.iters,
        scale.seeds,
        if scale.seeds == 1 { "" } else { "s" }
    );
    let _ = writeln!(out);
    let mut t = Table::new(vec![
        "nodes",
        "active",
        "active %",
        "steps/run",
        "step med (ns)",
        "step p90 (ns)",
        "run min (ns)",
    ]);
    for p in &scale.points {
        t.row(vec![
            p.nodes.to_string(),
            p.active.to_string(),
            format!("{:.1}", p.active_pct()),
            p.steps_per_run.to_string(),
            p.step_ns.median_ns.to_string(),
            p.step_ns.p90_ns.to_string(),
            p.run_ns.min_ns.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "step-ns ratio, 1M total / 1% active vs 10k total / 100% active: {:.2}",
        scale.ratio_1m_1pct_vs_10k_full
    );
    if !scale.worker_points.is_empty() {
        let (nodes, active) = *BENCH_SCALE_GRID.last().expect("non-empty grid");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "# plan-phase worker curve at {nodes} total / {active} active \
             (figures byte-identical across the curve)"
        );
        let _ = writeln!(out);
        let mut t = Table::new(vec![
            "run_threads",
            "steps/run",
            "step med (ns)",
            "step p90 (ns)",
            "run min (ns)",
        ]);
        for p in &scale.worker_points {
            t.row(vec![
                p.threads.to_string(),
                p.steps_per_run.to_string(),
                p.step_ns.median_ns.to_string(),
                p.step_ns.p90_ns.to_string(),
                p.run_ns.min_ns.to_string(),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

/// Render `figure` in the requested format.
pub fn render_figure(figure: &Figure, opts: &Options) -> String {
    match opts.format {
        Format::Json => render_json(figure, opts),
        Format::Table => render_table(figure, opts),
    }
}

fn render_table(figure: &Figure, opts: &Options) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let title = opts
        .title
        .clone()
        .unwrap_or_else(|| format!("{} — {}", figure.scenario, figure.metrics[0]));
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out);
    let mut csv = Table::new(vec!["series", "x", "y"]);
    for s in &figure.series {
        for &(x, y) in &s.points {
            csv.row(vec![s.label.clone(), format!("{x:.4}"), format!("{y:.4}")]);
        }
    }
    let _ = writeln!(out, "{}", csv.to_csv());
    let in_unit = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .all(|&(_, y)| (0.0..=1.0).contains(&y));
    let cfg = PlotConfig {
        width: 64,
        height: if in_unit { 20 } else { 18 },
        x_label: opts.x_label.clone().unwrap_or_else(|| {
            if figure.sweep == "fraction" {
                "Fraction of nodes controlled by attacker".to_string()
            } else {
                figure.sweep.clone()
            }
        }),
        y_label: opts
            .y_label
            .clone()
            .unwrap_or_else(|| figure.metrics[0].clone()),
        y_range: if in_unit { Some((0.0, 1.0)) } else { None },
    };
    let _ = writeln!(out, "{}", render(&figure.series, &cfg));
    if !figure.crossovers.is_empty() {
        let mut t = Table::new(vec!["curve", "paper break point", "measured break point"]);
        for rec in &figure.crossovers {
            t.row(vec![
                rec.label.clone(),
                rec.paper.map_or("-".into(), |p| format!("{p:.2}")),
                rec.measured.map_or("-".into(), |m| format!("{m:.3}")),
            ]);
        }
        let _ = writeln!(
            out,
            "Usability line: {} > {}",
            figure.metrics[0], opts.threshold
        );
        let _ = writeln!(out, "{}", t.render());
    }
    for rec in &figure.arm_traces {
        let _ = writeln!(
            out,
            "Arm trace — {} (x={}, seed {}):",
            rec.label, rec.x, rec.seed
        );
        let arms: Vec<String> = rec
            .trace
            .iter()
            .map(|e| format!("{}({:.2})", e.arm.name(), e.mean_damage))
            .collect();
        let _ = writeln!(out, "  {}", arms.join(" "));
    }
    out
}

fn render_json(figure: &Figure, opts: &Options) -> String {
    use lotus_core::scenario::{json_number as num, json_string};
    use std::fmt::Write;
    let mut out = String::from("{");
    let _ = write!(out, "\"scenario\":{}", json_string(&figure.scenario));
    let _ = write!(out, ",\"sweep\":{}", json_string(&figure.sweep));
    let _ = write!(out, ",\"seeds\":{}", figure.seeds);
    let _ = write!(out, ",\"threshold\":{}", num(opts.threshold));
    let _ = write!(out, ",\"series\":[");
    for (i, (s, metric)) in figure.series.iter().zip(&figure.metrics).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{},\"metric\":{},\"points\":[",
            json_string(&s.label),
            json_string(metric)
        );
        for (j, &(x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", num(x), num(y));
        }
        out.push_str("]}");
    }
    out.push(']');
    if !figure.crossovers.is_empty() {
        let _ = write!(out, ",\"crossovers\":[");
        for (i, rec) in figure.crossovers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let paper = rec.paper.map_or("null".to_string(), num);
            let measured = rec.measured.map_or("null".to_string(), num);
            let _ = write!(
                out,
                "{{\"label\":{},\"paper\":{paper},\"measured\":{measured}}}",
                json_string(&rec.label)
            );
        }
        out.push(']');
    }
    if !figure.arm_traces.is_empty() {
        let _ = write!(out, ",\"arm_traces\":[");
        for (i, rec) in figure.arm_traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"x\":{},\"seed\":{},\"trace\":{}}}",
                json_string(&rec.label),
                num(rec.x),
                rec.seed,
                lotus_core::adaptive::trace_to_json(&rec.trace)
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Render the `--list` catalogue: every scenario with its attacks (one
/// documented line each), its sweepable knobs, its metrics, and — where
/// the substrate supports them — the schedule/churn axes, so timed and
/// churned presets are discoverable without reading the source.
pub fn render_list(registry: &ScenarioRegistry) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "registered scenarios:");
    for spec in registry.specs() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  {} — {}", spec.name, spec.about);
        let _ = writeln!(out, "    attacks:");
        for (name, doc) in spec.attacks {
            let _ = writeln!(out, "      {name} — {doc}");
        }
        let _ = writeln!(
            out,
            "    sweeps:  fraction{}{}",
            if spec.sweeps.is_empty() { "" } else { ", " },
            spec.sweeps.join(", ")
        );
        if spec.has_param("schedule") {
            let _ = writeln!(
                out,
                "    schedule: --schedule always|at:<r>|window:<a>:<b>|periodic:<p>:<a>|\
                 delivery-above:<x>|delivery-below:<x>|targeted-above:<x>|targeted-below:<x>|\
                 presence-above:<x>|presence-below:<x>"
            );
        }
        if spec.has_param("churn_leave") {
            let _ = writeln!(
                out,
                "    churn:   --churn <leave>[:<rejoin>]  (params churn_leave, churn_rejoin)"
            );
        }
        if spec.has_param("churn_profile") {
            let _ = writeln!(
                out,
                "    profile: --churn-profile none|uniform:<leave>[:<rejoin>]|\
                 <w>:<leave>:<rejoin>[/...]  (heterogeneous cohorts; replaces --churn)"
            );
        }
        if spec.has_param("arrival") {
            let _ = writeln!(
                out,
                "    arrival: --arrival burst:<round>:<size>[:<period>]|\
                 ramp:<start>:<size>[:<rate>]  (flash crowds; sweep arrival_size)"
            );
        }
        if spec.has_param("faults") {
            let _ = writeln!(
                out,
                "    faults:  --faults loss:<p>|dup:<p>|delay:<p>|crash:<p>:<recover>|\
                 partition:<start>:<len>:<frac> ('/'-combined; sweep fault_loss)"
            );
        }
        if spec.has_param("adaptive") {
            let _ = writeln!(
                out,
                "    adaptive: --adaptive <policy>,<phase-len>,<epsilon>[,<metric>]  \
                 (epsilon-greedy | ucb | fixed-<arm>; sweep adaptive_epsilon / \
                 adaptive_phase; adds metrics {})",
                crate::registry::ADAPTIVE_METRICS.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "    metrics: {} (default {})",
            spec.metrics.join(", "),
            spec.default_metric
        );
        let params: Vec<String> = spec
            .params
            .iter()
            .map(|(name, _)| (*name).to_string())
            .collect();
        let _ = writeln!(out, "    params:  {}", params.join(", "));
    }
    out
}

/// Parse + evaluate + render: the whole CLI as a function (testable).
///
/// # Errors
///
/// Propagates parse, validation and configuration errors as messages.
pub fn run_args(args: &[String]) -> Result<String, String> {
    let opts = parse_args(args)?;
    if opts.help {
        return Ok(format!("{USAGE}\n"));
    }
    let registry = ScenarioRegistry::standard();
    if opts.list {
        return Ok(render_list(&registry));
    }
    if opts.bench_scale {
        let scale = evaluate_bench_scale(&registry, &opts)?;
        return Ok(render_bench_scale(&scale, &opts));
    }
    if opts.bench {
        let bench = evaluate_bench(&registry, &opts)?;
        return Ok(render_bench(&bench, &opts));
    }
    let figure = evaluate(&registry, &opts)?;
    Ok(render_figure(&figure, &opts))
}

/// Whether the current process was asked for JSON output (used by shims
/// to suppress their prose epilogues).
pub fn json_requested() -> bool {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json")
}

/// Run a shim-binary preset: the preset arguments first, then the
/// process arguments (so `--quick`, `--seeds`, `--format json` and extra
/// `--param`s work on every `fig*`/`ext_*` binary), then the epilogue
/// lines (suppressed for JSON output). Exits with status 2 on errors
/// (CLI semantics).
pub fn run_shim(preset_args: &[&str], epilogue: &[&str]) {
    let mut args: Vec<String> = preset_args.iter().map(|s| (*s).to_string()).collect();
    args.extend(std::env::args().skip(1));
    // Decide from the merged (preset + process) arguments, exactly as the
    // parser will see them.
    let json = args
        .windows(2)
        .any(|w| w[0] == "--format" && w[1] == "json");
    match run_args(&args) {
        Ok(out) => {
            print!("{out}");
            if !json {
                for line in epilogue {
                    println!("{line}");
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn curve_spec_parses_overrides() {
        let c = CurveSpec::parse("trade,push_size=4,label=Push 4,paper=0.33").unwrap();
        assert_eq!(c.attack, "trade");
        assert_eq!(c.label.as_deref(), Some("Push 4"));
        assert_eq!(c.paper, Some(Some(0.33)));
        assert_eq!(c.params.get("push_size"), Some("4"));
        let c = CurveSpec::parse("crash,paper=-").unwrap();
        assert_eq!(c.paper, Some(None));
        assert!(CurveSpec::parse("").is_err());
        assert!(CurveSpec::parse("trade,oops").is_err());
    }

    #[test]
    fn unknown_flags_and_names_error() {
        assert!(run_args(&args(&["--bogus"])).is_err());
        assert!(run_args(&args(&[
            "--scenario",
            "nope",
            "--attack",
            "none",
            "--quick"
        ]))
        .is_err());
        assert!(run_args(&args(&[
            "--scenario",
            "token",
            "--attack",
            "none",
            "--metric",
            "no_such_metric",
            "--quick"
        ]))
        .is_err());
    }

    #[test]
    fn list_names_every_scenario() {
        let out = run_args(&args(&["--list"])).unwrap();
        for name in [
            "bar-gossip",
            "scrip",
            "bittorrent",
            "token",
            "scrip-gossip",
            "reputation",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn token_sweep_renders_table_and_json() {
        let base = [
            "--scenario",
            "token",
            "--attack",
            "none,random-fraction",
            "--x-values",
            "0,0.5",
            "--seeds",
            "1",
            "--param",
            "nodes=16",
            "--param",
            "rounds=30",
        ];
        let table = run_args(&args(&base)).unwrap();
        assert!(table.contains("series,x,y"), "CSV block:\n{table}");
        assert!(table.contains("random-fraction"));
        let mut json_args = base.to_vec();
        json_args.extend(["--format", "json"]);
        let json = run_args(&args(&json_args)).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"token\""));
        assert!(json.contains("\"points\":[[0,"));
    }

    #[test]
    fn faults_sugar_validates_and_sweeps_fault_loss() {
        assert!(run_args(&args(&["--faults", "bogus"])).is_err());
        let out = run_args(&args(&[
            "--scenario",
            "bar-gossip",
            "--attack",
            "masquerade",
            "--sweep",
            "fault_loss",
            "--x-values",
            "0.05,0.3",
            "--seeds",
            "1",
            "--metric",
            "attacker_cut_rate",
            "--param",
            "cutoff=3",
            "--param",
            "fraction=0.2",
            "--param",
            "nodes=40",
            "--param",
            "rounds=8",
            "--param",
            "warmup_rounds=4",
            "--param",
            "updates_per_round=4",
            "--param",
            "copies_seeded=5",
        ]))
        .unwrap();
        assert!(out.contains("masquerade"), "{out}");
    }

    #[test]
    fn bench_scale_flag_parses_and_grid_is_sane() {
        let opts = parse_args(&args(&["--bench-scale", "--bench-iters", "1"])).unwrap();
        assert!(opts.bench_scale);
        assert_eq!(opts.bench_iters, Some(1));
        assert_eq!(
            BENCH_SCALE_GRID[0],
            (10_000, 10_000),
            "first point is the headline ratio's reference"
        );
        assert!(
            BENCH_SCALE_GRID.contains(&(1_000_000, 10_000)),
            "the 1M / 1% headline point must be on the grid"
        );
        for &(nodes, active) in BENCH_SCALE_GRID {
            assert!((1..=nodes).contains(&active), "{nodes}/{active}");
        }
    }

    #[test]
    fn bench_scale_render_shapes() {
        let stats = TimingStats::from_samples(&mut [1, 2, 3]).unwrap();
        let scale = BenchScale {
            warmup: 1,
            iters: 3,
            seeds: 1,
            points: vec![ScalePoint {
                nodes: 10_000,
                active: 10_000,
                steps_per_run: 10,
                run_ns: stats,
                step_ns: stats,
            }],
            ratio_1m_1pct_vs_10k_full: 0.59,
            worker_points: vec![WorkerPoint {
                threads: 1,
                steps_per_run: 10,
                run_ns: stats,
                step_ns: stats,
            }],
        };
        let table = render_bench_scale(&scale, &Options::default());
        assert!(table.contains("O(active) scale curves"), "{table}");
        assert!(table.contains("0.59"), "{table}");
        assert!(table.contains("plan-phase worker curve"), "{table}");
        let json = render_bench_scale(
            &scale,
            &Options {
                format: Format::Json,
                ..Options::default()
            },
        );
        assert!(json.contains("\"bench_scale\":true"), "{json}");
        assert!(
            json.contains("\"ratio_1m_1pct_vs_10k_full\":0.5900"),
            "{json}"
        );
        assert!(
            json.contains("\"points\":[{\"nodes\":10000,\"active\":10000"),
            "{json}"
        );
        assert!(
            json.contains("\"worker_curve\":[{\"run_threads\":1"),
            "{json}"
        );
    }

    #[test]
    fn crossover_table_appears_with_paper_values() {
        let out = run_args(&args(&[
            "--scenario",
            "bar-gossip",
            "--curve",
            "trade,paper=0.22",
            "--x-values",
            "0,0.6",
            "--seeds",
            "1",
            "--param",
            "nodes=40",
            "--param",
            "rounds=8",
            "--param",
            "warmup_rounds=4",
            "--param",
            "updates_per_round=4",
            "--param",
            "copies_seeded=5",
        ]))
        .unwrap();
        assert!(out.contains("paper break point"), "{out}");
        assert!(out.contains("0.22"));
    }
}
