//! The scenario registry: every substrate, every attack, one driving API.
//!
//! A [`ScenarioSpec`] describes one registered scenario — its attacks,
//! tunable parameters, sweepable knobs and report metrics — plus a
//! `build` factory that constructs the substrate through the unified
//! [`Scenario`](lotus_core::scenario::Scenario) API as an unstarted
//! [`DynScenario`]. [`ScenarioRegistry::run`] drives the factory to
//! completion and returns the common-vocabulary [`ScenarioReport`];
//! the `--bench` timing mode steps the same factory under a timer. The
//! [`ScenarioRegistry`] is the name → spec map behind the `lotus-bench`
//! CLI and every `ext_*`/`fig*` shim binary; experiment logic that used
//! to be copy-pasted across 18 binaries lives here exactly once.
//!
//! ```
//! use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
//!
//! let reg = ScenarioRegistry::standard();
//! let report = reg
//!     .run("token", &RunRequest::new(0.5, 1, "random-fraction", "fraction", &Params::new()))
//!     .expect("token scenario runs");
//! assert_eq!(report.scenario, "token");
//! ```

use std::collections::BTreeMap;

use bar_gossip::scrip_gossip::{ScripGossipConfig, ScripGossipSim};
use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim, DigestExchangeConfig, ReportConfig};
use lotus_core::adaptive::{AdaptiveSpec, AttackMode, PolicyKind};
use lotus_core::attack::{SatiateCut, TokenAttack};
use lotus_core::faults::FaultPlan;
use lotus_core::population::{ArrivalProcess, ChurnProfile, ChurnSpec};
use lotus_core::scenario::{boxed, DynScenario, ScenarioReport};
use lotus_core::schedule::AttackSchedule;
use lotus_core::token::{
    Allocation, SatFunction, TokenScenarioConfig, TokenSystem, TokenSystemConfig,
};
use netsim::graph::Graph;
use netsim::rng::DetRng;
use netsim::NodeId;
use scrip_economy::reputation::{ReputationAttack, ReputationConfig, ReputationSim};
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};
use torrent_sim::{PiecePolicy, SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};

/// String-typed scenario parameters (CLI `--param key=value` pairs),
/// with typed accessors. Values are kept raw so one map serves numeric,
/// boolean and keyword parameters alike.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Set (or replace) a parameter.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    /// Builder-style [`Params::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set(key, value);
        self
    }

    /// Overlay `other` on top of `self` (curve params over global params).
    pub fn merged_with(&self, other: &Params) -> Params {
        let mut out = self.clone();
        for (k, v) in &other.0 {
            out.0.insert(k.clone(), v.clone());
        }
        out
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// Parameter names present.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Numeric value, if present.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse as a number.
    pub fn num(&self, key: &str) -> Result<Option<f64>, String> {
        match self.0.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("parameter {key}={v} is not a number")),
        }
    }

    /// Boolean value (`1`/`true`/`yes` vs `0`/`false`/`no`), if present.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a recognised boolean.
    pub fn flag(&self, key: &str) -> Result<Option<bool>, String> {
        match self.0.get(key).map(String::as_str) {
            None => Ok(None),
            Some("1" | "true" | "yes" | "on") => Ok(Some(true)),
            Some("0" | "false" | "no" | "off") => Ok(Some(false)),
            Some(v) => Err(format!("parameter {key}={v} is not a boolean")),
        }
    }
}

/// One `(x, seed)` evaluation request against a registered scenario.
#[derive(Debug, Clone)]
pub struct RunRequest<'a> {
    /// The current x-axis value.
    pub x: f64,
    /// The replication seed.
    pub seed: u64,
    /// Attack name (one of the spec's `attacks`).
    pub attack: &'a str,
    /// The knob `x` drives: `"fraction"` (attack intensity, the default)
    /// or any parameter name the spec lists under `sweeps`.
    pub sweep: &'a str,
    /// Scenario parameters.
    pub params: &'a Params,
}

impl<'a> RunRequest<'a> {
    /// Convenience constructor.
    pub fn new(x: f64, seed: u64, attack: &'a str, sweep: &'a str, params: &'a Params) -> Self {
        RunRequest {
            x,
            seed,
            attack,
            sweep,
            params,
        }
    }

    /// Numeric parameter with sweep override: when `--sweep key` is
    /// active the x value wins over any `--param key=...`.
    fn num(&self, key: &str, default: f64) -> Result<f64, String> {
        if self.sweep == key {
            return Ok(self.x);
        }
        Ok(self.params.num(key)?.unwrap_or(default))
    }

    /// Like [`RunRequest::num`] but without a default.
    fn opt_num(&self, key: &str) -> Result<Option<f64>, String> {
        if self.sweep == key {
            return Ok(Some(self.x));
        }
        self.params.num(key)
    }

    /// The attack intensity: `x` under the default fraction sweep,
    /// otherwise the `fraction` parameter (so a parameter sweep can hold
    /// the attack fixed, e.g. "trade attack at 30 %").
    fn fraction(&self, default: f64) -> Result<f64, String> {
        if self.sweep == "fraction" {
            Ok(self.x)
        } else {
            Ok(self.params.num("fraction")?.unwrap_or(default))
        }
    }
}

/// A registered scenario: documentation plus the driving function.
pub struct ScenarioSpec {
    /// Registry name (`--scenario` value).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// `(name, doc)` for every supported attack.
    pub attacks: &'static [(&'static str, &'static str)],
    /// `(name, doc)` for every supported parameter.
    pub params: &'static [(&'static str, &'static str)],
    /// Parameter names that `--sweep` may drive (besides `"fraction"`).
    pub sweeps: &'static [&'static str],
    /// Metric names the summary exposes (beyond the canonical four).
    pub metrics: &'static [&'static str],
    /// Default y-axis metric.
    pub default_metric: &'static str,
    /// Build one `(x, seed)` evaluation as an *unstarted* scenario. The
    /// sweep path ([`ScenarioRegistry::run`]) drives it to completion;
    /// the `--bench` timing mode steps the very same factory under a
    /// timer — one grammar, no hand-wired loops.
    pub build: fn(&RunRequest<'_>) -> Result<Box<dyn DynScenario>, String>,
    /// Small-config parameter overrides for the `--bench` timing mode
    /// (sized so a single run finishes in milliseconds; explicit
    /// `--param`s override them).
    pub bench_params: &'static [(&'static str, &'static str)],
}

impl ScenarioSpec {
    /// Whether `name` is a registered attack of this scenario.
    pub fn has_attack(&self, name: &str) -> bool {
        self.attacks.iter().any(|(a, _)| *a == name)
    }

    /// Whether `knob` may be swept (`"fraction"` always may).
    pub fn has_sweep(&self, knob: &str) -> bool {
        knob == "fraction" || self.sweeps.contains(&knob)
    }

    /// Whether `name` is a registered parameter.
    pub fn has_param(&self, name: &str) -> bool {
        self.params.iter().any(|(p, _)| *p == name)
    }
}

/// The name → [`ScenarioSpec`] map.
pub struct ScenarioRegistry {
    specs: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// The standard registry: every substrate in the workspace.
    pub fn standard() -> Self {
        ScenarioRegistry {
            specs: vec![
                bar_gossip_spec(),
                bar_gossip_digest_spec(),
                bar_gossip_1m_spec(),
                scrip_spec(),
                bittorrent_spec(),
                token_spec(),
                scrip_gossip_spec(),
                reputation_spec(),
            ],
        }
    }

    /// Look a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All registered scenarios, in registration order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Run one evaluation against a named scenario: build through the
    /// spec's factory, step to completion, summarize. When the run was
    /// driven by a *learning* adaptive bandit, the summary additionally
    /// carries the `adaptive_*` convergence metrics derived from the arm
    /// trace (degenerate `fixed-<arm>` policies attach nothing, so their
    /// reports stay byte-identical to the equivalent static schedule's).
    ///
    /// # Errors
    ///
    /// Unknown scenario/attack names, unknown or malformed parameters,
    /// and invalid substrate configurations all surface as messages.
    pub fn run(&self, scenario: &str, req: &RunRequest<'_>) -> Result<ScenarioReport, String> {
        let mut built = self.build(scenario, req)?;
        let mut report = built.finish();
        let learning = matches!(
            parse_adaptive(req),
            Ok(Some(spec)) if spec.needs_observation()
        );
        if learning {
            if let Some(trace) = built.arm_trace_dyn() {
                attach_adaptive_metrics(&mut report, trace);
            }
        }
        Ok(report)
    }

    /// Build one evaluation as an unstarted scenario (the timing bench's
    /// entry point), with the same name/attack/parameter validation as
    /// [`ScenarioRegistry::run`].
    ///
    /// # Errors
    ///
    /// As for [`ScenarioRegistry::run`].
    pub fn build(
        &self,
        scenario: &str,
        req: &RunRequest<'_>,
    ) -> Result<Box<dyn DynScenario>, String> {
        let spec = self.get(scenario).ok_or_else(|| {
            let known: Vec<&str> = self.specs.iter().map(|s| s.name).collect();
            format!("unknown scenario {scenario:?}; known: {}", known.join(", "))
        })?;
        if !spec.has_attack(req.attack) {
            let known: Vec<&str> = spec.attacks.iter().map(|(a, _)| *a).collect();
            return Err(format!(
                "scenario {scenario:?} has no attack {:?}; known: {}",
                req.attack,
                known.join(", ")
            ));
        }
        if !spec.has_sweep(req.sweep) {
            return Err(format!(
                "scenario {scenario:?} cannot sweep {:?}; sweepable: fraction, {}",
                req.sweep,
                spec.sweeps.join(", ")
            ));
        }
        for key in req.params.keys() {
            if !spec.has_param(key) {
                let known: Vec<&str> = spec.params.iter().map(|(p, _)| *p).collect();
                return Err(format!(
                    "scenario {scenario:?} has no parameter {key:?}; known: {}",
                    known.join(", ")
                ));
            }
        }
        (spec.build)(req)
    }
}

/// Shared parameter documentation for the cross-substrate schedule/churn
/// axes (every schedulable scenario lists these).
const SCHEDULE_PARAM_DOC: (&str, &str) = (
    "schedule",
    "attack timing: always | at:<r> | window:<a>:<b> | periodic:<p>:<a> | \
     delivery-above:<x> | delivery-below:<x> | targeted-above:<x> | targeted-below:<x> | \
     presence-above:<x> | presence-below:<x>",
);
const CHURN_LEAVE_DOC: (&str, &str) = (
    "churn_leave",
    "per-round probability a node goes offline (0 = closed population)",
);
const CHURN_REJOIN_DOC: (&str, &str) = (
    "churn_rejoin",
    "per-round probability an offline node returns (default 0.25)",
);
const CHURN_PROFILE_DOC: (&str, &str) = (
    "churn_profile",
    "heterogeneous churn cohorts: none | uniform:<leave>[:<rejoin>] | \
     <w>:<leave>:<rejoin>[/...] (up to 4 weighted classes; replaces \
     churn_leave/churn_rejoin)",
);
const ARRIVAL_DOC: (&str, &str) = (
    "arrival",
    "flash-crowd arrivals: none | burst:<round>:<size>[:<period>] | \
     ramp:<start>:<size>[:<rate>] (held-back nodes enter with empty state)",
);
const ARRIVAL_SIZE_DOC: (&str, &str) = (
    "arrival_size",
    "override (or sweep) the flash-crowd size of the configured arrival process",
);
const FAULTS_PARAM_DOC: (&str, &str) = (
    "faults",
    "fault plan: loss:<p> | dup:<p> | delay:<p> | crash:<p>:<recover> | \
     partition:<start>:<len>:<frac>, combined with '/' (default: none)",
);
const FAULT_LOSS_DOC: (&str, &str) = (
    "fault_loss",
    "override (or sweep) the message-loss rate of the fault plan",
);

const ADAPTIVE_PARAM_DOC: (&str, &str) = (
    "adaptive",
    "bandit attacker re-planning each phase from observed damage: \
     <policy>,<phase-len>,<epsilon>[,<metric>] with policy epsilon-greedy | ucb | \
     fixed-<dormant|cooperate|defect|rotate> (replaces the open-loop schedule)",
);
const ADAPTIVE_EPSILON_DOC: (&str, &str) = (
    "adaptive_epsilon",
    "override the adaptive exploration parameter (epsilon / UCB weight)",
);
const ADAPTIVE_PHASE_DOC: (&str, &str) = (
    "adaptive_phase",
    "override the adaptive phase length in rounds",
);

/// The `adaptive_*` convergence metrics every scenario report gains when
/// a bandit drove the run.
pub const ADAPTIVE_METRICS: &[&str] = &[
    "adaptive_phases",
    "adaptive_active_share",
    "adaptive_dormant_share",
    "adaptive_cooperate_share",
    "adaptive_defect_share",
    "adaptive_rotate_share",
    "adaptive_final_arm",
];

/// Parse the `faults` / `fault_loss` parameters into a fault plan. The
/// sweepable `fault_loss` override lets X19 drive the loss rate through
/// x while the rest of the plan (crashes, partitions) stays fixed.
fn parse_faults(req: &RunRequest<'_>) -> Result<FaultPlan, String> {
    let mut plan = match req.params.get("faults") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::none(),
    };
    if let Some(loss) = req.opt_num("fault_loss")? {
        if !(0.0..=1.0).contains(&loss) {
            return Err(format!("parameter fault_loss={loss} outside [0, 1]"));
        }
        plan = plan.with_loss(loss);
    }
    Ok(plan)
}

/// Parse the `schedule` parameter (default: always-on).
fn parse_schedule(req: &RunRequest<'_>) -> Result<AttackSchedule, String> {
    match req.params.get("schedule") {
        None => Ok(AttackSchedule::always()),
        Some(spec) => AttackSchedule::parse(spec),
    }
}

/// Parse the `adaptive` / `adaptive_phase` / `adaptive_epsilon`
/// parameters into a bandit spec. The numeric overrides are sweepable
/// (`--sweep adaptive_epsilon` drives x through them) and imply the
/// default epsilon-greedy policy when `adaptive` itself is absent.
fn parse_adaptive(req: &RunRequest<'_>) -> Result<Option<AdaptiveSpec>, String> {
    let base = match req.params.get("adaptive") {
        Some(spec) => Some(AdaptiveSpec::parse(spec)?),
        None => None,
    };
    let phase = req.opt_num("adaptive_phase")?;
    let epsilon = req.opt_num("adaptive_epsilon")?;
    let mut spec = match (base, phase, epsilon) {
        (None, None, None) => return Ok(None),
        (Some(s), _, _) => s,
        (None, _, _) => AdaptiveSpec::epsilon_greedy(
            AdaptiveSpec::DEFAULT_PHASE_LEN,
            AdaptiveSpec::DEFAULT_EPSILON,
        ),
    };
    if let Some(p) = phase {
        if p < 1.0 || p.fract() != 0.0 {
            return Err(format!(
                "parameter adaptive_phase={p} is not a positive round count"
            ));
        }
        spec.phase_len = p as u64;
    }
    if let Some(e) = epsilon {
        let valid = match spec.policy {
            PolicyKind::EpsilonGreedy => (0.0..=1.0).contains(&e),
            PolicyKind::Ucb1 => e >= 0.0,
            PolicyKind::Fixed(_) => true, // ignored, but keep it sane
        };
        if !valid {
            return Err(format!(
                "parameter adaptive_epsilon={e} out of range for the {:?} policy",
                spec.policy
            ));
        }
        spec.epsilon = e;
    }
    Ok(Some(spec))
}

/// Resolve the full attack-timing axis: the open-loop `schedule`
/// parameter plus the closed-loop `adaptive` family. The two are
/// mutually exclusive (the bandit owns the activity switch).
fn parse_timing(req: &RunRequest<'_>) -> Result<AttackSchedule, String> {
    let schedule = parse_schedule(req)?;
    match parse_adaptive(req)? {
        None => Ok(schedule),
        Some(adaptive) => {
            if !schedule.is_always() {
                return Err(
                    "adaptive attackers replace the schedule: drop --schedule (or keep it \
                     'always') when passing --adaptive"
                        .to_string(),
                );
            }
            Ok(schedule.with_adaptive(adaptive))
        }
    }
}

/// Attach the arm-trace convergence metrics to an adaptive run's report
/// (see [`ADAPTIVE_METRICS`]).
fn attach_adaptive_metrics(
    report: &mut ScenarioReport,
    trace: &[lotus_core::adaptive::TraceEntry],
) {
    let phases = trace.len();
    report.set_metric("adaptive_phases", phases as f64);
    if phases == 0 {
        return;
    }
    let share =
        |arm: AttackMode| trace.iter().filter(|e| e.arm == arm).count() as f64 / phases as f64;
    report.set_metric(
        "adaptive_active_share",
        trace.iter().filter(|e| e.arm.is_active()).count() as f64 / phases as f64,
    );
    report.set_metric("adaptive_dormant_share", share(AttackMode::Dormant));
    report.set_metric("adaptive_cooperate_share", share(AttackMode::Cooperate));
    report.set_metric("adaptive_defect_share", share(AttackMode::Defect));
    report.set_metric("adaptive_rotate_share", share(AttackMode::RotateDefect));
    let last = trace[phases - 1];
    report.set_metric("adaptive_final_arm", last.arm.index() as f64);
}

/// Parse the `churn_leave`/`churn_rejoin` parameters (default: none).
fn parse_churn(req: &RunRequest<'_>) -> Result<ChurnSpec, String> {
    let leave = req.num("churn_leave", 0.0)?;
    let rejoin = req.num("churn_rejoin", 0.25)?;
    for (name, p) in [("churn_leave", leave), ("churn_rejoin", rejoin)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("parameter {name}={p} outside [0, 1]"));
        }
    }
    Ok(ChurnSpec::new(leave, rejoin))
}

/// Resolve the full population axis: the heterogeneous `churn_profile`
/// (which supersedes the uniform `churn_leave`/`churn_rejoin` pair — the
/// two spellings are mutually exclusive) plus the `arrival` flash-crowd
/// process with its sweepable `arrival_size` override.
fn parse_population(req: &RunRequest<'_>) -> Result<(ChurnProfile, ArrivalProcess), String> {
    let profile = match req.params.get("churn_profile") {
        Some(spec) => {
            let uniform_axis = ["churn_leave", "churn_rejoin"];
            if uniform_axis.iter().any(|k| req.params.get(k).is_some())
                || uniform_axis.contains(&req.sweep)
            {
                return Err(
                    "churn_profile replaces the uniform axis: drop churn_leave/churn_rejoin \
                     (use uniform:<leave>:<rejoin> inside the profile instead)"
                        .to_string(),
                );
            }
            ChurnProfile::parse(spec)?
        }
        None => ChurnProfile::uniform(parse_churn(req)?),
    };
    let mut arrival = match req.params.get("arrival") {
        Some(spec) => ArrivalProcess::parse(spec)?,
        None => ArrivalProcess::None,
    };
    if let Some(size) = req.opt_num("arrival_size")? {
        if !arrival.is_some() {
            return Err(
                "arrival_size needs an arrival process: pass arrival=burst:... or ramp:..."
                    .to_string(),
            );
        }
        if size < 0.0 || size.fract() != 0.0 {
            return Err(format!(
                "parameter arrival_size={size} is not a non-negative node count"
            ));
        }
        arrival = arrival.with_size(size as u32);
    }
    Ok((profile, arrival))
}

// ---------------------------------------------------------------------
// bar-gossip
// ---------------------------------------------------------------------

fn bar_gossip_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "bar-gossip",
        about: "BAR Gossip streaming (the paper's §2 evaluation substrate)",
        attacks: &[
            ("none", "no attack (baseline)"),
            ("crash", "attacker nodes go silent"),
            ("ideal", "ideal lotus-eater: out-of-band instant forwarding"),
            ("trade", "trade lotus-eater: in-protocol give-everything"),
            (
                "masquerade",
                "plausibly-deniable defection: silence rate tracks the ambient fault rate",
            ),
        ],
        params: &[
            ("nodes", "number of nodes (Table 1: 250)"),
            ("updates_per_round", "broadcaster batch size (Table 1: 10)"),
            (
                "update_lifetime",
                "rounds before an update expires (Table 1: 10)",
            ),
            ("copies_seeded", "seed copies per update (Table 1: 12)"),
            ("push_size", "optimistic push size (Table 1: 2)"),
            ("rounds", "measured rounds"),
            ("warmup_rounds", "warm-up rounds excluded from measurement"),
            ("fraction", "attacker fraction when x sweeps another knob"),
            (
                "satiate_fraction",
                "fraction of the system targeted for satiation (paper: 0.70)",
            ),
            (
                "rotation_period",
                "rotate the satiated set every N rounds (0 = static)",
            ),
            (
                "unbalanced",
                "obedient unbalanced exchanges (Figure 3 defense)",
            ),
            (
                "rate_limit",
                "per-interaction cap on useful updates (<=0 or >=32 = uncapped)",
            ),
            (
                "report_obedient",
                "fraction of honest nodes reporting excess service (enables report-and-evict)",
            ),
            (
                "report_quorum",
                "distinct reports needed to evict (default 3)",
            ),
            (
                "report_excess_slack",
                "updates above the cap tolerated before reporting (default 1)",
            ),
            (
                "cutoff",
                "silence cut-off defense: distinct accusers needed to cut a silent node (0 = off)",
            ),
            (
                "run_threads",
                "intra-run plan-phase worker threads (0 = auto: LOTUS_RUN_THREADS, else machine parallelism; figures identical for any value)",
            ),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "rate_limit",
            "rotation_period",
            "report_obedient",
            "push_size",
            "satiate_fraction",
            "fault_loss",
            "cutoff",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "isolated_delivery",
            "satiated_delivery",
            "attacker_coverage",
            "evictions",
            "evicted_fraction",
            "junk_fraction",
            "mean_attacker_upload",
            "mean_honest_upload",
            "min_node_delivery",
            "nodes_ever_unusable",
            "unusable_node_rounds",
            "false_cut_rate",
            "attacker_cut_rate",
            "cut_precision",
            "cut_recall",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
        ],
        default_metric: "isolated_delivery",
        build: build_bar_gossip,
        bench_params: &[
            ("nodes", "60"),
            ("rounds", "12"),
            ("warmup_rounds", "6"),
            ("updates_per_round", "4"),
            ("copies_seeded", "6"),
        ],
    }
}

fn bar_gossip_config(req: &RunRequest<'_>) -> Result<BarGossipConfig, String> {
    let mut b = BarGossipConfig::builder();
    if let Some(v) = req.opt_num("nodes")? {
        b = b.nodes(v as u32);
    }
    if let Some(v) = req.opt_num("updates_per_round")? {
        b = b.updates_per_round(v as u32);
    }
    if let Some(v) = req.opt_num("update_lifetime")? {
        b = b.update_lifetime(v as u32);
    }
    if let Some(v) = req.opt_num("copies_seeded")? {
        b = b.copies_seeded(v as u32);
    }
    if let Some(v) = req.opt_num("push_size")? {
        b = b.push_size(v as u32);
    }
    if let Some(v) = req.opt_num("rounds")? {
        b = b.rounds(v as u32);
    }
    if let Some(v) = req.opt_num("warmup_rounds")? {
        b = b.warmup_rounds(v as u32);
    }
    if req.params.flag("unbalanced")?.unwrap_or(false) {
        b = b.unbalanced_exchanges(true);
    }
    if let Some(v) = req.opt_num("rate_limit")? {
        // The X9 plotting convention: the unbounded point sits at 32.
        b = b.rate_limit(if v <= 0.0 || v >= 32.0 {
            None
        } else {
            Some(v as u32)
        });
    }
    if let Some(ob) = req.opt_num("report_obedient")? {
        b = b.report_defense(ReportConfig {
            obedient_fraction: ob,
            quorum: req.num("report_quorum", 3.0)? as u32,
            excess_slack: req.num("report_excess_slack", 1.0)? as u32,
        });
    }
    if let Some(q) = req.opt_num("cutoff")? {
        if q < 0.0 || q.fract() != 0.0 {
            return Err(format!("parameter cutoff={q} is not a whole quorum size"));
        }
        b = b.cutoff_quorum(if q == 0.0 { None } else { Some(q as u32) });
    }
    if let Some(v) = req.opt_num("run_threads")? {
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!(
                "parameter run_threads={v} is not a whole worker count"
            ));
        }
        b = b.run_threads(v as usize);
    }
    let (churn, arrival) = parse_population(req)?;
    b = b.churn(churn).arrival(arrival).faults(parse_faults(req)?);
    b.build()
        .map_err(|e| format!("invalid bar-gossip config: {e}"))
}

fn bar_gossip_plan(req: &RunRequest<'_>) -> Result<AttackPlan, String> {
    let fraction = req.fraction(0.0)?;
    let satiate = req.num("satiate_fraction", AttackPlan::PAPER_SATIATE_FRACTION)?;
    let mut plan = match req.attack {
        "none" => AttackPlan::none(),
        "crash" => AttackPlan::crash(fraction),
        "ideal" => AttackPlan::ideal_lotus_eater(fraction, satiate),
        "trade" => AttackPlan::trade_lotus_eater(fraction, satiate),
        "masquerade" => AttackPlan::masquerade(fraction),
        // Only reachable through the digest spec (attack names are
        // validated against each spec's list before build).
        "poison" => AttackPlan::poison(fraction, req.num("poison_rate", 1.0)?),
        other => return Err(format!("unknown bar-gossip attack {other:?}")),
    };
    let timing = parse_timing(req)?;
    let rotation = req.num("rotation_period", 0.0)?;
    if rotation > 0.0 {
        if timing.adaptive.is_some() {
            return Err(
                "adaptive attackers rotate on their own phase clock: drop rotation_period \
                 when passing --adaptive"
                    .to_string(),
            );
        }
        plan = plan.with_rotation(rotation as u64);
    }
    plan = plan.with_schedule(timing);
    Ok(plan)
}

fn build_bar_gossip(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let cfg = bar_gossip_config(req)?;
    let plan = bar_gossip_plan(req)?;
    Ok(boxed::<BarGossipSim>(cfg, plan, req.seed))
}

/// The digest-exchange configuration of bar-gossip: the two-leg
/// advertise-then-diff round over [`lotus_core::digest`] replaces the
/// classic full-window exchange phases, hosting the
/// advertise-then-withhold (`poison`) attack and the digest-audit
/// defense alongside every classic attack.
fn bar_gossip_digest_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "bar-gossip-digest",
        about: "bar-gossip over a two-leg digest exchange (advertise, diff, transfer)",
        attacks: &[
            ("none", "no attack (baseline)"),
            ("crash", "attacker nodes go silent"),
            ("ideal", "ideal lotus-eater: out-of-band instant forwarding"),
            ("trade", "trade lotus-eater: in-protocol give-everything"),
            (
                "masquerade",
                "plausibly-deniable defection: silence rate tracks the ambient fault rate",
            ),
            (
                "poison",
                "advertise-then-withhold: truthful digest, then withhold requested \
                 updates at poison_rate (deniable against bloom false positives)",
            ),
        ],
        params: &[
            ("nodes", "number of nodes (Table 1: 250)"),
            ("updates_per_round", "broadcaster batch size (Table 1: 10)"),
            (
                "update_lifetime",
                "rounds before an update expires (Table 1: 10)",
            ),
            ("copies_seeded", "seed copies per update (Table 1: 12)"),
            ("push_size", "optimistic push size (unused by the digest round)"),
            ("rounds", "measured rounds"),
            ("warmup_rounds", "warm-up rounds excluded from measurement"),
            ("fraction", "attacker fraction when x sweeps another knob"),
            (
                "satiate_fraction",
                "fraction of the system targeted for satiation (paper: 0.70)",
            ),
            (
                "rotation_period",
                "rotate the satiated set every N rounds (0 = static)",
            ),
            (
                "unbalanced",
                "obedient unbalanced exchanges (Figure 3 defense)",
            ),
            (
                "rate_limit",
                "per-direction cap on requested updates (<=0 or >=32 = uncapped)",
            ),
            (
                "report_obedient",
                "fraction of honest nodes reporting excess service (enables report-and-evict)",
            ),
            (
                "report_quorum",
                "distinct reports needed to evict (default 3)",
            ),
            (
                "report_excess_slack",
                "updates above the cap tolerated before reporting (default 1)",
            ),
            (
                "cutoff",
                "silence cut-off defense: distinct accusers needed to cut a silent node (0 = off)",
            ),
            (
                "run_threads",
                "intra-run plan-phase worker threads (0 = auto: LOTUS_RUN_THREADS, else machine parallelism; figures identical for any value)",
            ),
            (
                "digest_bits",
                "bloom digest width in bits (default 1024; wire cost bits/8 each way)",
            ),
            ("digest_hashes", "bloom probe count per id (default 4)"),
            (
                "digest_exact",
                "advertise exact per-round region hashes instead of a bloom filter \
                 (zero false positives; delivery is identical by construction)",
            ),
            (
                "audit",
                "digest-audit defense: sampling rate per advertised-but-undelivered \
                 id, feeding the silence cut-off (0 = off; needs cutoff > 0 to bite)",
            ),
            (
                "poison_rate",
                "poison attack: probability a held, requested update is withheld \
                 (default 1.0; small values hide inside the bloom false-positive rate)",
            ),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "rate_limit",
            "rotation_period",
            "report_obedient",
            "satiate_fraction",
            "fault_loss",
            "cutoff",
            "digest_bits",
            "poison_rate",
            "audit",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "isolated_delivery",
            "satiated_delivery",
            "attacker_coverage",
            "evictions",
            "evicted_fraction",
            "junk_fraction",
            "mean_attacker_upload",
            "mean_honest_upload",
            "min_node_delivery",
            "nodes_ever_unusable",
            "unusable_node_rounds",
            "false_cut_rate",
            "attacker_cut_rate",
            "cut_precision",
            "cut_recall",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
            "digest_bytes_on_wire",
            "digest_bytes_updates",
            "digest_fp_rate",
            "digest_requests",
            "digest_withheld",
        ],
        default_metric: "isolated_delivery",
        build: build_bar_gossip_digest,
        bench_params: &[
            ("nodes", "60"),
            ("rounds", "12"),
            ("warmup_rounds", "6"),
            ("updates_per_round", "4"),
            ("copies_seeded", "6"),
        ],
    }
}

fn build_bar_gossip_digest(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let mut cfg = bar_gossip_config(req)?;
    let bits = req.num("digest_bits", 1024.0)?;
    let hashes = req.num("digest_hashes", 4.0)?;
    for (name, v) in [("digest_bits", bits), ("digest_hashes", hashes)] {
        if v < 1.0 || v.fract() != 0.0 {
            return Err(format!(
                "parameter {name}={v} is not a positive whole number"
            ));
        }
    }
    cfg.digest = Some(DigestExchangeConfig {
        bits: bits as u32,
        hashes: hashes as u32,
        exact: req.params.flag("digest_exact")?.unwrap_or(false),
        audit: req.num("audit", 0.0)?,
    });
    // The builder validated the base config; revalidate for the digest
    // block set after the fact.
    cfg.validate()
        .map_err(|e| format!("invalid bar-gossip-digest config: {e}"))?;
    let plan = bar_gossip_plan(req)?;
    Ok(boxed::<BarGossipSim>(cfg, plan, req.seed))
}

/// The million-node scale configuration of bar-gossip: a 1 000 000-node
/// universe where 99 % of the population is a flash crowd
/// (`ArrivalProcess::Burst`) that lands in the run's final round. The
/// registered defaults keep the run small enough for `--bench` — the
/// sharded `O(active)` engine carries ~10 000 present nodes until the
/// crowd arrives — while any explicit `--param` (or sweep) still wins.
fn bar_gossip_1m_spec() -> ScenarioSpec {
    let base = bar_gossip_spec();
    ScenarioSpec {
        name: "bar-gossip-1m",
        about: "bar-gossip at 1M nodes behind a flash crowd (O(active) scale config)",
        attacks: base.attacks,
        params: base.params,
        sweeps: base.sweeps,
        metrics: base.metrics,
        default_metric: base.default_metric,
        build: build_bar_gossip_1m,
        bench_params: &[],
    }
}

fn build_bar_gossip_1m(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let mut base = Params::new();
    base.set("nodes", "1000000");
    // A run executes warmup + measured + lifetime drain rounds (2+4+4 =
    // 10 here); the 990k held-back nodes burst in at the final round, so
    // every benched run pays exactly one full-crowd round — the engine's
    // O(active) steady state for nine steps, then a million-node engage
    // and exchange round. Move the burst earlier (e.g.
    // --param arrival=burst:5:990000) to land the crowd inside the
    // measured metric window instead; each earlier round is another
    // full-crowd round of wall-clock.
    base.set("arrival", "burst:9:990000");
    base.set("rounds", "4");
    base.set("warmup_rounds", "2");
    base.set("update_lifetime", "4");
    base.set("updates_per_round", "4");
    base.set("copies_seeded", "6");
    let params = base.merged_with(req.params);
    let scaled = RunRequest {
        params: &params,
        ..*req
    };
    build_bar_gossip(&scaled)
}

// ---------------------------------------------------------------------
// scrip
// ---------------------------------------------------------------------

fn scrip_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "scrip",
        about: "Scrip economy (KFH EC'07): conserved money as the satiation currency",
        attacks: &[
            ("none", "no attack (baseline)"),
            (
                "lotus-eater",
                "keep a fraction of agents topped up to their thresholds",
            ),
            ("retainer", "hoard an endowment without satiating anyone"),
        ],
        params: &[
            ("agents", "number of agents"),
            (
                "money_per_agent",
                "initial scrip per agent (the money supply)",
            ),
            ("threshold", "stop-providing balance threshold k"),
            ("availability", "probability an agent can serve in a round"),
            ("altruists", "number of always-free providers"),
            (
                "adaptive_thresholds",
                "agents adapt their thresholds (altruist-crash dynamics)",
            ),
            ("rounds", "measured rounds"),
            ("warmup", "warm-up rounds"),
            ("fraction", "targeted fraction when x sweeps another knob"),
            (
                "endowment",
                "attacker's share of the money supply (default 1.0 = all of it)",
            ),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "altruists",
            "money_per_agent",
            "threshold",
            "fault_loss",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "service_rate",
            "free_rate",
            "paid_rate",
            "fail_broke_rate",
            "fail_no_volunteer_rate",
            "special_service_rate",
            "mean_satiated_fraction",
            "target_satiation",
            "mean_threshold",
            "gini",
            "attacker_money",
            "total_money",
            "fail_faulted_rate",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
        ],
        default_metric: "target_satiation",
        build: build_scrip,
        bench_params: &[("agents", "60"), ("rounds", "2000"), ("warmup", "200")],
    }
}

fn build_scrip(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let mut b = ScripConfig::builder();
    if let Some(v) = req.opt_num("agents")? {
        b = b.agents(v as u32);
    }
    if let Some(v) = req.opt_num("money_per_agent")? {
        b = b.money_per_agent(v as u32);
    }
    if let Some(v) = req.opt_num("threshold")? {
        b = b.threshold(v as u32);
    }
    if let Some(v) = req.opt_num("availability")? {
        b = b.availability(v);
    }
    if let Some(v) = req.opt_num("altruists")? {
        b = b.altruists(v as u32);
    }
    if let Some(v) = req.params.flag("adaptive_thresholds")? {
        b = b.adaptive(v);
    }
    if let Some(v) = req.opt_num("rounds")? {
        b = b.rounds(v as u64);
    }
    if let Some(v) = req.opt_num("warmup")? {
        b = b.warmup(v as u64);
    }
    let (churn, arrival) = parse_population(req)?;
    b = b
        .schedule(parse_timing(req)?)
        .churn(churn)
        .arrival(arrival)
        .faults(parse_faults(req)?);
    let cfg = b
        .build()
        .map_err(|e| format!("invalid scrip config: {e}"))?;
    let endowment = req.num("endowment", 1.0)?;
    let attack = match req.attack {
        "none" => ScripAttack::None,
        "lotus-eater" => ScripAttack::lotus_eater(req.fraction(0.0)?, endowment),
        "retainer" => ScripAttack::retainer(endowment),
        other => return Err(format!("unknown scrip attack {other:?}")),
    };
    Ok(boxed::<ScripSim>(cfg, attack, req.seed))
}

// ---------------------------------------------------------------------
// bittorrent
// ---------------------------------------------------------------------

fn bittorrent_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "bittorrent",
        about: "Simplified BitTorrent swarm: the substrate the attack barely dents (§1)",
        attacks: &[
            ("none", "no attack (baseline)"),
            (
                "satiate",
                "attacker peers upload generously, but only to their targets",
            ),
        ],
        params: &[
            ("leechers", "number of leechers"),
            ("origin_seeds", "number of origin seeds"),
            ("pieces", "pieces in the file"),
            ("unchoke_slots", "tit-for-tat unchoke slots per peer"),
            ("piece_policy", "piece selection: rarest | random"),
            (
                "seed_after_completion",
                "rounds a finished leecher lingers as a seed",
            ),
            ("max_rounds", "simulation horizon"),
            (
                "fraction",
                "targeted leecher fraction when x sweeps another knob",
            ),
            ("attacker_peers", "number of attacker peers (0 = no attack)"),
            ("attacker_slots", "upload slots per attacker peer"),
            (
                "target_policy",
                "target choice: random | rare (rare-piece holders)",
            ),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "attacker_peers",
            "pieces",
            "leechers",
            "fault_loss",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "mean_completion",
            "mean_completion_nontargeted",
            "mean_completion_targeted",
            "p95_completion_nontargeted",
            "attacker_upload",
            "honest_upload",
            "duplicates",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
        ],
        default_metric: "mean_completion_nontargeted",
        build: build_bittorrent,
        bench_params: &[("leechers", "25"), ("pieces", "32")],
    }
}

fn build_bittorrent(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let mut b = SwarmConfig::builder();
    if let Some(v) = req.opt_num("leechers")? {
        b = b.leechers(v as u32);
    }
    if let Some(v) = req.opt_num("origin_seeds")? {
        b = b.seeds(v as u32);
    }
    if let Some(v) = req.opt_num("pieces")? {
        b = b.pieces(v as u32);
    }
    if let Some(v) = req.opt_num("unchoke_slots")? {
        b = b.unchoke_slots(v as u32);
    }
    if let Some(v) = req.opt_num("seed_after_completion")? {
        b = b.seed_after_completion(v as u32);
    }
    if let Some(v) = req.opt_num("max_rounds")? {
        b = b.max_rounds(v as u64);
    }
    match req.params.get("piece_policy") {
        None | Some("rarest") => {}
        Some("random") => b = b.piece_policy(PiecePolicy::Random),
        Some(other) => return Err(format!("unknown piece_policy {other:?} (rarest | random)")),
    }
    let (churn, arrival) = parse_population(req)?;
    b = b.churn(churn).arrival(arrival).faults(parse_faults(req)?);
    let cfg = b
        .build()
        .map_err(|e| format!("invalid bittorrent config: {e}"))?;
    let attack = match req.attack {
        "none" => SwarmAttack::none(),
        "satiate" => {
            let peers = req.num("attacker_peers", 4.0)? as u32;
            let slots = req.num("attacker_slots", 8.0)? as u32;
            let fraction = req.fraction(0.33)?;
            let policy = match req.params.get("target_policy") {
                None | Some("random") => TargetPolicy::Random,
                Some("rare") => TargetPolicy::RarePieceHolders,
                Some(other) => {
                    return Err(format!("unknown target_policy {other:?} (random | rare)"))
                }
            };
            if peers == 0 || fraction <= 0.0 {
                SwarmAttack::none()
            } else {
                SwarmAttack::satiate(peers, slots, fraction, policy)
            }
        }
        other => return Err(format!("unknown bittorrent attack {other:?}")),
    };
    let attack = attack.with_schedule(parse_timing(req)?);
    Ok(boxed::<SwarmSim>(cfg, attack, req.seed))
}

// ---------------------------------------------------------------------
// token
// ---------------------------------------------------------------------

fn token_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "token",
        about: "The paper's §3 abstract token-collecting model (G, T, sat, f, c, a)",
        attacks: &[
            ("none", "no attack (baseline)"),
            (
                "random-fraction",
                "mass satiation of a random fraction each round",
            ),
            ("rare-holders", "satiate every current holder of one token"),
            (
                "rotating",
                "rotate the satiated fraction every `period` rounds",
            ),
            ("cut-column", "satiate one grid column (a vertex cut)"),
            (
                "cut-plan",
                "plan a cut with the BFS-layer heuristic from node 0",
            ),
        ],
        params: &[
            ("nodes", "number of nodes (complete/er/geometric graphs)"),
            ("tokens", "size of the token universe"),
            ("altruism", "probability a satiated node still responds"),
            ("contacts_per_round", "gossip contacts per node per round"),
            ("rounds", "simulation horizon (default 150)"),
            ("graph", "topology: complete | grid | er | geometric"),
            ("rows", "grid rows"),
            ("cols", "grid columns"),
            ("er_p", "Erdős–Rényi edge probability"),
            ("radius", "random-geometric connection radius"),
            (
                "allocation",
                "initial allocation: uniform | rare | rare-spread",
            ),
            (
                "copies",
                "copies per token (uniform) / per non-rare token (rare)",
            ),
            (
                "rare_holders",
                "initial holders of token 0 (rare-spread allocation)",
            ),
            (
                "redundancy",
                "coding defense: satiation needs (tokens - redundancy) tokens",
            ),
            ("fraction", "satiated fraction when x sweeps another knob"),
            ("token", "which token rare-holders chases (default 0)"),
            (
                "budget",
                "satiations per round the attacker can afford (0 = unlimited)",
            ),
            ("period", "rotation period in rounds (rotating attack)"),
            ("cut_col", "which grid column to cut (default cols/2)"),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "altruism",
            "rare_holders",
            "redundancy",
            "tokens",
            "budget",
            "fault_loss",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "mean_coverage",
            "min_coverage",
            "untouched_mean_coverage",
            "untouched_satisfied",
            "attacked_nodes",
            "final_satiated_fraction",
            "all_satiated_at",
            "token0_reach",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
        ],
        default_metric: "untouched_mean_coverage",
        build: build_token,
        bench_params: &[("nodes", "40"), ("rounds", "60")],
    }
}

/// Draw the configured topology, re-drawing random graphs (up to 50
/// attempts) until connected, as every token experiment requires.
fn token_graph(req: &RunRequest<'_>) -> Result<Graph, String> {
    let nodes = req.num("nodes", 60.0)? as u32;
    match req.params.get("graph").unwrap_or("complete") {
        "complete" => Ok(Graph::complete(nodes)),
        "grid" => {
            let rows = req.num("rows", 8.0)? as u32;
            let cols = req.num("cols", 12.0)? as u32;
            Ok(Graph::grid(rows, cols, false))
        }
        kind @ ("er" | "geometric") => {
            let rng = DetRng::seed_from(req.seed).fork("topology");
            for attempt in 0..50 {
                let g = match kind {
                    "er" => Graph::erdos_renyi(
                        nodes,
                        req.num("er_p", 0.08)?,
                        &mut rng.fork_idx("try", attempt),
                    ),
                    _ => Graph::random_geometric(
                        nodes,
                        req.num("radius", 0.17)?,
                        &mut rng.fork_idx("try", attempt),
                    ),
                };
                if g.is_connected() {
                    return Ok(g);
                }
            }
            Err(format!("no connected {kind} draw within 50 attempts"))
        }
        other => Err(format!(
            "unknown graph {other:?} (complete | grid | er | geometric)"
        )),
    }
}

fn token_allocation(
    req: &RunRequest<'_>,
    n: u32,
    tokens: usize,
) -> Result<Option<Allocation>, String> {
    let copies = req.num("copies", 4.0)? as usize;
    match req.params.get("allocation") {
        None | Some("uniform") => Ok(if req.params.get("copies").is_some() {
            Some(Allocation::UniformCopies { copies })
        } else {
            None // keep the builder default
        }),
        Some("rare") => Ok(Some(Allocation::RareToken {
            holder: NodeId(0),
            copies,
        })),
        Some("rare-spread") => {
            // Token 0 starts at the first `rare_holders` nodes; every other
            // token gets `copies` deterministically scattered holders (the
            // X3 rare-token-denial layout).
            let holders = (req.num("rare_holders", 1.0)? as u32).clamp(1, n);
            let mut lists: Vec<Vec<NodeId>> = vec![(0..holders).map(NodeId).collect()];
            for t in 1..tokens as u32 {
                lists.push(
                    (0..copies as u32)
                        .map(|i| NodeId((t * 5 + i) % n))
                        .collect(),
                );
            }
            Ok(Some(Allocation::Explicit(lists)))
        }
        Some(other) => Err(format!(
            "unknown allocation {other:?} (uniform | rare | rare-spread)"
        )),
    }
}

fn token_attack(req: &RunRequest<'_>, graph: &Graph) -> Result<TokenAttack, String> {
    let attack = match req.attack {
        "none" => TokenAttack::none(),
        "random-fraction" => TokenAttack::random_fraction(req.fraction(0.5)?),
        "rare-holders" => TokenAttack::rare_holders(req.num("token", 0.0)? as usize),
        "rotating" => TokenAttack::rotating(req.fraction(0.3)?, req.num("period", 10.0)? as u64),
        "cut-column" => {
            let rows = req.num("rows", 8.0)? as u32;
            let cols = req.num("cols", 12.0)? as u32;
            let col = req.num("cut_col", f64::from(cols / 2))? as u32;
            TokenAttack::cut(SatiateCut::grid_column(rows, cols, col))
        }
        // The planner can fail on cut-free graphs — that failure IS the
        // §3 point that random graphs resist structural attacks, so it
        // degrades to the null attack rather than erroring.
        "cut-plan" => match SatiateCut::plan(graph, NodeId(0)) {
            Some(cut) => TokenAttack::cut(cut),
            None => TokenAttack::none(),
        },
        other => return Err(format!("unknown token attack {other:?}")),
    };
    let budget = req.num("budget", 0.0)? as usize;
    Ok(if budget > 0 {
        attack.budgeted(budget)
    } else {
        attack
    })
}

fn build_token(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let graph = token_graph(req)?;
    let n = graph.len();
    let attack = token_attack(req, &graph)?;
    let mut b = TokenSystemConfig::builder(graph);
    let tokens = req.num("tokens", 12.0)? as usize;
    b = b.tokens(tokens);
    if let Some(v) = req.opt_num("altruism")? {
        b = b.altruism(v);
    }
    if let Some(v) = req.opt_num("contacts_per_round")? {
        b = b.contacts_per_round(v as usize);
    }
    let redundancy = req.num("redundancy", 0.0)? as usize;
    if redundancy > 0 {
        b = b.sat(SatFunction::AnyK(tokens.saturating_sub(redundancy).max(1)));
    }
    if let Some(alloc) = token_allocation(req, n, tokens)? {
        b = b.allocation(alloc);
    }
    let cfg = b
        .build()
        .map_err(|e| format!("invalid token config: {e}"))?;
    let rounds = req.num("rounds", 150.0)? as u64;
    let (churn, arrival) = parse_population(req)?;
    let scenario_cfg = TokenScenarioConfig::new(cfg, rounds)
        .with_schedule(parse_timing(req)?)
        .with_churn(churn)
        .with_arrival(arrival)
        .with_faults(parse_faults(req)?);
    Ok(boxed::<TokenSystem>(scenario_cfg, attack, req.seed))
}

// ---------------------------------------------------------------------
// scrip-gossip
// ---------------------------------------------------------------------

fn scrip_gossip_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "scrip-gossip",
        about: "Scrip-mediated gossip: the §4 'incentive-compatible gossip' sketch, built",
        attacks: &[
            ("none", "no attack (baseline)"),
            ("crash", "attacker nodes go silent"),
            ("ideal", "ideal lotus-eater (out-of-band forwarding)"),
            (
                "trade",
                "trade lotus-eater (update gifts cannot silence a seller)",
            ),
            (
                "masquerade",
                "plausibly-deniable defection: silence rate tracks the ambient fault rate",
            ),
        ],
        params: &[
            ("nodes", "number of nodes"),
            ("updates_per_round", "broadcaster batch size"),
            ("update_lifetime", "rounds before an update expires"),
            ("copies_seeded", "seed copies per update"),
            ("push_size", "optimistic push size"),
            ("rounds", "measured rounds"),
            ("warmup_rounds", "warm-up rounds"),
            ("fraction", "attacker fraction when x sweeps another knob"),
            (
                "satiate_fraction",
                "fraction targeted for satiation (paper: 0.70)",
            ),
            (
                "cutoff",
                "silence cut-off defense: distinct accusers needed to cut a silent node (0 = off)",
            ),
            FAULTS_PARAM_DOC,
            FAULT_LOSS_DOC,
            SCHEDULE_PARAM_DOC,
            ADAPTIVE_PARAM_DOC,
            ADAPTIVE_EPSILON_DOC,
            ADAPTIVE_PHASE_DOC,
            CHURN_LEAVE_DOC,
            CHURN_REJOIN_DOC,
            CHURN_PROFILE_DOC,
            ARRIVAL_DOC,
            ARRIVAL_SIZE_DOC,
        ],
        sweeps: &[
            "fault_loss",
            "cutoff",
            "churn_leave",
            "churn_rejoin",
            "arrival_size",
            "adaptive_epsilon",
            "adaptive_phase",
        ],
        metrics: &[
            "isolated_delivery",
            "satiated_delivery",
            "refusal_rate",
            "broke_rate",
            "total_money",
            "false_cut_rate",
            "attacker_cut_rate",
            "cut_precision",
            "cut_recall",
            "faults_dropped",
            "faults_duplicated",
            "faults_delayed",
            "faults_crashes",
            "faults_partition_blocked",
        ],
        default_metric: "isolated_delivery",
        build: build_scrip_gossip,
        bench_params: &[
            ("nodes", "60"),
            ("rounds", "12"),
            ("warmup_rounds", "6"),
            ("updates_per_round", "4"),
            ("copies_seeded", "6"),
        ],
    }
}

fn build_scrip_gossip(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let base = bar_gossip_config(req)?;
    let cfg = ScripGossipConfig::new(base);
    let plan = bar_gossip_plan(req)?;
    Ok(boxed::<ScripGossipSim>(cfg, plan, req.seed))
}

// ---------------------------------------------------------------------
// reputation
// ---------------------------------------------------------------------

fn reputation_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "reputation",
        about: "Minted reputation as the satiation currency (no supply wall, only a bill)",
        attacks: &[
            ("none", "no attack (baseline)"),
            ("inflate", "fake praise tops targets up to their thresholds"),
        ],
        params: &[
            ("agents", "number of agents"),
            ("threshold", "stop-volunteering reputation threshold"),
            ("decay", "multiplicative per-round reputation decay"),
            ("availability", "probability an agent can serve in a round"),
            ("rounds", "measured rounds"),
            ("warmup", "warm-up rounds"),
            ("fraction", "targeted fraction when x sweeps another knob"),
        ],
        sweeps: &[],
        metrics: &[
            "service_rate",
            "denied_rate",
            "no_volunteer_rate",
            "target_satiation",
            "attacker_cost_per_round",
        ],
        default_metric: "target_satiation",
        build: build_reputation,
        bench_params: &[("agents", "60"), ("rounds", "2000"), ("warmup", "200")],
    }
}

fn build_reputation(req: &RunRequest<'_>) -> Result<Box<dyn DynScenario>, String> {
    let mut cfg = ReputationConfig::default();
    if let Some(v) = req.opt_num("agents")? {
        cfg.agents = v as u32;
    }
    if let Some(v) = req.opt_num("threshold")? {
        cfg.threshold = v;
    }
    if let Some(v) = req.opt_num("decay")? {
        cfg.decay = v;
    }
    if let Some(v) = req.opt_num("availability")? {
        cfg.availability = v;
    }
    if let Some(v) = req.opt_num("rounds")? {
        cfg.rounds = v as u64;
    }
    if let Some(v) = req.opt_num("warmup")? {
        cfg.warmup = v as u64;
    }
    cfg.validate()
        .map_err(|e| format!("invalid reputation config: {e}"))?;
    let attack = match req.attack {
        "none" => ReputationAttack::None,
        "inflate" => ReputationAttack::Inflate {
            target_fraction: req.fraction(0.0)?,
        },
        other => return Err(format!("unknown reputation attack {other:?}")),
    };
    Ok(boxed::<ReputationSim>(cfg, attack, req.seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::scenario::Summarize;

    #[test]
    fn every_spec_is_internally_consistent() {
        let reg = ScenarioRegistry::standard();
        assert!(reg.specs().len() >= 4, "all four substrates register");
        for spec in reg.specs() {
            assert!(spec.has_attack("none"), "{} needs a baseline", spec.name);
            assert!(
                spec.metrics.contains(&spec.default_metric),
                "{}: default metric must be listed",
                spec.name
            );
            for knob in spec.sweeps {
                assert!(
                    spec.has_param(knob),
                    "{}: sweepable knob {knob} must be a parameter",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let reg = ScenarioRegistry::standard();
        let p = Params::new();
        let req = RunRequest::new(0.0, 1, "none", "fraction", &p);
        assert!(reg.run("no-such-scenario", &req).is_err());
        let req = RunRequest::new(0.0, 1, "no-such-attack", "fraction", &p);
        assert!(reg.run("token", &req).is_err());
        let bad = Params::new().with("no_such_param", "1");
        let req = RunRequest::new(0.0, 1, "none", "fraction", &bad);
        assert!(reg.run("token", &req).is_err());
    }

    #[test]
    fn every_scenario_runs_its_baseline() {
        let reg = ScenarioRegistry::standard();
        // Small/fast overrides per scenario so the test stays quick.
        let shrink: &[(&str, &[(&str, &str)])] = &[
            (
                "bar-gossip",
                &[
                    ("nodes", "40"),
                    ("rounds", "8"),
                    ("warmup_rounds", "4"),
                    ("updates_per_round", "4"),
                    ("copies_seeded", "5"),
                ],
            ),
            (
                "bar-gossip-digest",
                &[
                    ("nodes", "40"),
                    ("rounds", "8"),
                    ("warmup_rounds", "4"),
                    ("updates_per_round", "4"),
                    ("copies_seeded", "5"),
                ],
            ),
            (
                "scrip",
                &[("agents", "30"), ("rounds", "400"), ("warmup", "50")],
            ),
            ("bittorrent", &[("leechers", "10"), ("pieces", "12")]),
            ("token", &[("nodes", "20"), ("rounds", "40")]),
            (
                "scrip-gossip",
                &[
                    ("nodes", "40"),
                    ("rounds", "8"),
                    ("warmup_rounds", "4"),
                    ("updates_per_round", "4"),
                    ("copies_seeded", "5"),
                ],
            ),
            (
                "reputation",
                &[("agents", "30"), ("rounds", "400"), ("warmup", "50")],
            ),
        ];
        for (name, overrides) in shrink {
            let mut p = Params::new();
            for (k, v) in *overrides {
                p.set(*k, *v);
            }
            let req = RunRequest::new(0.0, 1, "none", "fraction", &p);
            let report = reg
                .run(name, &req)
                .unwrap_or_else(|e| panic!("{name} baseline failed: {e}"));
            assert_eq!(&report.scenario, name);
            let again = reg.run(name, &req).unwrap();
            assert_eq!(report, again, "{name}: registry path must be deterministic");
        }
    }

    #[test]
    fn bar_gossip_1m_params_override_the_scale_defaults() {
        // With every scale default overridden explicitly, the 1M spec is
        // plain bar-gossip: the overlay must let the caller's params win.
        let reg = ScenarioRegistry::standard();
        let p = Params::new()
            .with("nodes", "300")
            .with("arrival", "burst:9:250")
            .with("rounds", "4")
            .with("warmup_rounds", "2")
            .with("update_lifetime", "4")
            .with("updates_per_round", "4")
            .with("copies_seeded", "6");
        let req = RunRequest::new(0.0, 1, "none", "fraction", &p);
        let via_1m = reg.run("bar-gossip-1m", &req).unwrap();
        let via_base = reg.run("bar-gossip", &req).unwrap();
        assert_eq!(via_1m, via_base);
    }

    #[test]
    fn registry_matches_direct_scenario_path() {
        // The CLI path (registry) and the library path (Scenario API) must
        // produce identical numbers for identical inputs.
        let reg = ScenarioRegistry::standard();
        let p = Params::new()
            .with("nodes", "50")
            .with("rounds", "10")
            .with("warmup_rounds", "5")
            .with("updates_per_round", "4")
            .with("copies_seeded", "5");
        let req = RunRequest::new(0.3, 7, "trade", "fraction", &p);
        let via_registry = reg.run("bar-gossip", &req).unwrap();

        let cfg = BarGossipConfig::builder()
            .nodes(50)
            .rounds(10)
            .warmup_rounds(5)
            .updates_per_round(4)
            .copies_seeded(5)
            .build()
            .unwrap();
        let plan = AttackPlan::trade_lotus_eater(0.3, AttackPlan::PAPER_SATIATE_FRACTION);
        let direct = lotus_core::scenario::run::<BarGossipSim>(cfg, plan, 7).summarize();
        assert_eq!(via_registry, direct);
    }
}
