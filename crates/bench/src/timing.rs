//! Dependency-free wall-clock timing for scenario hot loops.
//!
//! The ROADMAP's north star is a system that "runs as fast as the
//! hardware allows" — which is unfalsifiable without measurement. This
//! module is the measurement: a tiny `std::time::Instant` harness that
//! warms a scenario factory up, then times N full runs and N per-step
//! traces, and reports robust order statistics (min / median / p90 /
//! mean) in nanoseconds. The `lotus-bench --bench` mode drives it through
//! the registry's scenario factories, so the thing being timed is exactly
//! the code path every figure sweep executes.
//!
//! Timings are wall-clock and therefore machine- and load-dependent; the
//! JSON record (see [`BenchRecord::to_json`]) is meant to be captured as
//! `BENCH_<date>.json` next to the code it measured, so successive PRs
//! can quote their perf delta against the previous record *on the same
//! machine* rather than against folklore.

use lotus_core::scenario::DynScenario;
use std::time::Instant;

/// Order statistics over a set of duration samples, in nanoseconds.
///
/// ```
/// use lotus_bench::timing::TimingStats;
/// let stats = TimingStats::from_samples(&mut [30, 10, 20, 40, 50]).unwrap();
/// assert_eq!(stats.min_ns, 10);
/// assert_eq!(stats.median_ns, 30);
/// assert_eq!(stats.mean_ns, 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample (nearest-rank).
    pub median_ns: u64,
    /// 90th-percentile sample (nearest-rank).
    pub p90_ns: u64,
    /// Arithmetic mean, rounded to the nearest nanosecond.
    pub mean_ns: u64,
    /// Number of samples the statistics summarise.
    pub samples: u64,
}

impl TimingStats {
    /// Summarise `samples` (sorted in place). Returns `None` when empty.
    pub fn from_samples(samples: &mut [u64]) -> Option<TimingStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        Some(TimingStats {
            min_ns: samples[0],
            median_ns: rank(0.5),
            p90_ns: rank(0.9),
            mean_ns: (sum / samples.len() as u128) as u64,
            samples: samples.len() as u64,
        })
    }

    /// Serialize as a JSON object with stable keys
    /// (`min`/`median`/`p90`/`mean`/`samples`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"min\":{},\"median\":{},\"p90\":{},\"mean\":{},\"samples\":{}}}",
            self.min_ns, self.median_ns, self.p90_ns, self.mean_ns, self.samples
        )
    }
}

/// How far above the median a step sample must sit to count as a burst
/// step (see [`StepTimings`]).
pub const BURST_FACTOR: u64 = 8;

/// Per-step statistics with the steady-state/burst split.
///
/// A scenario with a flash crowd (or any other single catastrophic
/// round) has a bimodal step distribution: `bar-gossip-1m` steps in
/// ~1 ms for nine rounds and then pays one million-node engage round of
/// ~1 s, which drags the step *mean* three orders of magnitude away
/// from the step *median*. Summarising that with one set of order
/// statistics buries both modes, so the step trace is split at
/// [`BURST_FACTOR`] × median: `warm` summarises the steady-state
/// rounds, `burst` the outliers (absent when the distribution has no
/// such tail — at least half of all samples always sit at or below the
/// threshold, so `warm` is never empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTimings {
    /// Statistics over every step sample (the pre-split aggregate).
    pub all: TimingStats,
    /// Statistics over steady-state steps (≤ [`BURST_FACTOR`] × median).
    pub warm: TimingStats,
    /// Statistics over burst steps (> [`BURST_FACTOR`] × median), when
    /// any exist.
    pub burst: Option<TimingStats>,
}

impl StepTimings {
    /// Summarise `samples` (sorted in place) with the warm/burst split.
    /// Returns `None` when empty.
    pub fn from_samples(samples: &mut [u64]) -> Option<StepTimings> {
        let all = TimingStats::from_samples(samples)?;
        // `samples` is sorted now; the split point is the first sample
        // past the burst threshold.
        let threshold = all.median_ns.saturating_mul(BURST_FACTOR);
        let cut = samples.partition_point(|&s| s <= threshold);
        let (warm, burst) = samples.split_at_mut(cut);
        Some(StepTimings {
            all,
            warm: TimingStats::from_samples(warm)
                .expect("the median is always at or below the burst threshold"),
            burst: TimingStats::from_samples(burst),
        })
    }
}

/// The timing record of one benched `(scenario, attack)` pair.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Attack the scenario ran under.
    pub attack: String,
    /// Steps a single run executes (from the step-timing pass).
    pub steps_per_run: u64,
    /// Full-run wall-clock statistics (build excluded, all steps).
    pub run_ns: TimingStats,
    /// Per-step wall-clock statistics (every step of every iteration),
    /// including the warm/burst split.
    pub step_ns: StepTimings,
}

impl BenchRecord {
    /// Serialize as a JSON object with stable keys (`scenario`/`attack`/
    /// `steps_per_run`/`run_ns`/`step_ns`, plus `step_warm_ns` and —
    /// when a burst tail exists — `step_burst_ns`; the perf gate reads
    /// only `run_ns`, so the split keys are additive).
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"scenario\":{},\"attack\":{},\"steps_per_run\":{},\"run_ns\":{},\"step_ns\":{},\"step_warm_ns\":{}",
            lotus_core::scenario::json_string(&self.scenario),
            lotus_core::scenario::json_string(&self.attack),
            self.steps_per_run,
            self.run_ns.to_json(),
            self.step_ns.all.to_json(),
            self.step_ns.warm.to_json()
        );
        if let Some(burst) = &self.step_ns.burst {
            json.push_str(",\"step_burst_ns\":");
            json.push_str(&burst.to_json());
        }
        json.push('}');
        json
    }
}

/// Time a scenario factory: `warmup` untimed runs, then `iters` timed
/// full runs, then `iters` step-traced runs.
///
/// `build` receives the iteration index (warmup first, then run-timing,
/// then step-timing iterations, numbered consecutively from 0) so callers
/// can rotate replication seeds; building is *outside* the timers, so the
/// statistics isolate the round loops the simulators actually spend their
/// sweeps in.
///
/// Returns `(run_stats, step_stats, steps_per_run)`; the step stats
/// carry the warm/burst split (see [`StepTimings`]).
///
/// # Errors
///
/// Propagates factory errors; rejects `iters == 0`.
pub fn bench_scenario<F>(
    mut build: F,
    warmup: u32,
    iters: u32,
) -> Result<(TimingStats, StepTimings, u64), String>
where
    F: FnMut(u32) -> Result<Box<dyn DynScenario>, String>,
{
    if iters == 0 {
        return Err("bench needs at least one timed iteration".to_string());
    }
    let mut iteration = 0u32;
    let mut next = |build: &mut F| -> Result<Box<dyn DynScenario>, String> {
        let s = build(iteration);
        iteration += 1;
        s
    };
    for _ in 0..warmup {
        next(&mut build)?.finish();
    }
    let mut run_samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut s = next(&mut build)?;
        let t0 = Instant::now();
        while !s.step_dyn().is_done() {}
        run_samples.push(t0.elapsed().as_nanos() as u64);
    }
    let mut step_samples = Vec::new();
    let mut steps_per_run = 0u64;
    for i in 0..iters {
        let mut s = next(&mut build)?;
        let mut steps = 0u64;
        loop {
            let t0 = Instant::now();
            let outcome = s.step_dyn();
            step_samples.push(t0.elapsed().as_nanos() as u64);
            steps += 1;
            if outcome.is_done() {
                break;
            }
        }
        if i == 0 {
            steps_per_run = steps;
        }
    }
    let run = TimingStats::from_samples(&mut run_samples).expect("iters >= 1");
    let step = StepTimings::from_samples(&mut step_samples).expect("iters >= 1");
    Ok((run, step, steps_per_run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::scenario::{ScenarioReport, StepOutcome};

    struct Spin {
        left: u32,
    }

    impl DynScenario for Spin {
        fn name(&self) -> &'static str {
            "spin"
        }

        fn step_dyn(&mut self) -> StepOutcome {
            if self.left == 0 {
                return StepOutcome::Done;
            }
            // Burn a little deterministic work so timings are nonzero.
            let mut acc = 0u64;
            for i in 0..500u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            self.left -= 1;
            if self.left == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }

        fn report_dyn(&self) -> ScenarioReport {
            ScenarioReport::new("spin", 0, 1.0, 1.0, true)
        }
    }

    #[test]
    fn stats_order_statistics() {
        let mut samples: Vec<u64> = (1..=10).collect();
        let stats = TimingStats::from_samples(&mut samples).unwrap();
        assert_eq!(stats.min_ns, 1);
        assert_eq!(stats.median_ns, 6, "nearest-rank median of 1..=10");
        assert_eq!(stats.p90_ns, 9);
        assert_eq!(stats.mean_ns, 5, "55/10 rounded down");
        assert_eq!(stats.samples, 10);
        assert!(TimingStats::from_samples(&mut []).is_none());
    }

    #[test]
    fn stats_json_has_stable_keys() {
        let stats = TimingStats::from_samples(&mut [5]).unwrap();
        assert_eq!(
            stats.to_json(),
            "{\"min\":5,\"median\":5,\"p90\":5,\"mean\":5,\"samples\":1}"
        );
    }

    #[test]
    fn bench_counts_steps_and_times_them() {
        let (run, step, steps) = bench_scenario(|_| Ok(Box::new(Spin { left: 7 })), 1, 3).unwrap();
        assert_eq!(steps, 7, "7 step calls reach Done");
        assert_eq!(run.samples, 3);
        assert_eq!(step.all.samples, 21);
        let burst = step.burst.map_or(0, |b| b.samples);
        assert_eq!(
            step.warm.samples + burst,
            21,
            "the split partitions the trace"
        );
        assert!(run.min_ns > 0, "a 7-step run takes measurable time");
        assert!(run.min_ns >= step.all.min_ns, "a run contains its steps");
    }

    #[test]
    fn step_split_separates_flash_crowd_rounds() {
        // Nine steady ~1ms rounds and one 1s flash-crowd round: the
        // bar-gossip-1m shape that skewed the aggregate mean 100x off
        // the median.
        let mut samples = [vec![1_000_000u64; 9], vec![1_000_000_000]].concat();
        let step = StepTimings::from_samples(&mut samples).unwrap();
        assert_eq!(step.all.samples, 10);
        assert_eq!(step.warm.samples, 9);
        assert_eq!(
            step.warm.mean_ns, 1_000_000,
            "warm mean tracks the steady rounds"
        );
        let burst = step.burst.expect("the flash-crowd round is a burst");
        assert_eq!(burst.samples, 1);
        assert_eq!(burst.min_ns, 1_000_000_000);
        assert!(
            step.all.mean_ns > 100 * step.all.median_ns,
            "the aggregate mean is the skewed statistic the split fixes"
        );
    }

    #[test]
    fn step_split_without_a_tail_has_no_burst() {
        let mut samples: Vec<u64> = (100..110).collect();
        let step = StepTimings::from_samples(&mut samples).unwrap();
        assert_eq!(step.warm, step.all, "uniform traces are all warm");
        assert!(step.burst.is_none());
        assert!(StepTimings::from_samples(&mut []).is_none());
    }

    #[test]
    fn bench_rejects_zero_iters() {
        assert!(bench_scenario(|_| Ok(Box::new(Spin { left: 1 })), 0, 0).is_err());
    }

    #[test]
    fn bench_propagates_factory_errors() {
        let err = bench_scenario(|_| Err("boom".to_string()), 0, 1);
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn record_json_shape() {
        let stats = TimingStats::from_samples(&mut [1, 2, 3]).unwrap();
        let step = StepTimings::from_samples(&mut [1, 2, 3, 100]).unwrap();
        let rec = BenchRecord {
            scenario: "bar-gossip".to_string(),
            attack: "none".to_string(),
            steps_per_run: 12,
            run_ns: stats,
            step_ns: step,
        };
        let j = rec.to_json();
        for key in [
            "\"scenario\":\"bar-gossip\"",
            "\"attack\":\"none\"",
            "\"steps_per_run\":12",
            "\"run_ns\":{\"min\":1",
            "\"step_ns\":{\"min\":1",
            "\"step_warm_ns\":{\"min\":1",
            "\"step_burst_ns\":{\"min\":100",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }

        let no_burst = BenchRecord {
            step_ns: StepTimings {
                burst: None,
                ..step
            },
            ..rec
        };
        assert!(
            !no_burst.to_json().contains("step_burst_ns"),
            "burst key is omitted when there is no tail"
        );
    }
}
