//! `lotus-bench` — the figure/table regeneration harness.
//!
//! The heart of the crate is the unified runner: [`registry`] maps every
//! substrate to a named [`ScenarioSpec`](registry::ScenarioSpec) driven
//! through the `lotus_core::scenario` API, and [`runner`] is the single
//! CLI (`lotus-bench --scenario ... --attack ...`) that sweeps any of
//! them. One binary per paper artifact remains (see `src/bin/`): `table1`,
//! `fig1`, `fig2`, `fig3` reproduce the paper's quantitative evaluation
//! and the `ext_*` binaries turn each of the paper's §1/§3/§4 analytical
//! claims into a measured experiment — but each is now a thin preset over
//! the runner (a registry lookup plus an argument list). Criterion
//! micro-benchmarks of every substrate live in `benches/`.
//!
//! Every binary accepts `--quick` (fewer seeds and sweep points) so CI can
//! smoke-test it, plus every other runner flag (`--seeds`, `--format
//! json`, extra `--param`s), and prints the blocks the harness promises:
//! a CSV of the series, an ASCII rendering of the figure, and — where
//! paper values exist — a paper-vs-measured crossover table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod runner;
pub mod timing;

use bar_gossip::{AttackKind, AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_core::report::{CrossoverRecord, UsabilityThreshold};
use lotus_core::sweep::{sweep_fraction, SweepConfig};
use netsim::metrics::Series;
use netsim::plot::{render, PlotConfig};
use netsim::table::Table;

/// Sweep fidelity, selected by the `--quick` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full sweep: paper-quality resolution (default).
    Full,
    /// Smoke-test sweep for CI.
    Quick,
}

impl Fidelity {
    /// Parse from process arguments (`--quick` selects [`Fidelity::Quick`]).
    pub fn from_args() -> Fidelity {
        if std::env::args().any(|a| a == "--quick") {
            Fidelity::Quick
        } else {
            Fidelity::Full
        }
    }

    /// Seeds to average over.
    pub fn seeds(self) -> usize {
        match self {
            Fidelity::Full => 5,
            Fidelity::Quick => 2,
        }
    }

    /// Points on the attacker-fraction axis over `[lo, hi]`.
    pub fn grid(self, lo: f64, hi: f64) -> Vec<f64> {
        let points = match self {
            Fidelity::Full => 21,
            Fidelity::Quick => 7,
        };
        lotus_core::sweep::grid(lo, hi, points)
    }

    /// The matching sweep configuration.
    pub fn sweep(self) -> SweepConfig {
        SweepConfig::with_seeds(self.seeds())
    }

    /// Timed iterations per scenario in `--bench` mode.
    pub fn bench_iters(self) -> u32 {
        match self {
            Fidelity::Full => 12,
            Fidelity::Quick => 3,
        }
    }

    /// Untimed warmup runs per scenario in `--bench` mode.
    pub fn bench_warmup(self) -> u32 {
        match self {
            Fidelity::Full => 3,
            Fidelity::Quick => 1,
        }
    }
}

/// Run one attack curve over attacker fractions for a BAR Gossip config:
/// y = mean isolated-node delivery.
pub fn attack_curve(
    label: impl Into<String>,
    kind: AttackKind,
    cfg: &BarGossipConfig,
    xs: &[f64],
    sweep: &SweepConfig,
) -> Series {
    let cfg = cfg.clone();
    sweep_fraction(label, xs, sweep, move |x, seed| {
        let plan = match kind {
            AttackKind::None => AttackPlan::none(),
            AttackKind::Crash => AttackPlan::crash(x),
            AttackKind::IdealLotusEater => {
                AttackPlan::ideal_lotus_eater(x, AttackPlan::PAPER_SATIATE_FRACTION)
            }
            AttackKind::TradeLotusEater => {
                AttackPlan::trade_lotus_eater(x, AttackPlan::PAPER_SATIATE_FRACTION)
            }
            AttackKind::Masquerade => AttackPlan::masquerade(x),
            // Full-strength withholding; use the registry's
            // `poison_rate` param for graded curves.
            AttackKind::Poison => AttackPlan::poison(x, 1.0),
        };
        BarGossipSim::new(cfg.clone(), plan, seed)
            .run_to_report()
            .isolated_delivery()
    })
}

/// Print a figure: header, CSV, ASCII chart, and crossover records.
pub fn print_figure(
    title: &str,
    series: &[Series],
    paper_crossovers: &[(usize, Option<f64>)],
    x_label: &str,
) {
    println!("# {title}");
    println!();
    // CSV block.
    let mut csv = Table::new(vec!["series", "x", "y"]);
    for s in series {
        for &(x, y) in &s.points {
            csv.row(vec![s.label.clone(), format!("{x:.4}"), format!("{y:.4}")]);
        }
    }
    println!("{}", csv.to_csv());
    // ASCII chart.
    let cfg = PlotConfig {
        width: 64,
        height: 20,
        x_label: x_label.to_string(),
        y_label: "Fraction of updates received by isolated nodes".to_string(),
        y_range: Some((0.0, 1.0)),
    };
    println!("{}", render(series, &cfg));
    // Crossover table (93% usability line).
    let mut t = Table::new(vec!["curve", "paper break point", "measured break point"]);
    for &(idx, paper) in paper_crossovers {
        let rec = CrossoverRecord::from_curve(&series[idx], UsabilityThreshold::BAR_GOSSIP, paper);
        t.row(vec![
            rec.label.clone(),
            paper.map_or("-".into(), |p| format!("{p:.2}")),
            rec.measured.map_or("-".into(), |m| format!("{m:.3}")),
        ]);
    }
    println!("Usability line: isolated delivery > 0.93");
    println!("{}", t.render());
}

/// Print a generic experiment table (for the `ext_*` binaries).
pub fn print_series_table(title: &str, series: &[Series], x_label: &str, y_label: &str) {
    println!("# {title}");
    println!();
    let mut csv = Table::new(vec!["series", "x", "y"]);
    for s in series {
        for &(x, y) in &s.points {
            csv.row(vec![s.label.clone(), format!("{x:.4}"), format!("{y:.4}")]);
        }
    }
    println!("{}", csv.to_csv());
    let cfg = PlotConfig {
        width: 64,
        height: 18,
        x_label: x_label.to_string(),
        y_label: y_label.to_string(),
        y_range: None,
    };
    println!("{}", render(series, &cfg));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_parameters() {
        assert_eq!(Fidelity::Full.seeds(), 5);
        assert_eq!(Fidelity::Quick.seeds(), 2);
        assert_eq!(Fidelity::Quick.grid(0.0, 1.0).len(), 7);
        assert_eq!(Fidelity::Full.grid(0.0, 1.0).len(), 21);
    }

    #[test]
    fn attack_curve_produces_points() {
        let cfg = BarGossipConfig::builder()
            .nodes(40)
            .updates_per_round(4)
            .copies_seeded(5)
            .rounds(10)
            .warmup_rounds(5)
            .build()
            .unwrap();
        let sweep = SweepConfig {
            seeds: vec![1],
            threads: 2,
        };
        let s = attack_curve("crash", AttackKind::Crash, &cfg, &[0.0, 0.5], &sweep);
        assert_eq!(s.points.len(), 2);
        assert!(s.points[0].1 >= s.points[1].1, "crash hurts");
    }
}
