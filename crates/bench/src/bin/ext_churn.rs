//! X16 — churn-gossip: the lotus-eater attack on an open population.
//!
//! The paper's figures assume a closed population; real gossip systems
//! churn. This preset sweeps the per-round departure probability
//! (`churn_leave`, returns at 0.25/round) on the Table-1 BAR Gossip
//! system, clean and under a 22 % trade lotus-eater — the paper's
//! break-even attacker size. Churn and the attack compound: departures
//! thin the honest exchange pool exactly where satiation already silenced
//! the satiated set, so the usability bar falls at *smaller* attacker
//! fractions than the closed-population crossover suggests.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack none,trade \
//!     --sweep churn_leave --x-values 0,0.01,0.02,0.05,0.1 --quick
//! lotus-bench --bench --scenario bar-gossip --curve "none,churn_leave=0.05"
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X16 — Churn-gossip (delivery vs per-round departure rate)",
            "--sweep",
            "churn_leave",
            "--x-values",
            "0,0.005,0.01,0.02,0.05,0.1",
            "--x-label",
            "per-round departure probability (rejoin at 0.25/round)",
            "--y-label",
            "delivery at expiry",
            "--param",
            "rounds=60",
            "--param",
            "fraction=0.22",
            "--curve",
            "none,label=no attack",
            "--curve",
            "trade,label=trade attack at 22%",
            "--curve",
            "trade,metric=isolated_delivery,label=trade at 22%: isolated nodes",
        ],
        &[
            "Churn alone degrades delivery gracefully — absent nodes miss",
            "updates but the seeding spread covers the rest. Under the trade",
            "attack the same churn bites much harder: the isolated nodes'",
            "curve drops through the 93% usability bar at departure rates the",
            "clean system shrugs off, because the attacker already removed",
            "the satiated set from the honest exchange pool.",
        ],
    );
}
