//! X19 — graceful degradation under faults, and plausible deniability.
//!
//! Sweeps the message-loss rate on the two gossip substrates with the
//! silence cut-off defense armed (`cutoff=3`). Two stories in one figure:
//!
//! * **Graceful degradation** — delivery on the clean system falls
//!   smoothly with the loss rate on both vanilla BAR Gossip and the
//!   scrip-mediated variant; faults alone never cliff the way the
//!   lotus-eater attack does.
//! * **Plausible deniability** — a fault-masquerading defector stays
//!   silent at exactly the ambient fault rate. On a clean network
//!   (`fault_loss=0`) it never defects and the defense has nothing to
//!   cut; as loss rises, the defense's false-cut rate on *honest* nodes
//!   climbs toward its cut rate on the masqueraders — the attacker's
//!   defection becomes statistically indistinguishable from weather.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack masquerade --param cutoff=3 \
//!     --sweep fault_loss --x-values 0,0.1,0.2,0.3 --quick
//! lotus-bench --bench --scenario bar-gossip \
//!     --curve "masquerade,faults=loss:0.1,cutoff=3"
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X19 — Faults and plausible deniability (cutoff quorum 3)",
            "--sweep",
            "fault_loss",
            "--x-values",
            "0,0.05,0.1,0.2,0.3",
            "--x-label",
            "per-delivery message-loss probability",
            "--y-label",
            "delivery / cut rate",
            "--param",
            "rounds=60",
            "--param",
            "fraction=0.2",
            "--param",
            "cutoff=3",
            "--curve",
            "none,label=bar-gossip: clean delivery",
            "--curve",
            "masquerade,label=bar-gossip: delivery vs masquerade at 20%",
            "--curve",
            "none,metric=false_cut_rate,label=bar-gossip: honest false-cut rate",
            "--curve",
            "masquerade,metric=attacker_cut_rate,label=bar-gossip: masquerader cut rate",
            "--curve",
            "none,scenario=scrip-gossip,label=scrip-gossip: clean delivery",
            "--curve",
            "masquerade,scenario=scrip-gossip,metric=attacker_cut_rate,\
             label=scrip-gossip: masquerader cut rate",
        ],
        &[
            "Faults degrade both substrates gracefully: delivery slides with",
            "the loss rate, no cliff. The defense-side story is the sharp one:",
            "at zero loss the masquerader is perfectly deniable (it never",
            "defects) and nobody is cut; at moderate loss the cutoff catches",
            "masqueraders faster than honest unlucky nodes; as loss climbs the",
            "honest false-cut rate converges toward the masquerader cut rate",
            "and the defense's precision collapses — plausible deniability,",
            "quantified.",
        ],
    );
}
