//! X20 — digest gossip and the advertise-then-withhold attack.
//!
//! Two figures over the `bar-gossip-digest` scenario (the two-leg
//! advertise/diff/transfer round):
//!
//! * **Delivery** — the classic attacks (crash-free trade, fault
//!   masquerade) next to the digest-native *poison* attacker, who
//!   advertises truthfully and then withholds requested updates. At
//!   `poison_rate=1.0` it starves like a crash once attackers dominate;
//!   at a low rate it hides inside the bloom digest's false-positive
//!   floor. The digest-audit defense (sample
//!   advertised-but-undelivered ids, feed the silence cut-off) claws
//!   delivery back from the full-rate poisoner.
//! * **Bandwidth** — attempted bytes on the wire per curve. The digest
//!   round ships only the diff, so bytes fall as the poisoner withholds
//!   (silence is cheap) and stay flat under trade (gifts ride outside
//!   the digest legs) — delivery and bandwidth move on different axes,
//!   which is the attack's whole economy.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip-digest --attack poison \
//!     --param poison_rate=0.15 --sweep fraction --quick
//! lotus-bench --scenario bar-gossip-digest --attack none \
//!     --sweep digest_bits --x-values 256,512,1024,4096
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip-digest",
            "--title",
            "X20 — Digest gossip: advertise-then-withhold vs the classic attacks",
            "--x-values",
            "0,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9",
            "--x-label",
            "attacker fraction",
            "--y-label",
            "isolated-node delivery",
            "--param",
            "rounds=60",
            "--curve",
            "none,label=no attack",
            "--curve",
            "trade,label=trade lotus-eater",
            "--curve",
            "masquerade,faults=loss:0.05,cutoff=3,label=masquerade over 5% loss (cutoff 3)",
            "--curve",
            "poison,label=poison: withhold every request",
            "--curve",
            "poison,poison_rate=0.15,label=poison: withhold 15% (deniable)",
            "--curve",
            "poison,audit=0.02,cutoff=3,label=poison vs digest audit (cutoff 3)",
        ],
        &[
            "Gossip redundancy absorbs withholding: any honest partner fills",
            "the diff, so the full-rate poisoner needs near-majority control",
            "before isolated delivery cliffs — and at 15% withholding it is",
            "both harmless and statistically hidden under the digest's own",
            "false positives. Auditing advertised-but-undelivered ids arms the",
            "silence cut-off against exactly this: the full-rate poisoner is",
            "cut early and delivery recovers.",
        ],
    );
    run_shim(
        &[
            "--scenario",
            "bar-gossip-digest",
            "--title",
            "X20b — Bytes on the wire under the digest round",
            "--x-values",
            "0,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9",
            "--x-label",
            "attacker fraction",
            "--y-label",
            "attempted bytes on the wire",
            "--param",
            "rounds=60",
            "--curve",
            "none,metric=digest_bytes_on_wire,label=bytes: no attack",
            "--curve",
            "trade,metric=digest_bytes_on_wire,label=bytes: trade lotus-eater",
            "--curve",
            "poison,metric=digest_bytes_on_wire,label=bytes: poison (rate 1.0)",
        ],
        &[
            "The transfer leg dominates the byte bill, so wire cost tracks",
            "useful work: the poisoner's withholding *saves* bytes while it",
            "starves delivery (defection is cheaper than cooperation), and",
            "trade's gifts ride outside the digest legs entirely. Digest",
            "advertisements themselves are a flat, tunable overhead",
            "(digest_bits/8 per exchange each way).",
        ],
    );
}
