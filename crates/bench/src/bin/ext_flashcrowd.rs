//! X18 — flash-crowd gossip: synchronized arrivals meet the lotus-eater.
//!
//! Real deployments see *flash crowds*: a synchronized burst of fresh
//! nodes joining with empty state when new content drops. This preset
//! lands the same burst on two substrates under the same attack sweep
//! and shows the interaction has *opposite signs*:
//!
//! * **BAR Gossip — the crowd amplifies the defection.** A crowd of 75
//!   empty-window nodes (30 % of the system) at round 20 costs ~2 points
//!   of isolated delivery on its own and the system stays usable. Under
//!   a trade lotus-eater the same crowd's loss is *superadditive*: the
//!   newcomers depend on exactly the balanced-exchange partners the
//!   attacker silenced, so the usability crossover moves to *smaller*
//!   attacker fractions than the closed-population sweep suggests. The
//!   `presence-above` schedule variant is the patient striker that
//!   cooperates until the crowd lands, then defects into the spike.
//! * **BitTorrent — the defection masks the crowd.** Late-joining
//!   leechers slow the swarm's mean completion; but the satiation
//!   attacker's upload capacity absorbs the newcomers' demand, so
//!   completion times *improve* with attacker fraction even mid-crowd —
//!   the §1 "barely dents" result, now with arrivals.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack trade --arrival burst:20:75 \
//!     --schedule presence-above:0.99 --quick
//! lotus-bench --scenario bittorrent --attack satiate \
//!     --sweep arrival_size --x-values 0,10,20,40 --param arrival=burst:10:1
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X18 — Flash crowds vs the lotus-eater (burst arrivals on two substrates)",
            "--x-values",
            "0,0.05,0.11,0.17,0.22,0.28,0.33",
            "--x-label",
            "attacker fraction",
            "--y-label",
            "isolated delivery (gossip) / rounds to complete (swarm)",
            "--curve",
            "trade,rounds=60,label=gossip: trade (closed)",
            "--curve",
            "trade,rounds=60,arrival=burst:20:75,label=gossip: trade + crowd@20",
            "--curve",
            "trade,rounds=60,arrival=burst:20:75,schedule=presence-above:0.99,\
             label=gossip: strike when the crowd lands",
            "--curve",
            "none,rounds=60,arrival=burst:20:75,label=gossip: crowd only",
            "--curve",
            "satiate,scenario=bittorrent,arrival=burst:10:15,label=swarm: satiate + crowd@10",
            "--curve",
            "none,scenario=bittorrent,arrival=burst:10:15,label=swarm: crowd only",
        ],
        &[
            "The gossip crowd costs ~2 points of isolated delivery on its",
            "own; under the trade attack the loss is superadditive and the",
            "93% usability bar falls at smaller attacker fractions than the",
            "closed sweep predicts — newcomers depend on exactly the",
            "exchange partners the attacker silenced. The presence-triggered",
            "variant cooperates until the crowd lands, then defects into the",
            "spike. On the swarm the sign flips: the satiation attacker's",
            "upload capacity absorbs the crowd's demand, so nontargeted",
            "completion *improves* with attacker fraction — the attack",
            "masks the crowd (and the crowd masks the attack).",
        ],
    );
}
