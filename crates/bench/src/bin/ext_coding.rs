//! X10 — §4: coding changes the satiation function and blunts rare-token
//! attacks.
//!
//! With Avalanche-style network coding a node needs any `k` of the `n`
//! coded tokens instead of all of them. The rare-token denial attack —
//! devastating under collect-all — becomes irrelevant as soon as the
//! redundancy `n - k` exceeds the number of tokens an attacker can deny.

use lotus_bench::{print_series_table, Fidelity};
use lotus_core::attack::{NoAttack, SatiateRareHolders};
use lotus_core::token::{Allocation, SatFunction, TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use netsim::metrics::Series;
use netsim::NodeId;

const TOKENS: usize = 16;

fn satisfied_fraction(redundancy: usize, seed: u64, attacked: bool, rounds: u64) -> f64 {
    let need = TOKENS - redundancy;
    let cfg = TokenSystemConfig::builder(Graph::complete(60))
        .tokens(TOKENS)
        .sat(if redundancy == 0 {
            SatFunction::CollectAll
        } else {
            SatFunction::AnyK(need)
        })
        .allocation(Allocation::RareToken {
            holder: NodeId(0),
            copies: 4,
        })
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, seed);
    let report = if attacked {
        sys.run(&mut SatiateRareHolders::new(0), rounds)
    } else {
        sys.run(&mut NoAttack, rounds)
    };
    // Fraction of untouched nodes that reached satiation (got the content).
    let sat = match redundancy {
        0 => SatFunction::CollectAll,
        _ => SatFunction::AnyK(need),
    };
    let attacked_set: std::collections::HashSet<_> =
        report.attacked_nodes.iter().copied().collect();
    let mut ok = 0;
    let mut total = 0;
    for v in (0..60).map(NodeId) {
        if attacked_set.contains(&v) {
            continue;
        }
        total += 1;
        if sat.is_satiated(sys.holdings(v)) {
            ok += 1;
        }
    }
    f64::from(ok) / f64::from(total.max(1))
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let rounds = 100;
    let redundancies = [0usize, 1, 2, 4, 6, 8];

    let mut attacked = Series::new("rare-token attack");
    let mut clean = Series::new("no attack");
    for &r in &redundancies {
        let (mut a, mut c) = (0.0, 0.0);
        for &s in &seeds {
            a += satisfied_fraction(r, s, true, rounds);
            c += satisfied_fraction(r, s, false, rounds);
        }
        let n = seeds.len() as f64;
        attacked.push(r as f64, a / n);
        clean.push(r as f64, c / n);
    }

    print_series_table(
        "X10 — Coding defense: need (16 - redundancy) of 16 coded tokens",
        &[clean, attacked],
        "redundancy (extra coded tokens)",
        "fraction of untouched nodes satisfied",
    );
    println!("Redundancy 0 = collect-all: denying the one rare token denies everyone.");
    println!("Any redundancy >= 1 makes the rare token skippable (paper §4, Avalanche).");
}
