//! X10 — §4: coding changes the satiation function and blunts rare-token
//! attacks.
//!
//! With Avalanche-style network coding a node needs any `k` of the `n`
//! coded tokens instead of all of them. The rare-token denial attack —
//! devastating under collect-all — becomes irrelevant as soon as the
//! redundancy `n - k` exceeds the number of tokens an attacker can deny.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "token",
            "--title",
            "X10 — Coding defense: need (16 - redundancy) of 16 coded tokens",
            "--sweep",
            "redundancy",
            "--x-values",
            "0,1,2,4,6,8",
            "--x-label",
            "redundancy (extra coded tokens)",
            "--y-label",
            "fraction of untouched nodes satisfied",
            "--metric",
            "untouched_satisfied",
            "--param",
            "nodes=60",
            "--param",
            "tokens=16",
            "--param",
            "allocation=rare",
            "--param",
            "copies=4",
            "--param",
            "rounds=100",
            "--curve",
            "none,label=no attack",
            "--curve",
            "rare-holders,label=rare-token attack",
        ],
        &[
            "Redundancy 0 = collect-all: denying the one rare token denies everyone.",
            "Any redundancy >= 1 makes the rare token skippable (paper §4, Avalanche).",
        ],
    );
}
