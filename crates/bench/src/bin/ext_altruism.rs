//! X1 — §3: altruism `a` mitigates satiation attacks.
//!
//! Token-collecting model under a mass-satiation attack (half the nodes
//! satiated every round). Sweeping the altruism probability `a` shows the
//! paper's claim: "any system with a > 0 will eventually end up with all
//! nodes satiated", and even small `a` restores most of the coverage the
//! attack denies, because satiated nodes keep responding occasionally.

use lotus_bench::{print_series_table, Fidelity};
use lotus_core::attack::{NoAttack, SatiateRandomFraction};
use lotus_core::sweep::sweep_fraction;
use netsim::graph::Graph;
use netsim::rng::DetRng;

fn coverage(a: f64, seed: u64, attacked: bool, rounds: u64) -> f64 {
    let rng = DetRng::seed_from(seed);
    let graph = Graph::erdos_renyi(80, 0.08, &mut rng.fork("topology"));
    if !graph.is_connected() {
        // Rare for these parameters; fall back to a connected topology.
        return coverage(a, seed + 1000, attacked, rounds);
    }
    let cfg = lotus_core::token::TokenSystemConfig::builder(graph)
        .tokens(24)
        .altruism(a)
        .contacts_per_round(1)
        .build()
        .expect("valid config");
    let mut sys = lotus_core::token::TokenSystem::new(cfg, seed);
    let report = if attacked {
        sys.run(&mut SatiateRandomFraction::new(0.5), rounds)
    } else {
        sys.run(&mut NoAttack, rounds)
    };
    report.untouched_mean_coverage()
}

fn main() {
    let fidelity = Fidelity::from_args();
    let xs = fidelity.grid(0.0, 0.5);
    let sweep = fidelity.sweep();
    let rounds = match fidelity {
        Fidelity::Full => 150,
        Fidelity::Quick => 60,
    };

    let attacked = sweep_fraction(
        "attacked (50% satiated every round)",
        &xs,
        &sweep,
        |a, seed| coverage(a, seed, true, rounds),
    );
    let clean = sweep_fraction("no attack", &xs, &sweep, |a, seed| {
        coverage(a, seed, false, rounds)
    });

    print_series_table(
        "X1 — Altruism restores coverage under mass satiation (token model)",
        &[clean, attacked],
        "altruism probability a",
        "mean final coverage of untouched nodes",
    );
    println!("Paper §3: a > 0 guarantees eventual global satiation; altruism is the mitigation.");
}
