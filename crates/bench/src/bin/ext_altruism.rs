//! X1 — §3: altruism `a` mitigates satiation attacks.
//!
//! Token-collecting model under a mass-satiation attack (half the nodes
//! satiated every round). Sweeping the altruism probability `a` shows the
//! paper's claim: "any system with a > 0 will eventually end up with all
//! nodes satiated", and even small `a` restores most of the coverage the
//! attack denies, because satiated nodes keep responding occasionally.

use lotus_bench::runner::run_shim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { "rounds=60" } else { "rounds=150" };
    run_shim(
        &[
            "--scenario",
            "token",
            "--title",
            "X1 — Altruism restores coverage under mass satiation (token model)",
            "--sweep",
            "altruism",
            "--fraction-grid",
            "0:0.5",
            "--x-label",
            "altruism probability a",
            "--y-label",
            "mean final coverage of untouched nodes",
            "--metric",
            "untouched_mean_coverage",
            "--param",
            "graph=er",
            "--param",
            "er_p=0.08",
            "--param",
            "nodes=80",
            "--param",
            "tokens=24",
            "--param",
            "contacts_per_round=1",
            "--param",
            rounds,
            "--curve",
            "none,label=no attack",
            "--curve",
            "random-fraction,fraction=0.5,label=attacked (50% satiated every round)",
        ],
        &["Paper §3: a > 0 guarantees eventual global satiation; altruism is the mitigation."],
    );
}
