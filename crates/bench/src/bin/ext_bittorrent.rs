//! X6 — §1: the lotus-eater attack barely dents BitTorrent.
//!
//! The attacker satiates a third of the leechers with generous uploads;
//! they finish early and leave. "Since most leechers are downloading more
//! than they upload, this is often actually a net benefit to the torrent"
//! — non-targeted completion times stay flat (or improve) as attacker
//! resources grow, in sharp contrast to BAR Gossip's collapse (fig1).

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bittorrent",
            "--title",
            "X6 — Satiation attack on a BitTorrent swarm (40 leechers, 33% targeted)",
            "--sweep",
            "attacker_peers",
            "--x-values",
            "0,1,2,4,6,8,12",
            "--x-label",
            "attacker peers (8 upload slots each)",
            "--y-label",
            "mean completion round",
            "--param",
            "leechers=40",
            "--param",
            "origin_seeds=1",
            "--param",
            "pieces=48",
            "--param",
            "max_rounds=1500",
            "--param",
            "fraction=0.33",
            "--param",
            "attacker_slots=8",
            "--curve",
            "satiate,metric=mean_completion_nontargeted,label=non-targeted leechers",
            "--curve",
            "satiate,metric=mean_completion_targeted,label=targeted leechers",
        ],
        &[
            "Targets finish early (satiated); non-targets are barely hurt — often helped —",
            "because the attacker's own upload capacity joins the swarm (paper §1).",
        ],
    );
}
