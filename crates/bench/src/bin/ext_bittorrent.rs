//! X6 — §1: the lotus-eater attack barely dents BitTorrent.
//!
//! The attacker satiates a third of the leechers with generous uploads;
//! they finish early and leave. "Since most leechers are downloading more
//! than they upload, this is often actually a net benefit to the torrent"
//! — non-targeted completion times stay flat (or improve) as attacker
//! resources grow, in sharp contrast to BAR Gossip's collapse (fig1).

use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;
use torrent_sim::{SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};

fn completion(attacker_peers: u32, seed: u64) -> (f64, f64) {
    let cfg = SwarmConfig::builder()
        .leechers(40)
        .seeds(1)
        .pieces(48)
        .max_rounds(1_500)
        .build()
        .expect("valid config");
    let attack = if attacker_peers == 0 {
        SwarmAttack::none()
    } else {
        SwarmAttack::satiate(attacker_peers, 8, 0.33, TargetPolicy::Random)
    };
    let r = SwarmSim::new(cfg, attack, seed).run_to_report();
    let non = r
        .mean_completion_nontargeted()
        .unwrap_or_else(|| r.mean_completion());
    let tgt = r.mean_completion_targeted().unwrap_or(non);
    (non, tgt)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let attacker_counts = [0u32, 1, 2, 4, 6, 8, 12];

    let mut non_targets = Series::new("non-targeted leechers");
    let mut targets = Series::new("targeted leechers");
    for &a in &attacker_counts {
        let (mut sn, mut st) = (0.0, 0.0);
        for &s in &seeds {
            let (n, t) = completion(a, s);
            sn += n;
            st += t;
        }
        let k = seeds.len() as f64;
        non_targets.push(f64::from(a), sn / k);
        targets.push(f64::from(a), st / k);
    }

    print_series_table(
        "X6 — Satiation attack on a BitTorrent swarm (40 leechers, 33% targeted)",
        &[non_targets, targets],
        "attacker peers (8 upload slots each)",
        "mean completion round",
    );
    println!("Targets finish early (satiated); non-targets are barely hurt — often helped —");
    println!("because the attacker's own upload capacity joins the swarm (paper §1).");
}
