//! F2 — Figure 2: a larger optimistic push size reduces effectiveness.
//!
//! Identical to Figure 1 but with the push size raised from 2 to 10:
//! nodes willing to initiate pushes become more altruistic (they give more
//! at the risk of receiving junk). Paper: the ideal attack now needs
//! ≥ 15 % of nodes (and then supplies ≈ 85 % of updates); the trade attack
//! needs ≈ 40 %.

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_bench::runner::{json_requested, run_shim};

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "FIGURE 2 — Larger push size (10) reduces effectiveness",
            "--param",
            "push_size=10",
            "--curve",
            "crash,label=Crash attack,paper=-",
            "--curve",
            "ideal,label=Ideal lotus-eater attack,paper=0.15",
            "--curve",
            "trade,label=Trade lotus-eater attack,paper=0.40",
            "--fraction-grid",
            "0:1",
        ],
        &[],
    );
    if !json_requested() {
        let params = Params::new().with("push_size", "10");
        let report = ScenarioRegistry::standard()
            .run(
                "bar-gossip",
                &RunRequest::new(0.15, 1, "ideal", "fraction", &params),
            )
            .expect("figure-2 coverage probe");
        println!(
            "Ideal attacker at 15% control holds {:.1}% of updates (paper: ~85%)",
            report.metric("attacker_coverage").expect("coverage metric") * 100.0
        );
    }
}
