//! F2 — Figure 2: a larger optimistic push size reduces effectiveness.
//!
//! Identical to Figure 1 but with the push size raised from 2 to 10:
//! nodes willing to initiate pushes become more altruistic (they give more
//! at the risk of receiving junk). Paper: the ideal attack now needs
//! ≥ 15 % of nodes (and then supplies ≈ 85 % of updates); the trade attack
//! needs ≈ 40 %.

use bar_gossip::{AttackKind, AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_bench::{attack_curve, print_figure, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let cfg = BarGossipConfig::builder().push_size(10).build().expect("valid");
    let xs = fidelity.grid(0.0, 1.0);
    let sweep = fidelity.sweep();

    let crash = attack_curve("Crash attack", AttackKind::Crash, &cfg, &xs, &sweep);
    let ideal = attack_curve(
        "Ideal lotus-eater attack",
        AttackKind::IdealLotusEater,
        &cfg,
        &xs,
        &sweep,
    );
    let trade = attack_curve(
        "Trade lotus-eater attack",
        AttackKind::TradeLotusEater,
        &cfg,
        &xs,
        &sweep,
    );

    print_figure(
        "FIGURE 2 — Larger push size (10) reduces effectiveness",
        &[crash, ideal, trade],
        &[(0, None), (1, Some(0.15)), (2, Some(0.40))],
        "Fraction of nodes controlled by attacker",
    );

    let report = BarGossipSim::new(cfg, AttackPlan::ideal_lotus_eater(0.15, 0.70), 1)
        .run_to_report();
    println!(
        "Ideal attacker at 15% control holds {:.1}% of updates (paper: ~85%)",
        report.attacker_coverage * 100.0
    );
}
