//! X8 — §4: obedient nodes report excessive service; evict on quorum.
//!
//! "Only two people know if an attacker provides excessive service: the
//! attacker and the node that benefits from it... a rational node might
//! not report it. But an obedient node would." We run the trade
//! lotus-eater attack well above its break point and sweep the fraction
//! of honest nodes that are obedient reporters: with enough of them the
//! attackers are evicted quickly and isolated delivery recovers.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim, ReportConfig};
use lotus_bench::{print_series_table, Fidelity};
use lotus_core::sweep::sweep_fraction;
use netsim::metrics::Series;

fn run(obedient: f64, seed: u64) -> (f64, f64) {
    let cfg = BarGossipConfig::builder()
        .report_defense(ReportConfig {
            obedient_fraction: obedient,
            quorum: 3,
            excess_slack: 1,
        })
        .build()
        .expect("valid config");
    let plan = AttackPlan::trade_lotus_eater(0.30, 0.70);
    let r = BarGossipSim::new(cfg, plan, seed).run_to_report();
    let evicted = if r.counts.attacker == 0 {
        0.0
    } else {
        f64::from(r.evictions) / f64::from(r.counts.attacker)
    };
    (r.isolated_delivery(), evicted)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let xs = fidelity.grid(0.0, 1.0);
    let sweep = fidelity.sweep();

    let delivery = sweep_fraction(
        "isolated delivery (trade attack at 30%)",
        &xs,
        &sweep,
        |ob, seed| run(ob, seed).0,
    );
    let mut evicted = Series::new("fraction of attackers evicted");
    for &x in &xs {
        let mut sum = 0.0;
        for seed in 1..=fidelity.seeds() as u64 {
            sum += run(x, seed).1;
        }
        evicted.push(x, sum / fidelity.seeds() as f64);
    }

    print_series_table(
        "X8 — Report-and-evict defense vs obedient fraction (quorum 3)",
        &[delivery, evicted],
        "fraction of honest nodes that are obedient reporters",
        "isolated delivery / evicted fraction",
    );
    println!("A modest pool of obedient nodes suffices to evict every trade attacker");
    println!("(signed exchange records are the evidence) and restore usability.");
}
