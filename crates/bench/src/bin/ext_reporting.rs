//! X8 — §4: obedient nodes report excessive service; evict on quorum.
//!
//! "Only two people know if an attacker provides excessive service: the
//! attacker and the node that benefits from it... a rational node might
//! not report it. But an obedient node would." We run the trade
//! lotus-eater attack well above its break point and sweep the fraction
//! of honest nodes that are obedient reporters: with enough of them the
//! attackers are evicted quickly and isolated delivery recovers.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X8 — Report-and-evict defense vs obedient fraction (quorum 3)",
            "--sweep",
            "report_obedient",
            "--fraction-grid",
            "0:1",
            "--x-label",
            "fraction of honest nodes that are obedient reporters",
            "--y-label",
            "isolated delivery / evicted fraction",
            "--param",
            "fraction=0.30",
            "--param",
            "report_quorum=3",
            "--param",
            "report_excess_slack=1",
            "--curve",
            "trade,label=isolated delivery (trade attack at 30%)",
            "--curve",
            "trade,metric=evicted_fraction,label=fraction of attackers evicted",
        ],
        &[
            "A modest pool of obedient nodes suffices to evict every trade attacker",
            "(signed exchange records are the evidence) and restore usability.",
        ],
    );
}
