//! X15 — the oscillating lotus-eater: defect, cooperate, re-defect.
//!
//! §2 observes that by changing *when* it attacks, the attacker can keep
//! the system permanently off balance. This preset runs the trade
//! lotus-eater under a periodic schedule (on for 10 rounds of every 20 —
//! one update lifetime of defection, one of cooperation) and compares it
//! with the always-on attack across attacker fractions. During the
//! cooperate phase the attacker nodes run the honest protocol, building
//! both stock and cover; each re-defection re-opens the delivery wound
//! before the window fully heals, so the oscillating attacker touches far
//! more honest node-rounds per unit of attack time than the static one.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack trade \
//!     --schedule periodic:20:10 --sweep fraction --quick
//! lotus-bench --bench --scenario bar-gossip \
//!     --curve "trade,schedule=periodic:20:10"
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X15 — Oscillating lotus-eater (periodic:20:10 vs always-on)",
            "--param",
            "rounds=60",
            "--y-label",
            "isolated delivery at expiry",
            "--curve",
            "trade,label=always-on trade attack",
            "--curve",
            "trade,schedule=periodic:20:10,label=oscillating trade attack",
            "--curve",
            "trade,schedule=periodic:20:10,metric=nodes_ever_unusable,\
             label=oscillating: nodes ever unusable",
            "--curve",
            "none,label=no attack",
        ],
        &[
            "The oscillating attacker trades sustained pressure for periodic",
            "shocks: isolated delivery recovers partway during each cooperate",
            "phase, but every re-defection dips it again — the nodes-ever-",
            "unusable curve shows the intermittent outages spreading across",
            "the population even where mean delivery looks tolerable.",
        ],
    );
}
