//! `lotus-bench` — the unified scenario runner CLI.
//!
//! ```text
//! lotus-bench --list
//! lotus-bench --scenario bar-gossip --attack trade --format json
//! lotus-bench --scenario token --sweep altruism --curve "random-fraction,fraction=0.5"
//! ```
//!
//! See [`lotus_bench::runner`] for the full grammar; the `fig*`/`ext_*`
//! binaries are presets over this same entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lotus_bench::runner::run_args(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
