//! F3 — Figure 3: obedient nodes (unbalanced exchanges) reduce
//! effectiveness.
//!
//! The trade lotus-eater attack against four protocol variants: push size
//! {2, 4} × {balanced, unbalanced} exchanges, attacker fraction swept over
//! 0..0.7 as in the paper. Obedient nodes performing slightly unbalanced
//! exchanges (give one extra update when receiving at least one) combined
//! with a modest push-size increase raise the required attacker fraction
//! by roughly half.

use bar_gossip::{AttackKind, BarGossipConfig};
use lotus_bench::{attack_curve, print_figure, Fidelity};

fn variant(push: u32, unbalanced: bool) -> BarGossipConfig {
    BarGossipConfig::builder()
        .push_size(push)
        .unbalanced_exchanges(unbalanced)
        .build()
        .expect("valid")
}

fn main() {
    let fidelity = Fidelity::from_args();
    let xs = fidelity.grid(0.0, 0.7);
    let sweep = fidelity.sweep();

    let series = [
        (2, false, "Push size 2, balanced exchanges"),
        (2, true, "Push size 2, unbalanced exchanges"),
        (4, false, "Push size 4, balanced exchanges"),
        (4, true, "Push size 4, unbalanced exchanges"),
    ]
    .map(|(push, unb, label)| {
        attack_curve(
            label,
            AttackKind::TradeLotusEater,
            &variant(push, unb),
            &xs,
            &sweep,
        )
    });

    print_figure(
        "FIGURE 3 — Obedient nodes reduce effectiveness (trade attack)",
        &series,
        &[(0, Some(0.22)), (1, None), (2, None), (3, Some(0.33))],
        "Fraction of nodes controlled by attacker",
    );
    println!(
        "Paper: the combination of both changes raises the required fraction by almost 50%."
    );
}
