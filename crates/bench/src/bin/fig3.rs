//! F3 — Figure 3: obedient nodes (unbalanced exchanges) reduce
//! effectiveness.
//!
//! The trade lotus-eater attack against four protocol variants: push size
//! {2, 4} × {balanced, unbalanced} exchanges, attacker fraction swept over
//! 0..0.7 as in the paper. Obedient nodes performing slightly unbalanced
//! exchanges (give one extra update when receiving at least one) combined
//! with a modest push-size increase raise the required attacker fraction
//! by roughly half.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "FIGURE 3 — Obedient nodes reduce effectiveness (trade attack)",
            "--fraction-grid",
            "0:0.7",
            "--curve",
            "trade,push_size=2,unbalanced=0,label=Push size 2 balanced,paper=0.22",
            "--curve",
            "trade,push_size=2,unbalanced=1,label=Push size 2 unbalanced,paper=-",
            "--curve",
            "trade,push_size=4,unbalanced=0,label=Push size 4 balanced,paper=-",
            "--curve",
            "trade,push_size=4,unbalanced=1,label=Push size 4 unbalanced,paper=0.33",
        ],
        &["Paper: the combination of both changes raises the required fraction by almost 50%."],
    );
}
