//! T1 — Table 1: simulation parameters.
//!
//! Prints the exact parameter table the paper reports, as carried by the
//! `bar-gossip` crate's default configuration.

use bar_gossip::BarGossipConfig;
use netsim::table::Table;

fn main() {
    let cfg = BarGossipConfig::default();
    let mut t = Table::new(vec!["Parameter", "Value"]);
    t.row(vec!["Number of Nodes".into(), cfg.nodes.to_string()]);
    t.row(vec![
        "Updates per Round".into(),
        cfg.updates_per_round.to_string(),
    ]);
    t.row(vec![
        "Update Lifetime (rds)".into(),
        cfg.update_lifetime.to_string(),
    ]);
    t.row(vec!["Copies Seeded".into(), cfg.copies_seeded.to_string()]);
    t.row(vec![
        "Opt. Push Size (upd)".into(),
        cfg.push_size.to_string(),
    ]);
    println!("# TABLE 1 — Simulation Parameters");
    println!();
    println!("{}", t.render());
    println!(
        "Evaluation horizon: {} warm-up + {} measured + {} drain rounds; usability threshold {}",
        cfg.warmup_rounds, cfg.rounds, cfg.update_lifetime, cfg.usability_threshold
    );
}
