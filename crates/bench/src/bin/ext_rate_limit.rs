//! X9 — §4/§5: rate-limiting service prevents rapid satiation.
//!
//! The paper's §5 open problem: "design a system that limits the rate at
//! which nodes can provide service", so no attacker can satiate targets
//! "sufficiently rapidly". We enforce the *naive* version — a flat cap on
//! useful updates per interaction — and sweep it. The result is a
//! negative one that explains why the paper calls this open: the flat cap
//! throttles honest balanced exchanges (which legitimately move many
//! updates at once) far more than it throttles the attacker (who gets
//! many small scheduled interactions), so tight caps make isolated nodes
//! *worse* off under attack, and the out-of-band ideal attack is
//! untouched by any protocol-level cap. Rate limiting must be targeted at
//! excess service (see `ext_reporting`) rather than all service.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X9 — Per-interaction rate limit vs attacks (cap in updates/exchange)",
            "--sweep",
            "rate_limit",
            "--x-values",
            "1,2,3,5,8,16,32",
            "--x-label",
            "rate limit (updates per interaction; 32 = unbounded)",
            "--y-label",
            "isolated delivery",
            "--curve",
            "none,label=no attack (defense cost)",
            "--curve",
            "trade,fraction=0.30,label=trade attack at 30%",
            "--curve",
            "ideal,fraction=0.10,label=ideal attack at 10% (bypasses protocol)",
        ],
        &[
            "Negative result, as the paper anticipates (§5 open problem): a flat",
            "per-interaction cap hurts honest exchanges more than the attacker, and",
            "cannot touch the out-of-band ideal attack. Effective rate limiting must",
            "discriminate excess service — which is what report-and-evict (X8) does.",
        ],
    );
}
