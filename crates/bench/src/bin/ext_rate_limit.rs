//! X9 — §4/§5: rate-limiting service prevents rapid satiation.
//!
//! The paper's §5 open problem: "design a system that limits the rate at
//! which nodes can provide service", so no attacker can satiate targets
//! "sufficiently rapidly". We enforce the *naive* version — a flat cap on
//! useful updates per interaction — and sweep it. The result is a
//! negative one that explains why the paper calls this open: the flat cap
//! throttles honest balanced exchanges (which legitimately move many
//! updates at once) far more than it throttles the attacker (who gets
//! many small scheduled interactions), so tight caps make isolated nodes
//! *worse* off under attack, and the out-of-band ideal attack is
//! untouched by any protocol-level cap. Rate limiting must be targeted at
//! excess service (see `ext_reporting`) rather than all service.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;

fn delivery(cap: Option<u32>, plan: AttackPlan, seed: u64) -> f64 {
    let cfg = BarGossipConfig::builder()
        .rate_limit(cap)
        .build()
        .expect("valid config");
    BarGossipSim::new(cfg, plan, seed)
        .run_to_report()
        .isolated_delivery()
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let caps: [(Option<u32>, f64); 7] = [
        (Some(1), 1.0),
        (Some(2), 2.0),
        (Some(3), 3.0),
        (Some(5), 5.0),
        (Some(8), 8.0),
        (Some(16), 16.0),
        (None, 32.0), // unbounded, plotted at 32
    ];

    let mut series: Vec<Series> = Vec::new();
    for (plan, label) in [
        (AttackPlan::none(), "no attack (defense cost)"),
        (
            AttackPlan::trade_lotus_eater(0.30, 0.70),
            "trade attack at 30%",
        ),
        (
            AttackPlan::ideal_lotus_eater(0.10, 0.70),
            "ideal attack at 10% (bypasses protocol)",
        ),
    ] {
        let mut s = Series::new(label);
        for &(cap, x) in &caps {
            let mut sum = 0.0;
            for &seed in &seeds {
                sum += delivery(cap, plan, seed);
            }
            s.push(x, sum / seeds.len() as f64);
        }
        series.push(s);
    }

    print_series_table(
        "X9 — Per-interaction rate limit vs attacks (cap in updates/exchange)",
        &series,
        "rate limit (updates per interaction; 32 = unbounded)",
        "isolated delivery",
    );
    println!("Negative result, as the paper anticipates (§5 open problem): a flat");
    println!("per-interaction cap hurts honest exchanges more than the attacker, and");
    println!("cannot touch the out-of-band ideal attack. Effective rate limiting must");
    println!("discriminate excess service — which is what report-and-evict (X8) does.");
}
