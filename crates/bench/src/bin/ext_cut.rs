//! X2 — §3: cut attacks exploit graph structure.
//!
//! Satiating one column of a grid (a vertex cut) starves the far side of
//! any token that only exists on the near side; the same number of
//! satiated nodes placed randomly — or the same attack on an Erdős–Rényi
//! graph, which has no cheap cuts — does far less damage. This is the
//! paper's "resilience to non-random failures" principle made measurable.

use lotus_core::attack::{Attacker, SatiateCut, SatiateRandomFraction};
use lotus_core::token::{Allocation, TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use netsim::rng::DetRng;
use netsim::table::Table;
use netsim::NodeId;

const ROWS: u32 = 8;
const COLS: u32 = 12;

fn run(graph: Graph, attack: &mut dyn Attacker, seed: u64, rounds: u64) -> (f64, f64) {
    // Token 0 lives only at node 0 (top-left for the grid); the cut at
    // column COLS/2 separates it from the right half.
    let tokens = 12;
    let mut lists: Vec<Vec<NodeId>> = vec![vec![NodeId(0)]];
    let mut alloc_rng = DetRng::seed_from(seed ^ 0xa110c);
    let n = graph.len() as usize;
    for _ in 1..tokens {
        lists.push(
            alloc_rng
                .sample_indices(n, 4)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect(),
        );
    }
    let cfg = TokenSystemConfig::builder(graph)
        .tokens(tokens)
        .allocation(Allocation::Explicit(lists))
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, seed);
    let report = sys.run(attack, rounds);
    let complete = report
        .coverage
        .iter()
        .filter(|&&c| (c - 1.0).abs() < 1e-12)
        .count() as f64
        / report.coverage.len() as f64;
    (report.untouched_mean_coverage(), complete)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (seeds, rounds): (Vec<u64>, u64) = if quick {
        (vec![1, 2], 120)
    } else {
        ((1..=5).collect(), 300)
    };

    let mut t = Table::new(vec![
        "scenario",
        "mean coverage (untouched)",
        "fraction fully satiated",
    ]);
    let cut_size = ROWS as usize; // one grid column

    type Scenario = (&'static str, Box<dyn Fn(u64) -> (f64, f64)>);
    let scenarios: Vec<Scenario> = vec![
        (
            "grid, column cut satiated",
            Box::new(move |seed| {
                let g = Graph::grid(ROWS, COLS, false);
                run(g, &mut SatiateCut::grid_column(ROWS, COLS, COLS / 2), seed, rounds)
            }),
        ),
        (
            "grid, same budget random",
            Box::new(move |seed| {
                let g = Graph::grid(ROWS, COLS, false);
                let frac = cut_size as f64 / f64::from(ROWS * COLS);
                run(g, &mut SatiateRandomFraction::new(frac), seed, rounds)
            }),
        ),
        (
            "erdos-renyi, same budget random",
            Box::new(move |seed| {
                // Sparse ER draws can be disconnected; redraw until one
                // satisfies the model's connectivity requirement.
                let rng = DetRng::seed_from(seed ^ 0x9e37);
                let g = (0..50)
                    .map(|attempt| {
                        Graph::erdos_renyi(ROWS * COLS, 0.05, &mut rng.fork_idx("g", attempt))
                    })
                    .find(Graph::is_connected)
                    .expect("a connected ER draw within 50 attempts");
                let frac = cut_size as f64 / f64::from(ROWS * COLS);
                run(g, &mut SatiateRandomFraction::new(frac), seed, rounds)
            }),
        ),
    ];

    println!("# X2 — Cut attacks on structured graphs (token model, {ROWS}x{COLS})");
    println!();
    for (name, f) in scenarios {
        let mut cov = 0.0;
        let mut comp = 0.0;
        for &s in &seeds {
            let (c, k) = f(s);
            cov += c;
            comp += k;
        }
        let n = seeds.len() as f64;
        t.row(vec![
            name.to_string(),
            format!("{:.3}", cov / n),
            format!("{:.3}", comp / n),
        ]);
    }
    println!("{}", t.render());
    println!("Paper §3: a cheap cut (one grid column, {cut_size} nodes) denies the far side");
    println!("the rare token forever; random graphs and random targeting resist.");
}
