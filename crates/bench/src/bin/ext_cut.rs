//! X2 — §3: cut attacks exploit graph structure.
//!
//! Satiating one column of a grid (a vertex cut) starves the far side of
//! any token that only exists on the near side; the same number of
//! satiated nodes placed randomly — or the same attack on an Erdős–Rényi
//! graph, which has no cheap cuts — does far less damage. This is the
//! paper's "resilience to non-random failures" principle made measurable.
//!
//! Token 0 lives only at node 0 (top-left for the grid); the cut at
//! column 6 separates it from the right half. The random curves spend the
//! same budget (8 of 96 nodes ≈ 0.083) without structure.

use lotus_bench::runner::run_shim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { "rounds=120" } else { "rounds=300" };
    run_shim(
        &[
            "--scenario",
            "token",
            "--title",
            "X2 — Cut attacks on structured graphs (token model, 8x12)",
            "--x-values",
            "0.0833",
            "--x-label",
            "fraction of nodes satiated (one grid column = 8 of 96)",
            "--y-label",
            "mean coverage (untouched nodes)",
            "--metric",
            "untouched_mean_coverage",
            "--param",
            "tokens=12",
            "--param",
            "allocation=rare",
            "--param",
            "copies=4",
            "--param",
            rounds,
            "--curve",
            "cut-column,graph=grid,rows=8,cols=12,cut_col=6,label=grid column cut satiated",
            "--curve",
            "random-fraction,graph=grid,rows=8,cols=12,label=grid same budget random",
            "--curve",
            "random-fraction,graph=er,er_p=0.05,nodes=96,label=erdos-renyi same budget random",
        ],
        &[
            "Paper §3: a cheap cut (one grid column, 8 nodes) denies the far side",
            "the rare token forever; random graphs and random targeting resist.",
        ],
    );
}
