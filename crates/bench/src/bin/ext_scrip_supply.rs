//! X4 — §4: a fixed money supply makes mass satiation impossible.
//!
//! "While it is easy for an attacker to accumulate enough money to satiate
//! a few nodes, there may not even be enough money in the system to
//! satiate a significant fraction of the nodes." Satiating a fraction φ
//! of n threshold-k agents locks ≈ φ·n·k scrip; the system has m·n. We
//! sweep φ for several m and report the satiation the attacker actually
//! achieves (his endowment is *all* the money, the best case for him).

use lotus_bench::{print_series_table, Fidelity};
use lotus_core::sweep::sweep_fraction;
use netsim::metrics::Series;
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};

fn achieved_satiation(phi: f64, m: u32, seed: u64, rounds: u64) -> f64 {
    let cfg = ScripConfig::builder()
        .agents(100)
        .money_per_agent(m)
        .threshold(5)
        .rounds(rounds)
        .warmup(rounds / 10)
        .build()
        .expect("valid config");
    let attack = ScripAttack::lotus_eater(phi, 1.0); // attacker holds ALL money
    ScripSim::new(cfg, attack, seed)
        .run_to_report()
        .target_satiation
        .unwrap_or(0.0)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let xs = fidelity.grid(0.05, 0.9);
    let sweep = fidelity.sweep();
    let rounds = match fidelity {
        Fidelity::Full => 20_000,
        Fidelity::Quick => 4_000,
    };

    let series: Vec<Series> = [1u32, 2, 4]
        .into_iter()
        .map(|m| {
            sweep_fraction(
                format!("money per agent m = {m} (threshold k = 5)"),
                &xs,
                &sweep,
                move |phi, seed| achieved_satiation(phi, m, seed, rounds),
            )
        })
        .collect();

    print_series_table(
        "X4 — The money supply caps the satiable fraction (scrip system)",
        &series,
        "fraction of agents targeted",
        "achieved target satiation",
    );
    println!("Satiating a fraction f of agents locks ~f*n*k scrip; only m*n exists, so");
    println!("satiation collapses beyond f ~ m/k (0.2, 0.4, 0.8 for these series).");
}
