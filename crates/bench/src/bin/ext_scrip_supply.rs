//! X4 — §4: a fixed money supply makes mass satiation impossible.
//!
//! "While it is easy for an attacker to accumulate enough money to satiate
//! a few nodes, there may not even be enough money in the system to
//! satiate a significant fraction of the nodes." Satiating a fraction φ
//! of n threshold-k agents locks ≈ φ·n·k scrip; the system has m·n. We
//! sweep φ for several m and report the satiation the attacker actually
//! achieves (his endowment is *all* the money, the best case for him).

use lotus_bench::runner::run_shim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rounds, warmup) = if quick {
        ("rounds=4000", "warmup=400")
    } else {
        ("rounds=20000", "warmup=2000")
    };
    run_shim(
        &[
            "--scenario",
            "scrip",
            "--title",
            "X4 — The money supply caps the satiable fraction (scrip system)",
            "--fraction-grid",
            "0.05:0.9",
            "--x-label",
            "fraction of agents targeted",
            "--y-label",
            "achieved target satiation",
            "--metric",
            "target_satiation",
            "--param",
            "agents=100",
            "--param",
            "threshold=5",
            "--param",
            "endowment=1.0",
            "--param",
            rounds,
            "--param",
            warmup,
            "--curve",
            "lotus-eater,money_per_agent=1,label=money per agent m = 1 (threshold k = 5)",
            "--curve",
            "lotus-eater,money_per_agent=2,label=money per agent m = 2 (threshold k = 5)",
            "--curve",
            "lotus-eater,money_per_agent=4,label=money per agent m = 4 (threshold k = 5)",
        ],
        &[
            "Satiating a fraction f of agents locks ~f*n*k scrip; only m*n exists, so",
            "satiation collapses beyond f ~ m/k (0.2, 0.4, 0.8 for these series).",
        ],
    );
}
