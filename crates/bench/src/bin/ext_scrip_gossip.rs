//! X12 — §4: "scrip could be the basis for an incentive-compatible gossip
//! system that is robust against lotus-eater attacks."
//!
//! We build exactly that (`bar_gossip::scrip_gossip`): the balanced
//! exchange's double coincidence of wants is replaced by purchases at one
//! scrip per update, with threshold sellers. A gift of updates no longer
//! silences a node — an update-satiated node keeps *selling* because it
//! still wants income — so the paper's trade attack, swept exactly as in
//! Figure 1, barely moves the scrip-gossip curve while it collapses the
//! vanilla one.

use bar_gossip::scrip_gossip::{ScripGossipConfig, ScripGossipSim};
use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_bench::{print_series_table, Fidelity};
use lotus_core::sweep::sweep_fraction;

fn main() {
    let fidelity = Fidelity::from_args();
    let xs = fidelity.grid(0.0, 0.6);
    let sweep = fidelity.sweep();
    let base = BarGossipConfig::default();

    let vanilla = {
        let base = base.clone();
        sweep_fraction(
            "vanilla BAR Gossip (trade attack)",
            &xs,
            &sweep,
            move |x, seed| {
                BarGossipSim::new(base.clone(), AttackPlan::trade_lotus_eater(x, 0.70), seed)
                    .run_to_report()
                    .isolated_delivery()
            },
        )
    };
    let scrip = {
        let base = base.clone();
        sweep_fraction(
            "scrip gossip (same attack)",
            &xs,
            &sweep,
            move |x, seed| {
                let cfg = ScripGossipConfig::new(base.clone());
                ScripGossipSim::new(cfg, AttackPlan::trade_lotus_eater(x, 0.70), seed)
                    .run_to_report()
                    .isolated_delivery
            },
        )
    };

    print_series_table(
        "X12 — Scrip-mediated gossip resists the trade lotus-eater attack",
        &[vanilla, scrip],
        "fraction of nodes controlled by attacker",
        "isolated delivery",
    );
    println!("Update gifts cannot silence a seller that still wants income; to silence");
    println!("it the attacker must hold its *balance* at threshold — and the fixed");
    println!("money supply caps how many nodes he can hold there (X4). The paper's §4");
    println!("suggestion checks out.");
}
