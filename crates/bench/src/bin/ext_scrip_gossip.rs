//! X12 — §4: "scrip could be the basis for an incentive-compatible gossip
//! system that is robust against lotus-eater attacks."
//!
//! We build exactly that (`bar_gossip::scrip_gossip`): the balanced
//! exchange's double coincidence of wants is replaced by purchases at one
//! scrip per update, with threshold sellers. A gift of updates no longer
//! silences a node — an update-satiated node keeps *selling* because it
//! still wants income — so the paper's trade attack, swept exactly as in
//! Figure 1, barely moves the scrip-gossip curve while it collapses the
//! vanilla one.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--title",
            "X12 — Scrip-mediated gossip resists the trade lotus-eater attack",
            "--fraction-grid",
            "0:0.6",
            "--y-label",
            "isolated delivery",
            "--metric",
            "isolated_delivery",
            "--curve",
            "trade,scenario=bar-gossip,label=vanilla BAR Gossip (trade attack)",
            "--curve",
            "trade,scenario=scrip-gossip,label=scrip gossip (same attack)",
        ],
        &[
            "Update gifts cannot silence a seller that still wants income; to silence",
            "it the attacker must hold its *balance* at threshold — and the fixed",
            "money supply caps how many nodes he can hold there (X4). The paper's §4",
            "suggestion checks out.",
        ],
    );
}
