//! X14 — §1/§4: reputation vs scrip as satiation currencies.
//!
//! Both indirect-reciprocity designs can be lotus-eaten: keep the target's
//! balance/score at its threshold and it stops serving (§1). The defense
//! value differs though. Scrip is **conserved** — satiating a fraction φ
//! locks φ·n·k of an m·n supply, a hard wall (X4). Reputation is *minted*
//! by feedback, so the attacker pays only a **linear maintenance bill**
//! (≈ k·(1−δ) fake points per target per round against decay δ) and never
//! hits a wall. The experiment sweeps the targeted fraction and plots the
//! achieved satiation under both systems, plus the reputation attacker's
//! bill.

use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;
use scrip_economy::reputation::{ReputationAttack, ReputationConfig, ReputationSim};
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};

fn scrip_satiation(phi: f64, seed: u64, rounds: u64) -> f64 {
    let cfg = ScripConfig::builder()
        .agents(100)
        .money_per_agent(2)
        .threshold(5)
        .rounds(rounds)
        .warmup(rounds / 10)
        .build()
        .expect("valid config");
    ScripSim::new(cfg, ScripAttack::lotus_eater(phi, 1.0), seed)
        .run_to_report()
        .target_satiation
        .unwrap_or(0.0)
}

fn reputation_run(phi: f64, seed: u64, rounds: u64) -> (f64, f64) {
    let cfg = ReputationConfig {
        agents: 100,
        threshold: 5.0,
        rounds,
        warmup: rounds / 10,
        ..ReputationConfig::default()
    };
    let r = ReputationSim::new(
        cfg,
        ReputationAttack::Inflate {
            target_fraction: phi,
        },
        seed,
    )
    .run_to_report();
    (r.target_satiation.unwrap_or(0.0), r.attacker_cost_per_round)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let rounds = match fidelity {
        Fidelity::Full => 20_000,
        Fidelity::Quick => 4_000,
    };
    let phis = [0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9];

    let mut scrip = Series::new("scrip: achieved satiation (m=2, k=5)");
    let mut rep = Series::new("reputation: achieved satiation (k=5)");
    let mut bill = Series::new("reputation: attacker bill / round / 40");
    for &phi in &phis {
        let (mut s, mut r, mut b) = (0.0, 0.0, 0.0);
        for &seed in &seeds {
            s += scrip_satiation(phi, seed, rounds);
            let (sat, cost) = reputation_run(phi, seed, rounds);
            r += sat;
            b += cost;
        }
        let k = seeds.len() as f64;
        scrip.push(phi, s / k);
        rep.push(phi, r / k);
        bill.push(phi, b / k / 40.0); // normalised to fit the chart
    }

    print_series_table(
        "X14 — Satiation currencies: conserved scrip vs minted reputation",
        &[scrip, rep, bill],
        "fraction of agents targeted",
        "achieved satiation / normalised attacker bill",
    );
    println!("Scrip hits the supply wall past phi ~ m/k = 0.4; reputation never does —");
    println!("the attacker's only constraint is a bill growing linearly in targets");
    println!("(k(1-delta) fake points per target per round). Conservation is what makes");
    println!("'making satiation hard' (§4) a *hard* guarantee.");
}
