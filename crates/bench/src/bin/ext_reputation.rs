//! X14 — §1/§4: reputation vs scrip as satiation currencies.
//!
//! Both indirect-reciprocity designs can be lotus-eaten: keep the target's
//! balance/score at its threshold and it stops serving (§1). The defense
//! value differs though. Scrip is **conserved** — satiating a fraction φ
//! locks φ·n·k of an m·n supply, a hard wall (X4). Reputation is *minted*
//! by feedback, so the attacker pays only a **linear maintenance bill**
//! (≈ k·(1−δ) fake points per target per round against decay δ) and never
//! hits a wall. The experiment sweeps the targeted fraction and plots the
//! achieved satiation under both systems, plus the reputation attacker's
//! bill.

use lotus_bench::runner::run_shim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rounds, warmup) = if quick {
        ("rounds=4000", "warmup=400")
    } else {
        ("rounds=20000", "warmup=2000")
    };
    run_shim(&[
        "--title", "X14 — Satiation currencies: conserved scrip vs minted reputation",
        "--x-values", "0.1,0.2,0.3,0.45,0.6,0.75,0.9",
        "--x-label", "fraction of agents targeted",
        "--y-label", "achieved satiation / attacker bill per round",
        "--param", "agents=100",
        "--param", "threshold=5",
        "--param", rounds,
        "--param", warmup,
        "--curve", "lotus-eater,scenario=scrip,money_per_agent=2,endowment=1.0,metric=target_satiation,label=scrip: achieved satiation (m=2 k=5)",
        "--curve", "inflate,scenario=reputation,metric=target_satiation,label=reputation: achieved satiation (k=5)",
        "--curve", "inflate,scenario=reputation,metric=attacker_cost_per_round,label=reputation: attacker bill / round",
    ], &[
        "Scrip hits the supply wall past phi ~ m/k = 0.4; reputation never does —",
        "the attacker's only constraint is a bill growing linearly in targets",
        "(k(1-delta) fake points per target per round). Conservation is what makes",
        "'making satiation hard' (§4) a *hard* guarantee.",
    ]);
}
