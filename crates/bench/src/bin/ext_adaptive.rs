//! X17 — the adaptive lotus-eater: a bandit that learns when to defect.
//!
//! PR 3's schedules are open-loop: the attacker fixes its phase pattern
//! before the run. This preset closes the loop — the attacker treats
//! {dormant, cooperate, defect, rotate} as bandit arms (epsilon-greedy
//! and UCB1 over observed damage, `lotus_core::adaptive`) and re-plans
//! every 10 rounds from the delivery degradation it actually causes. It
//! is compared against the always-on attack and the best *static*
//! oscillating schedule from X15, with `--arm-trace` appending the
//! per-phase arm sequence each bandit converged to.
//!
//! Sweepable and benchable through the ordinary grammar, e.g.:
//!
//! ```text
//! lotus-bench --scenario bar-gossip --attack trade \
//!     --adaptive epsilon-greedy,10,0.1 --arm-trace --quick
//! lotus-bench --scenario scrip --attack lotus-eater \
//!     --adaptive ucb,50,1.4 --sweep adaptive_epsilon --x-values 0,0.5,1
//! lotus-bench --bench --scenario bar-gossip \
//!     --curve "trade,adaptive=ucb:10:0.5"
//! ```

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X17 — Adaptive bandit attackers vs static schedules",
            "--param",
            "rounds=120",
            "--y-label",
            "isolated delivery at expiry",
            "--arm-trace",
            "--curve",
            "trade,label=always-on trade attack",
            "--curve",
            "trade,schedule=periodic:20:10,label=static oscillating (20:10)",
            "--curve",
            "trade,adaptive=epsilon-greedy:10:0.1,label=adaptive epsilon-greedy",
            "--curve",
            "trade,adaptive=ucb:10:0.5,label=adaptive UCB1",
            "--curve",
            "none,label=no attack",
        ],
        &[
            "The bandit spends its first four phases sweeping the arms, then",
            "concentrates on whichever defection pattern the observed damage",
            "rewards — on BAR Gossip that is defect/rotate-heavy play that",
            "tracks the always-on attack while spending cooperate phases",
            "rebuilding stock. The arm traces above show the learned schedule",
            "per curve; sweep adaptive_epsilon or adaptive_phase to study how",
            "exploration and commitment length trade off against damage.",
        ],
    );
}
