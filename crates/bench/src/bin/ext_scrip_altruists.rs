//! X5 — [KFH EC'07]: altruists can crash a scrip economy.
//!
//! With adaptive thresholds, free altruist service erodes the value of
//! money: rational agents lower their thresholds until the paid market
//! dies. A few altruists leave the economy healthy; a middling number
//! crashes paid service while providing too little free capacity —
//! "making all agents worse off because they now receive only the level
//! of service altruists are providing."

use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};

fn economy(altruists: u32, adaptive: bool, seed: u64, rounds: u64) -> (f64, f64) {
    let cfg = ScripConfig::builder()
        .agents(100)
        .money_per_agent(3)
        .threshold(4)
        .availability(0.25)
        .altruists(altruists)
        .adaptive(adaptive)
        .rounds(rounds)
        .warmup(rounds / 4)
        .build()
        .expect("valid config");
    let r = ScripSim::new(cfg, ScripAttack::None, seed).run_to_report();
    (r.service_rate, r.mean_threshold)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let rounds = match fidelity {
        Fidelity::Full => 60_000,
        Fidelity::Quick => 12_000,
    };
    let counts = [0u32, 5, 10, 20, 30, 40, 60, 80];

    let mut adaptive_rate = Series::new("service rate (adaptive thresholds)");
    let mut fixed_rate = Series::new("service rate (fixed thresholds)");
    let mut thresholds = Series::new("mean threshold / 4 (adaptive)");
    for &a in &counts {
        let (mut sr_a, mut th_a, mut sr_f) = (0.0, 0.0, 0.0);
        for &s in &seeds {
            let (r, t) = economy(a, true, s, rounds);
            sr_a += r;
            th_a += t;
            let (r_fixed, _) = economy(a, false, s, rounds);
            sr_f += r_fixed;
        }
        let n = seeds.len() as f64;
        adaptive_rate.push(f64::from(a), sr_a / n);
        fixed_rate.push(f64::from(a), sr_f / n);
        thresholds.push(f64::from(a), th_a / n / 4.0);
    }

    print_series_table(
        "X5 — Altruists crash an adaptive scrip economy",
        &[fixed_rate, adaptive_rate, thresholds],
        "number of altruists (of 100 agents)",
        "service rate / normalized threshold",
    );
    println!("The crash: middling altruist counts erode thresholds (paid market dies)");
    println!("while altruist capacity cannot yet cover demand.");
}
