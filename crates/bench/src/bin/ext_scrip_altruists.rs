//! X5 — [KFH EC'07]: altruists can crash a scrip economy.
//!
//! With adaptive thresholds, free altruist service erodes the value of
//! money: rational agents lower their thresholds until the paid market
//! dies. A few altruists leave the economy healthy; a middling number
//! crashes paid service while providing too little free capacity —
//! "making all agents worse off because they now receive only the level
//! of service altruists are providing."

use lotus_bench::runner::run_shim;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rounds, warmup) = if quick {
        ("rounds=12000", "warmup=3000")
    } else {
        ("rounds=60000", "warmup=15000")
    };
    run_shim(
        &[
            "--scenario",
            "scrip",
            "--title",
            "X5 — Altruists crash an adaptive scrip economy",
            "--sweep",
            "altruists",
            "--x-values",
            "0,5,10,20,30,40,60,80",
            "--x-label",
            "number of altruists (of 100 agents)",
            "--y-label",
            "service rate / mean threshold",
            "--param",
            "agents=100",
            "--param",
            "money_per_agent=3",
            "--param",
            "threshold=4",
            "--param",
            "availability=0.25",
            "--param",
            rounds,
            "--param",
            warmup,
            "--curve",
            "none,adaptive_thresholds=0,metric=service_rate,label=service rate (fixed thresholds)",
            "--curve",
            "none,adaptive_thresholds=1,metric=service_rate,label=service rate (adaptive thresholds)",
            "--curve",
            "none,adaptive_thresholds=1,metric=mean_threshold,label=mean threshold (adaptive)",
        ],
        &[
            "The crash: middling altruist counts erode thresholds (paid market dies)",
            "while altruist capacity cannot yet cover demand.",
        ],
    );
}
