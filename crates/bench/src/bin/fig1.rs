//! F1 — Figure 1: three attacks on BAR Gossip.
//!
//! Sweeps the fraction of nodes controlled by the attacker and plots the
//! fraction of updates received by isolated nodes for the crash baseline,
//! the ideal lotus-eater attack, and the trade lotus-eater attack (70 % of
//! the system targeted for satiation, Table 1 parameters).
//!
//! Paper break points on the 93 % usability line: crash ≈ 0.42,
//! ideal ≈ 0.04, trade ≈ 0.22. The ideal attacker at 4 % holds only ≈ 39 %
//! of the updates (partial satiation suffices).

use bar_gossip::{AttackKind, AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_bench::{attack_curve, print_figure, Fidelity};

fn main() {
    let fidelity = Fidelity::from_args();
    let cfg = BarGossipConfig::default();
    let xs = fidelity.grid(0.0, 1.0);
    let sweep = fidelity.sweep();

    let crash = attack_curve("Crash attack", AttackKind::Crash, &cfg, &xs, &sweep);
    let ideal = attack_curve(
        "Ideal lotus-eater attack",
        AttackKind::IdealLotusEater,
        &cfg,
        &xs,
        &sweep,
    );
    let trade = attack_curve(
        "Trade lotus-eater attack",
        AttackKind::TradeLotusEater,
        &cfg,
        &xs,
        &sweep,
    );

    print_figure(
        "FIGURE 1 — Three attacks on BAR Gossip",
        &[crash, ideal, trade],
        &[(0, Some(0.42)), (1, Some(0.04)), (2, Some(0.22))],
        "Fraction of nodes controlled by attacker",
    );

    // The paper's partial-satiation observation: coverage of a 4% ideal
    // attacker.
    let report = BarGossipSim::new(cfg, AttackPlan::ideal_lotus_eater(0.04, 0.70), 1)
        .run_to_report();
    println!(
        "Ideal attacker at 4% control holds {:.1}% of updates (paper: ~39%)",
        report.attacker_coverage * 100.0
    );
}
