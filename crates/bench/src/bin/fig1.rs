//! F1 — Figure 1: three attacks on BAR Gossip.
//!
//! Sweeps the fraction of nodes controlled by the attacker and plots the
//! fraction of updates received by isolated nodes for the crash baseline,
//! the ideal lotus-eater attack, and the trade lotus-eater attack (70 % of
//! the system targeted for satiation, Table 1 parameters).
//!
//! Paper break points on the 93 % usability line: crash ≈ 0.42,
//! ideal ≈ 0.04, trade ≈ 0.22. The ideal attacker at 4 % holds only ≈ 39 %
//! of the updates (partial satiation suffices).

use lotus_bench::registry::{Params, RunRequest, ScenarioRegistry};
use lotus_bench::runner::{json_requested, run_shim};

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "FIGURE 1 — Three attacks on BAR Gossip",
            "--curve",
            "crash,label=Crash attack,paper=0.42",
            "--curve",
            "ideal,label=Ideal lotus-eater attack,paper=0.04",
            "--curve",
            "trade,label=Trade lotus-eater attack,paper=0.22",
            "--fraction-grid",
            "0:1",
        ],
        &[],
    );
    if !json_requested() {
        // The paper's partial-satiation observation: coverage of a 4%
        // ideal attacker.
        let report = ScenarioRegistry::standard()
            .run(
                "bar-gossip",
                &RunRequest::new(0.04, 1, "ideal", "fraction", &Params::new()),
            )
            .expect("figure-1 coverage probe");
        println!(
            "Ideal attacker at 4% control holds {:.1}% of updates (paper: ~39%)",
            report.metric("attacker_coverage").expect("coverage metric") * 100.0
        );
    }
}
