//! X7 — §4: rarest-first and seeding defuse manufactured last-pieces
//! problems.
//!
//! The attacker satiates the holders of the rarest pieces with a
//! deliberately *minimal* bandwidth budget (one peer, two slots), hoping
//! they leave before passing those pieces on. The experiment measures
//! both policies, clean and attacked:
//!
//! * rarest-first beats uniform-random selection in the clean swarm (the
//!   Legout et al. result the paper cites);
//! * under **both** policies the attack fails to inflate the completion
//!   tail meaningfully: the origin seed re-replicates whatever rarity the
//!   departures create, and satiated targets leaving early frees seed
//!   capacity for the stragglers. "BitTorrent's rarest first policy does
//!   a good job of resolving this problem" — and seeding (built-in
//!   altruism) backs it up.

use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;
use torrent_sim::{PiecePolicy, SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};

fn run(policy: PiecePolicy, target_fraction: f64, seed: u64) -> (f64, f64) {
    let cfg = SwarmConfig::builder()
        .leechers(40)
        .seeds(1)
        .pieces(96)
        .unchoke_slots(3)
        .piece_policy(policy)
        .max_rounds(3_000)
        .build()
        .expect("valid config");
    let attack = if target_fraction == 0.0 {
        SwarmAttack::none()
    } else {
        // Minimal-budget attacker: the removal channel, not the capacity
        // channel, is what we want to observe.
        SwarmAttack::satiate(1, 2, target_fraction, TargetPolicy::RarePieceHolders)
    };
    let r = SwarmSim::new(cfg, attack, seed).run_to_report();
    (
        r.mean_completion_nontargeted()
            .unwrap_or_else(|| r.mean_completion()),
        r.p95_completion_nontargeted().unwrap_or(r.rounds as f64),
    )
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let fractions = [0.0, 0.125, 0.25, 0.375, 0.5];

    let mut series: Vec<Series> = Vec::new();
    for (policy, label) in [
        (PiecePolicy::RarestFirst, "rarest-first"),
        (PiecePolicy::Random, "uniform-random"),
    ] {
        let mut mean = Series::new(format!("{label}: mean completion"));
        let mut p95 = Series::new(format!("{label}: p95 completion"));
        for &f in &fractions {
            let (mut sm, mut sp) = (0.0, 0.0);
            for &seed in &seeds {
                let (m, p) = run(policy, f, seed);
                sm += m;
                sp += p;
            }
            let k = seeds.len() as f64;
            mean.push(f, sm / k);
            p95.push(f, sp / k);
        }
        series.push(mean);
        series.push(p95);
    }

    print_series_table(
        "X7 — Rare-piece satiation vs piece-selection policy (40 leechers, 96 pieces)",
        &series,
        "fraction of leechers targeted (rare-piece holders)",
        "completion round of non-targeted leechers",
    );
    println!("Clean swarm: rarest-first beats random (piece diversity keeps leechers");
    println!("trading). Attacked: neither policy develops a last-pieces problem — the");
    println!("origin seed re-replicates rarity and early departures free its capacity.");
    println!("The paper's conclusion holds: this attack variant does not pay (§1, §4).");
}
