//! X7 — §4: rarest-first and seeding defuse manufactured last-pieces
//! problems.
//!
//! The attacker satiates the holders of the rarest pieces with a
//! deliberately *minimal* bandwidth budget (one peer, two slots), hoping
//! they leave before passing those pieces on. The experiment measures
//! both policies, clean and attacked:
//!
//! * rarest-first beats uniform-random selection in the clean swarm (the
//!   Legout et al. result the paper cites);
//! * under **both** policies the attack fails to inflate the completion
//!   tail meaningfully: the origin seed re-replicates whatever rarity the
//!   departures create, and satiated targets leaving early frees seed
//!   capacity for the stragglers. "BitTorrent's rarest first policy does
//!   a good job of resolving this problem" — and seeding (built-in
//!   altruism) backs it up.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(&[
        "--scenario", "bittorrent",
        "--title", "X7 — Rare-piece satiation vs piece-selection policy (40 leechers, 96 pieces)",
        "--x-values", "0,0.125,0.25,0.375,0.5",
        "--x-label", "fraction of leechers targeted (rare-piece holders)",
        "--y-label", "completion round of non-targeted leechers",
        "--param", "leechers=40",
        "--param", "origin_seeds=1",
        "--param", "pieces=96",
        "--param", "unchoke_slots=3",
        "--param", "max_rounds=3000",
        "--param", "attacker_peers=1",
        "--param", "attacker_slots=2",
        "--param", "target_policy=rare",
        "--curve", "satiate,piece_policy=rarest,metric=mean_completion_nontargeted,label=rarest-first: mean completion",
        "--curve", "satiate,piece_policy=rarest,metric=p95_completion_nontargeted,label=rarest-first: p95 completion",
        "--curve", "satiate,piece_policy=random,metric=mean_completion_nontargeted,label=uniform-random: mean completion",
        "--curve", "satiate,piece_policy=random,metric=p95_completion_nontargeted,label=uniform-random: p95 completion",
    ], &[
        "Clean swarm: rarest-first beats random (piece diversity keeps leechers",
        "trading). Attacked: neither policy develops a last-pieces problem — the",
        "origin seed re-replicates rarity and early departures free its capacity.",
        "The paper's conclusion holds: this attack variant does not pay (§1, §4).",
    ]);
}
