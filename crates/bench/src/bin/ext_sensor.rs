//! X13 — §1/§3: sensor networks are structurally vulnerable.
//!
//! "A node in a sensor network might shut down to save power if it has
//! received all the updates it needs" (§1) — power-saving is satiation.
//! And "in sensor networks, there is often an inherent structure an
//! attacker may be able to make use of" (§3): a radio topology is a
//! random *geometric* graph, which (unlike an Erdős–Rényi graph of the
//! same density) almost always admits cheap spatial cuts. The attacker
//! plans the cut with the BFS-layer heuristic and satiates it; one side
//! of the field never hears the sink's rare readings.

use lotus_core::attack::{Attacker, NoAttack, SatiateCut, SatiateRandomFraction};
use lotus_core::token::{Allocation, TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use netsim::rng::DetRng;
use netsim::table::Table;
use netsim::NodeId;

const N: u32 = 120;
const TOKENS: usize = 12;

fn field(seed: u64) -> Graph {
    // Re-draw until connected (sparse geometric graphs can fragment).
    let rng = DetRng::seed_from(seed).fork("field");
    for attempt in 0..50 {
        let g = Graph::random_geometric(N, 0.17, &mut rng.fork_idx("try", attempt));
        if g.is_connected() {
            return g;
        }
    }
    panic!("could not draw a connected sensor field");
}

fn er_match(seed: u64, target_edges: usize) -> Graph {
    let rng = DetRng::seed_from(seed).fork("er");
    let p = 2.0 * target_edges as f64 / (f64::from(N) * f64::from(N - 1));
    for attempt in 0..50 {
        let g = Graph::erdos_renyi(N, p, &mut rng.fork_idx("try", attempt));
        if g.is_connected() {
            return g;
        }
    }
    panic!("could not draw a connected ER graph");
}

/// Run the token system with `attack`; report untouched coverage and the
/// attack's per-round cost (satiated nodes).
fn run(graph: Graph, attack: &mut dyn Attacker, seed: u64) -> (f64, usize) {
    let cfg = TokenSystemConfig::builder(graph)
        .tokens(TOKENS)
        .allocation(Allocation::RareToken {
            holder: NodeId(0),
            copies: 5,
        })
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, seed);
    let report = sys.run(attack, 250);
    (report.untouched_mean_coverage(), report.attacked_nodes.len())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { (1..=5).collect() };

    let mut t = Table::new(vec!["scenario", "untouched coverage", "nodes satiated"]);
    let mut rows: Vec<(String, f64, f64)> = vec![
        ("sensor field, planned cut".into(), 0.0, 0.0),
        ("sensor field, same budget random".into(), 0.0, 0.0),
        ("ER (same density), planned cut".into(), 0.0, 0.0),
    ];
    let mut er_cut_failures = 0usize;
    for &seed in &seeds {
        let g = field(seed);
        let edges = g.edge_count();
        let cut = SatiateCut::plan(&g, NodeId(0)).expect("geometric fields admit cuts");
        let budget = cut.cut().len();
        {
            let (cov, cost) = run(g.clone(), &mut cut.clone(), seed);
            rows[0].1 += cov;
            rows[0].2 += cost as f64;
        }
        {
            let mut random = SatiateRandomFraction::new(budget as f64 / f64::from(N));
            let (cov, cost) = run(g, &mut random, seed);
            rows[1].1 += cov;
            rows[1].2 += cost as f64;
        }
        {
            let er = er_match(seed, edges);
            match SatiateCut::plan(&er, NodeId(0)) {
                Some(mut er_cut) => {
                    let (cov, cost) = run(er, &mut er_cut, seed);
                    rows[2].1 += cov;
                    rows[2].2 += cost as f64;
                }
                None => {
                    er_cut_failures += 1;
                    let (cov, _) = run(er, &mut NoAttack, seed);
                    rows[2].1 += cov;
                }
            }
        }
    }
    println!("# X13 — Power-saving sensors under a planned cut attack ({N} nodes)");
    println!();
    let k = seeds.len() as f64;
    for (name, cov, cost) in rows {
        t.row(vec![
            name,
            format!("{:.3}", cov / k),
            format!("{:.1}", cost / k),
        ]);
    }
    println!("{}", t.render());
    if er_cut_failures > 0 {
        println!(
            "(ER control: the layered-cut planner found NO cheap cut on {er_cut_failures} of {} draws — \
             exactly the §3 point that random graphs resist structural attacks.)",
            seeds.len()
        );
    }
    println!("Geometric radio fields expose cheap spatial cuts; the same satiation");
    println!("budget spent randomly does far less damage (§1, §3).");
}
