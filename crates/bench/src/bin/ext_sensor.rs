//! X13 — §1/§3: sensor networks are structurally vulnerable.
//!
//! "A node in a sensor network might shut down to save power if it has
//! received all the updates it needs" (§1) — power-saving is satiation.
//! And "in sensor networks, there is often an inherent structure an
//! attacker may be able to make use of" (§3): a radio topology is a
//! random *geometric* graph, which (unlike an Erdős–Rényi graph of the
//! same density) almost always admits cheap spatial cuts. The attacker
//! plans the cut with the BFS-layer heuristic and satiates it; one side
//! of the field never hears the sink's rare readings.
//!
//! On the density-matched Erdős–Rényi control (p ≈ 0.09, the expected
//! edge density of a radius-0.17 geometric field on 120 nodes) the
//! planner frequently finds *no* cheap cut at all — exactly the §3 point
//! that random graphs resist structural attacks (the registry degrades a
//! failed plan to the null attack, so the control curve stays near full
//! coverage). The random control spends a fixed 10 % satiation budget,
//! comparable to the typical planned-cut size on this field.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "token",
            "--title",
            "X13 — Power-saving sensors under a planned cut attack (120 nodes)",
            "--x-values",
            "0.1",
            "--x-label",
            "fraction satiated by the random-budget control",
            "--y-label",
            "mean coverage (untouched nodes)",
            "--metric",
            "untouched_mean_coverage",
            "--param",
            "nodes=120",
            "--param",
            "tokens=12",
            "--param",
            "allocation=rare",
            "--param",
            "copies=5",
            "--param",
            "rounds=250",
            "--curve",
            "cut-plan,graph=geometric,radius=0.17,label=geometric field: planned spatial cut",
            "--curve",
            "random-fraction,graph=geometric,radius=0.17,label=geometric field: same budget random",
            "--curve",
            "cut-plan,graph=er,er_p=0.045,label=erdos-renyi control: planned cut",
        ],
        &[
            "Geometric radio fields expose cheap spatial cuts; the same satiation",
            "budget spent randomly does far less damage (§1, §3).",
        ],
    );
}
