//! X3 — §3: rare-token denial.
//!
//! "In the extreme case where some token is initially at a single node, an
//! attacker can deny the entire system access to that token for the cost
//! of satiating one node." We give the attacker a fixed budget of two
//! satiations per round and sweep the number of initial holders of the
//! rare token: one or two holders are contained for that trivial cost,
//! but once holders outnumber the per-round budget the token outruns the
//! attacker — spreading the initial allocation is the defense.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "token",
            "--title",
            "X3 — Rare-token denial: attacker satiates every holder (token model)",
            "--sweep",
            "rare_holders",
            "--x-values",
            "1,2,3,4,6,8",
            "--x-label",
            "initial holders of the rare token",
            "--y-label",
            "fraction of nodes that ever obtain it",
            "--metric",
            "token0_reach",
            "--param",
            "nodes=60",
            "--param",
            "tokens=10",
            "--param",
            "allocation=rare-spread",
            "--param",
            "copies=4",
            "--param",
            "rounds=120",
            "--curve",
            "none,label=no attack",
            "--curve",
            "rare-holders,budget=2,label=rare-holder satiation attack (budget 2/round)",
        ],
        &[
            "Paper §3: one rare holder is silenced for the cost of satiating one node;",
            "once holders outnumber the attacker's budget the token escapes — spreading",
            "the initial allocation is the defense.",
        ],
    );
}
