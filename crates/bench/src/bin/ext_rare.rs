//! X3 — §3: rare-token denial.
//!
//! "In the extreme case where some token is initially at a single node, an
//! attacker can deny the entire system access to that token for the cost
//! of satiating one node." We give the attacker a fixed budget of two
//! satiations per round and sweep the number of initial holders of the
//! rare token: one or two holders are contained for that trivial cost,
//! but once holders outnumber the per-round budget the token outruns the
//! attacker — spreading the initial allocation is the defense.

use lotus_bench::{print_series_table, Fidelity};
use lotus_core::attack::{BudgetedAttacker, NoAttack, SatiateRareHolders};
use lotus_core::token::{Allocation, TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use netsim::metrics::Series;

fn rare_token_reach(copies: usize, seed: u64, attacked: bool, rounds: u64) -> f64 {
    let n = 60u32;
    let cfg = TokenSystemConfig::builder(Graph::complete(n))
        .tokens(10)
        .allocation(if copies == 1 {
            Allocation::RareToken {
                holder: netsim::NodeId(0),
                copies: 4,
            }
        } else {
            // copies holders of token 0; everything else 4 copies.
            let mut lists = vec![(0..copies as u32).map(netsim::NodeId).collect::<Vec<_>>()];
            for t in 1..10u32 {
                lists.push((0..4).map(|i| netsim::NodeId((t * 5 + i) % n)).collect());
            }
            Allocation::Explicit(lists)
        })
        .build()
        .expect("valid config");
    let mut sys = TokenSystem::new(cfg, seed);
    if attacked {
        // The attacker can afford to satiate only two nodes per round.
        let mut attack = BudgetedAttacker::new(SatiateRareHolders::new(0), 2);
        sys.run(&mut attack, rounds);
    } else {
        sys.run(&mut NoAttack, rounds);
    }
    // Fraction of nodes that obtained the rare token.
    let view = sys.view();
    view.holders_of(0).len() as f64 / f64::from(n)
}

fn main() {
    let fidelity = Fidelity::from_args();
    let copies: Vec<usize> = vec![1, 2, 3, 4, 6, 8];
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    let rounds = 120;

    let mut attacked = Series::new("rare-holder satiation attack (budget 2/round)");
    let mut clean = Series::new("no attack");
    for &c in &copies {
        let mut a = 0.0;
        let mut u = 0.0;
        for &s in &seeds {
            a += rare_token_reach(c, s, true, rounds);
            u += rare_token_reach(c, s, false, rounds);
        }
        attacked.push(c as f64, a / seeds.len() as f64);
        clean.push(c as f64, u / seeds.len() as f64);
    }

    print_series_table(
        "X3 — Rare-token denial: attacker satiates every holder (token model)",
        &[clean, attacked],
        "initial holders of the rare token",
        "fraction of nodes that ever obtain it",
    );
    println!("Paper §3: one rare holder is silenced for the cost of satiating one node;");
    println!("once holders outnumber the attacker's budget the token escapes — spreading");
    println!("the initial allocation is the defense.");
}
