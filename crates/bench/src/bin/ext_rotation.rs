//! X11 — §2: rotating satiation makes the service intermittently
//! unusable for everyone.
//!
//! "By changing who is satiated over time, the attacker could even make
//! the service intermittently unusable for all nodes." A static trade
//! attack starves the same 30% forever; rotating the satiated set with a
//! period at or above the update lifetime spreads the outage across the
//! whole population. Rotating *faster* than the lifetime backfires — the
//! attacker heals rotated-in nodes before their missed updates expire —
//! so the experiment also maps the attack's operating envelope.

use lotus_bench::runner::run_shim;

fn main() {
    run_shim(
        &[
            "--scenario",
            "bar-gossip",
            "--title",
            "X11 — Rotating satiation (trade attack at 30%, Table-1 system)",
            "--sweep",
            "rotation_period",
            "--x-values",
            "0,40,20,10,5,2",
            "--x-label",
            "rotation period in rounds (0 = static satiated set)",
            "--y-label",
            "fraction / delivery",
            "--param",
            "rounds=60",
            "--param",
            "fraction=0.30",
            "--curve",
            "trade,metric=nodes_ever_unusable,label=honest nodes ever unusable",
            "--curve",
            "trade,metric=unusable_node_rounds,label=unusable node-round samples",
            "--curve",
            "trade,metric=min_node_delivery,label=min whole-run node delivery",
        ],
        &[
            "Static: only the isolated 30% ever suffer. Slow rotation (period >= the",
            "update lifetime): everyone takes a turn being isolated — intermittent",
            "unusability for all, as §2 predicts. Fast rotation backfires: the",
            "attacker refills rotated-in nodes before their missed updates expire,",
            "involuntarily becoming an altruist — the satiated set must stay isolated",
            "longer than a lifetime for the outage to register.",
        ],
    );
}
