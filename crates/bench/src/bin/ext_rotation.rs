//! X11 — §2: rotating satiation makes the service intermittently
//! unusable for everyone.
//!
//! "By changing who is satiated over time, the attacker could even make
//! the service intermittently unusable for all nodes." A static trade
//! attack starves the same 30% forever; rotating the satiated set with a
//! period at or above the update lifetime spreads the outage across the
//! whole population. Rotating *faster* than the lifetime backfires — the
//! attacker heals rotated-in nodes before their missed updates expire —
//! so the experiment also maps the attack's operating envelope.

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
use lotus_bench::{print_series_table, Fidelity};
use netsim::metrics::Series;

fn run(period: Option<u64>, seed: u64) -> (f64, f64, f64) {
    let cfg = BarGossipConfig::builder().rounds(60).build().expect("valid");
    let mut plan = AttackPlan::trade_lotus_eater(0.30, 0.70);
    if let Some(p) = period {
        plan = plan.with_rotation(p);
    }
    let r = BarGossipSim::new(cfg, plan, seed).run_to_report();
    (
        r.nodes_ever_unusable,
        r.unusable_node_rounds,
        r.min_node_delivery,
    )
}

fn main() {
    let fidelity = Fidelity::from_args();
    let seeds: Vec<u64> = (1..=fidelity.seeds() as u64).collect();
    // x = rotation period; 0 encodes "static" for plotting.
    let periods: [(Option<u64>, f64); 6] = [
        (None, 0.0),
        (Some(40), 40.0),
        (Some(20), 20.0),
        (Some(10), 10.0),
        (Some(5), 5.0),
        (Some(2), 2.0),
    ];

    let mut ever = Series::new("honest nodes ever unusable");
    let mut node_rounds = Series::new("unusable (node, round) samples");
    let mut min_del = Series::new("min whole-run node delivery");
    for &(period, x) in &periods {
        let (mut a, mut b, mut c) = (0.0, 0.0, 0.0);
        for &s in &seeds {
            let (e, nr, m) = run(period, s);
            a += e;
            b += nr;
            c += m;
        }
        let k = seeds.len() as f64;
        ever.push(x, a / k);
        node_rounds.push(x, b / k);
        min_del.push(x, c / k);
    }

    print_series_table(
        "X11 — Rotating satiation (trade attack at 30%, Table-1 system)",
        &[ever, node_rounds, min_del],
        "rotation period in rounds (0 = static satiated set)",
        "fraction / delivery",
    );
    println!("Static: only the isolated 30% ever suffer. Slow rotation (period >= the");
    println!("update lifetime): everyone takes a turn being isolated — intermittent");
    println!("unusability for all, as §2 predicts. Fast rotation backfires: the");
    println!("attacker refills rotated-in nodes before their missed updates expire,");
    println!("involuntarily becoming an altruist — the satiated set must stay isolated");
    println!("longer than a lifetime for the outage to register.");
}
