//! Criterion benchmarks for the BitTorrent swarm: the unit of work behind
//! experiments X6 and X7.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use torrent_sim::{PiecePolicy, SwarmAttack, SwarmConfig, SwarmSim, TargetPolicy};

fn bench_swarm(c: &mut Criterion) {
    let mut g = c.benchmark_group("swarm");
    g.sample_size(15).measurement_time(Duration::from_secs(4));
    let cfg = SwarmConfig::builder()
        .leechers(40)
        .pieces(64)
        .build()
        .expect("valid config");
    g.bench_function("clean_swarm_to_completion", |b| {
        b.iter(|| SwarmSim::new(cfg.clone(), SwarmAttack::none(), 1).run_to_report())
    });
    g.bench_function("satiation_attack_to_completion", |b| {
        b.iter(|| {
            SwarmSim::new(
                cfg.clone(),
                SwarmAttack::satiate(4, 8, 0.3, TargetPolicy::TopUploaders),
                1,
            )
            .run_to_report()
        })
    });
    let random = SwarmConfig::builder()
        .leechers(40)
        .pieces(64)
        .piece_policy(PiecePolicy::Random)
        .build()
        .expect("valid config");
    g.bench_function("random_policy_to_completion", |b| {
        b.iter(|| SwarmSim::new(random.clone(), SwarmAttack::none(), 1).run_to_report())
    });
    g.finish();
}

criterion_group!(benches, bench_swarm);
criterion_main!(benches);
