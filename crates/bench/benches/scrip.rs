//! Criterion benchmarks for the scrip economy: the unit of work behind
//! experiments X4 and X5.

use criterion::{criterion_group, criterion_main, Criterion};
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};
use std::time::Duration;

fn bench_economy(c: &mut Criterion) {
    let mut g = c.benchmark_group("scrip_economy");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    let base = ScripConfig::builder()
        .agents(200)
        .rounds(5_000)
        .warmup(500)
        .build()
        .expect("valid config");
    g.bench_function("healthy_5500_rounds", |b| {
        b.iter(|| ScripSim::new(base.clone(), ScripAttack::None, 1).run_to_report())
    });
    g.bench_function("lotus_eater_5500_rounds", |b| {
        b.iter(|| {
            ScripSim::new(base.clone(), ScripAttack::lotus_eater(0.3, 0.5), 1).run_to_report()
        })
    });
    let adaptive = ScripConfig::builder()
        .agents(200)
        .altruists(50)
        .adaptive(true)
        .rounds(5_000)
        .warmup(500)
        .build()
        .expect("valid config");
    g.bench_function("adaptive_altruists_5500_rounds", |b| {
        b.iter(|| ScripSim::new(adaptive.clone(), ScripAttack::None, 1).run_to_report())
    });
    g.finish();
}

criterion_group!(benches, bench_economy);
criterion_main!(benches);
