//! Criterion benchmarks for the shared substrate: bitsets, update
//! windows, graph construction, partner schedules and simulated
//! signatures — the inner loops of every simulator.

use bar_gossip::update::{UpdateId, WindowSet};
use criterion::{criterion_group, criterion_main, Criterion};
use lotus_core::bitset::BitSet;
use netsim::graph::Graph;
use netsim::partner::{PartnerSchedule, Protocol};
use netsim::rng::DetRng;
use netsim::sign::Authority;
use netsim::NodeId;
use std::hint::black_box;
use std::time::Duration;

fn bench_bitset(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitset");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    let mut rng = DetRng::seed_from(1);
    let a = BitSet::from_iter_with(4096, (0..2000).map(|_| rng.index(4096)));
    let b = BitSet::from_iter_with(4096, (0..2000).map(|_| rng.index(4096)));
    g.bench_function("union_4096", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.union_with(black_box(&b));
            x
        })
    });
    g.bench_function("difference_count_4096", |bch| {
        bch.iter(|| black_box(&a).difference_count(black_box(&b)))
    });
    g.bench_function("difference_first_n_4096", |bch| {
        bch.iter(|| black_box(&a).difference_first_n(black_box(&b), 32))
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("window");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    let mut w1 = WindowSet::new(10, 10);
    let mut w2 = WindowSet::new(10, 10);
    for t in 0..10 {
        w1.advance(t);
        w2.advance(t);
    }
    let mut rng = DetRng::seed_from(2);
    for _ in 0..60 {
        let id = UpdateId {
            round: rng.range(10),
            slot: rng.range(10) as u32,
        };
        if rng.chance(0.5) {
            w1.insert(id);
        } else {
            w2.insert(id);
        }
    }
    g.bench_function("wanted_from", |bch| {
        bch.iter(|| black_box(&w1).wanted_from(black_box(&w2), 9, 16, 0, u32::MAX))
    });
    g.bench_function("missing_from", |bch| {
        bch.iter(|| black_box(&w1).missing_from(black_box(&w2)))
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    g.bench_function("erdos_renyi_500", |bch| {
        bch.iter(|| {
            let mut rng = DetRng::seed_from(3);
            Graph::erdos_renyi(500, 0.02, &mut rng)
        })
    });
    g.bench_function("barabasi_albert_500", |bch| {
        bch.iter(|| {
            let mut rng = DetRng::seed_from(4);
            Graph::barabasi_albert(500, 3, &mut rng)
        })
    });
    let mut rng = DetRng::seed_from(5);
    let graph = Graph::erdos_renyi(500, 0.02, &mut rng);
    g.bench_function("bfs_500", |bch| {
        bch.iter(|| black_box(&graph).bfs_distances(NodeId(0)))
    });
    g.finish();
}

fn bench_partner_and_sign(c: &mut Criterion) {
    let mut g = c.benchmark_group("partner_sign");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    let sched = PartnerSchedule::new(1, 250);
    g.bench_function("partner_round_250", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for (a, b) in sched.round_pairs(7, Protocol::BalancedExchange) {
                acc = acc.wrapping_add(u64::from(a.0) ^ u64::from(b.0));
            }
            acc
        })
    });
    let auth = Authority::new(9, 250);
    g.bench_function("sign_verify", |bch| {
        bch.iter(|| {
            let s = auth.sign(NodeId(3), (NodeId(7), 12345u64));
            auth.verify(black_box(&s))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bitset,
    bench_window,
    bench_graph,
    bench_partner_and_sign
);
criterion_main!(benches);
