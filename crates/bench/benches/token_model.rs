//! Criterion benchmarks for the abstract token-collecting model (§3):
//! the unit of work behind experiments X1-X3 and X10.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lotus_core::attack::{NoAttack, SatiateCut, SatiateRandomFraction};
use lotus_core::token::{TokenSystem, TokenSystemConfig};
use netsim::graph::Graph;
use std::time::Duration;

fn system(graph: Graph, seed: u64) -> TokenSystem {
    let cfg = TokenSystemConfig::builder(graph)
        .tokens(32)
        .altruism(0.05)
        .build()
        .expect("valid config");
    TokenSystem::new(cfg, seed)
}

fn bench_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_model");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    g.bench_function("complete_250_no_attack_50_rounds", |b| {
        b.iter_batched(
            || system(Graph::complete(250), 1),
            |mut sys| sys.run(&mut NoAttack, 50),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("grid_16x16_cut_attack_50_rounds", |b| {
        b.iter_batched(
            || {
                (
                    system(Graph::grid(16, 16, false), 1),
                    SatiateCut::grid_column(16, 16, 8),
                )
            },
            |(mut sys, mut attack)| sys.run(&mut attack, 50),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("complete_250_mass_satiation_50_rounds", |b| {
        b.iter_batched(
            || (system(Graph::complete(250), 1), SatiateRandomFraction::new(0.5)),
            |(mut sys, mut attack)| sys.run(&mut attack, 50),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
