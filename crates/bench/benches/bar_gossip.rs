//! Criterion benchmarks for the BAR Gossip simulator: per-round cost at
//! Table-1 scale and full-run cost per attack kind (the unit of work
//! behind every point of Figures 1-3).

use bar_gossip::{AttackPlan, BarGossipConfig, BarGossipSim};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netsim::round::RoundSim;
use std::time::Duration;

fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("bar_gossip_round");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    let cfg = BarGossipConfig::default();
    g.bench_function("table1_round", |b| {
        b.iter_batched(
            || BarGossipSim::new(cfg.clone(), AttackPlan::none(), 1),
            |mut sim| {
                for t in 0..5 {
                    sim.round(t);
                }
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bar_gossip_full_run");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = BarGossipConfig::default();
    for (name, plan) in [
        ("none", AttackPlan::none()),
        ("crash_30", AttackPlan::crash(0.30)),
        ("ideal_10", AttackPlan::ideal_lotus_eater(0.10, 0.70)),
        ("trade_30", AttackPlan::trade_lotus_eater(0.30, 0.70)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| BarGossipSim::new(cfg.clone(), plan, 1).run_to_report())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_round, bench_full_runs);
criterion_main!(benches);
