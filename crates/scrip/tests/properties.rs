//! Property-based tests for the scrip economy: conservation and
//!
//! Requires the external `proptest` crate: enable the `proptest-tests`
//! feature *and* add the `proptest` dev-dependency once the workspace
//! has access to a registry (the default build must stay dependency-free).
#![cfg(feature = "proptest-tests")]
//! satiation invariants under arbitrary parameters and attacks.

use lotus_core::satiation::Satiable;
use netsim::round::RoundSim;
use netsim::NodeId;
use proptest::prelude::*;
use scrip_economy::{ScripAttack, ScripConfig, ScripSim};

fn arb_attack() -> impl Strategy<Value = ScripAttack> {
    prop_oneof![
        Just(ScripAttack::None),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(t, e)| ScripAttack::lotus_eater(t, e)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn money_is_conserved_under_any_attack(
        seed in any::<u64>(),
        agents in 5u32..60,
        m in 1u32..6,
        k in 1u32..8,
        beta in 0.05f64..1.0,
        altruists_frac in 0.0f64..0.5,
        attack in arb_attack(),
    ) {
        let altruists = ((agents as f64) * altruists_frac) as u32;
        let cfg = ScripConfig::builder()
            .agents(agents)
            .money_per_agent(m)
            .threshold(k)
            .availability(beta)
            .altruists(altruists)
            .rounds(300)
            .warmup(30)
            .build()
            .expect("valid config");
        let supply = cfg.total_supply();
        let mut sim = ScripSim::new(cfg, attack, seed);
        for t in 0..150 {
            sim.round(t);
            prop_assert_eq!(sim.total_money(), supply);
        }
        let report = sim.report();
        prop_assert_eq!(report.total_money, supply);
    }

    #[test]
    fn rates_partition_requests(
        seed in any::<u64>(),
        agents in 5u32..40,
        attack in arb_attack(),
    ) {
        let cfg = ScripConfig::builder()
            .agents(agents)
            .rounds(2_000)
            .warmup(100)
            .build()
            .expect("valid config");
        let report = ScripSim::new(cfg, attack, seed).run_to_report();
        let total = report.free_rate
            + report.paid_rate
            + report.fail_broke_rate
            + report.fail_no_volunteer_rate;
        prop_assert!((total - 1.0).abs() < 1e-9, "rates must partition: {total}");
        prop_assert!((report.service_rate - report.free_rate - report.paid_rate).abs() < 1e-9);
    }

    #[test]
    fn satiation_matches_balances(seed in any::<u64>(), agents in 5u32..30) {
        let cfg = ScripConfig::builder()
            .agents(agents)
            .rounds(500)
            .warmup(0)
            .build()
            .expect("valid config");
        let mut sim = ScripSim::new(cfg, ScripAttack::None, seed);
        for t in 0..200 {
            sim.round(t);
        }
        for i in 0..agents {
            let node = NodeId(i);
            if sim.is_satiated(node) {
                prop_assert!(sim.money(node) >= u64::from(sim.threshold(node)));
            }
        }
    }

    #[test]
    fn gini_is_in_unit_range(values in proptest::collection::vec(0u64..1000, 1..60)) {
        let g = scrip_economy::gini(&values);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
    }
}
